//! Workspace-level facade for the AutoFL reproduction.
//!
//! Re-exports the public crates so examples and integration tests can use
//! one import root. See the README for the architecture overview and
//! DESIGN.md for the paper-to-module mapping.

pub use autofl_cluster as cluster;
pub use autofl_core as core;
pub use autofl_data as data;
pub use autofl_device as device;
pub use autofl_fed as fed;
pub use autofl_nn as nn;

//! Workspace-level facade for the AutoFL reproduction.
//!
//! Re-exports the public crates so examples and integration tests can use
//! one import root. See the README for the architecture overview and
//! DESIGN.md for the paper-to-module mapping.

pub use autofl_cluster as cluster;
pub use autofl_core as core;
pub use autofl_data as data;
pub use autofl_device as device;
pub use autofl_fed as fed;
pub use autofl_nn as nn;

// The experiment-facing API, re-exported flat so a quickstart needs one
// import root: build configs fluently, pick policies by name, observe
// rounds, and persist experiments as spec files.
pub use autofl_core::policy::{standard_registry, AutoFlPolicy, PAPER_POLICIES};
pub use autofl_fed::builder::{ConfigError, SimBuilder};
pub use autofl_fed::engine::{SimConfig, SimResult, Simulation};
pub use autofl_fed::observe::{CsvSink, JsonlSink, Progress, RoundObserver};
pub use autofl_fed::policy::{run_policy, Policy, PolicyRegistry};
pub use autofl_fed::spec::ExperimentSpec;

//! Cross-crate contract tests for the experiment API: a conformance
//! suite every registered policy must pass, spec-file round-trips against
//! the checked-in files under `tests/specs/`, and builder/registry
//! integration.
//!
//! To regenerate the checked-in spec files after an intentional schema
//! change: `AUTOFL_REGEN_SPECS=1 cargo test --test experiment_api`.

use autofl::fed::engine::{SimConfig, Simulation};
use autofl::fed::observe::JsonlSink;
use autofl::fed::policy::{run_policy, run_policy_observed, Policy};
use autofl::fed::spec::ExperimentSpec;
use autofl::{standard_registry, PAPER_POLICIES};
use autofl_fed::GlobalParams;
use autofl_nn::zoo::Workload;

/// A small fleet with every tier present, high enough that K=20 fits.
fn conformance_config() -> SimConfig {
    let mut cfg = SimConfig::smoke(11);
    cfg.max_rounds = 3;
    cfg.target_accuracy = Some(1.1); // fixed round count for comparisons
    cfg
}

/// Runs `policy` for three rounds and returns each round's
/// (participants, plans).
fn decisions(cfg: &SimConfig, policy: &dyn Policy) -> Vec<(Vec<usize>, Vec<String>)> {
    let mut sim = Simulation::new(cfg.clone());
    let mut selector = policy.make_selector();
    (0..cfg.max_rounds)
        .map(|round| {
            let rec = sim.run_round(selector.as_mut(), round);
            (
                rec.participants.iter().map(|id| id.0).collect(),
                rec.plans.iter().map(|p| format!("{p:?}")).collect(),
            )
        })
        .collect()
}

#[test]
fn every_registered_policy_passes_the_conformance_suite() {
    let cfg = conformance_config();
    let registry = standard_registry();
    assert!(registry.len() >= PAPER_POLICIES.len());
    for policy in registry.iter() {
        let name = policy.name().to_string();
        // 1. The minted selector reports the policy's name.
        assert_eq!(policy.make_selector().name(), name, "{name}");

        let first = decisions(&cfg, policy);
        for (round, (participants, plans)) in first.iter().enumerate() {
            // 2. K is respected exactly (the smoke fleet can realise every
            // composition by falling back to random fill).
            assert_eq!(
                participants.len(),
                cfg.params.num_participants,
                "{name} round {round} violated K"
            );
            assert_eq!(plans.len(), participants.len(), "{name} plan alignment");
            // 3. Every id is a member of the fleet...
            assert!(
                participants.iter().all(|id| *id < cfg.num_devices),
                "{name} round {round} selected outside the fleet"
            );
            // 4. ...and no id repeats.
            let mut unique = participants.clone();
            unique.sort_unstable();
            unique.dedup();
            assert_eq!(
                unique.len(),
                participants.len(),
                "{name} round {round} selected a duplicate"
            );
        }

        // 5. Decisions are deterministic under a fixed seed: a fresh
        // selector on a fresh simulation reproduces every round exactly.
        let second = decisions(&cfg, policy);
        assert_eq!(first, second, "{name} is not deterministic per seed");
    }
}

#[test]
fn registry_and_direct_selector_runs_are_bit_identical() {
    let cfg = conformance_config();
    let registry = standard_registry();
    for name in PAPER_POLICIES {
        let policy = registry.expect(name);
        let via_registry = run_policy(&cfg, policy);
        let mut selector = policy.make_selector();
        let direct = Simulation::new(cfg.clone()).run(selector.as_mut());
        assert_eq!(via_registry.records.len(), direct.records.len(), "{name}");
        for (a, b) in via_registry.records.iter().zip(&direct.records) {
            assert_eq!(a.participants, b.participants, "{name}");
            assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits(), "{name}");
            assert_eq!(
                a.active_energy_j.to_bits(),
                b.active_energy_j.to_bits(),
                "{name}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Checked-in spec files.
// ---------------------------------------------------------------------------

/// The CI smoke spec: three policies, one repeat, smoke-scale fleet.
fn smoke_spec() -> ExperimentSpec {
    let mut config = SimConfig::smoke(42);
    config.max_rounds = 120;
    config.target_accuracy = Some(1.1);
    ExperimentSpec::new(
        "ci-smoke",
        config,
        ["FedAvg-Random", "Performance", "AutoFL"],
        1,
    )
}

/// One full Figure 4 row: CNN-MNIST at S3, the random baseline plus every
/// fixed cluster C1–C7 (the `spec_run` binary prints the same PPW ratios
/// the `fig04_global_params` binary computes for this row).
fn fig04_spec() -> ExperimentSpec {
    let config = Simulation::builder(Workload::CnnMnist)
        .params(GlobalParams::s3())
        .max_rounds(400)
        .build_config()
        .expect("fig04 row config is valid");
    ExperimentSpec::new(
        "fig04-s3-cnn-mnist",
        config,
        ["FedAvg-Random", "C1", "C2", "C3", "C4", "C5", "C6", "C7"],
        1,
    )
}

#[test]
fn checked_in_spec_files_match_their_generators() {
    let specs = [
        ("tests/specs/smoke.json", smoke_spec()),
        ("tests/specs/fig04_s3_cnn.json", fig04_spec()),
    ];
    for (path, spec) in specs {
        if std::env::var("AUTOFL_REGEN_SPECS").is_ok() {
            std::fs::write(path, spec.to_json() + "\n").expect("write spec file");
            continue;
        }
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("{path}: {e} (AUTOFL_REGEN_SPECS=1 to create)"));
        let parsed = ExperimentSpec::from_json(&text).expect(path);
        assert_eq!(parsed, spec, "{path} drifted from its generator");
        // The files are byte-canonical: re-exporting produces the same
        // text, so diffs stay reviewable.
        assert_eq!(text.trim_end(), spec.to_json(), "{path} is not canonical");
    }
}

#[test]
fn smoke_spec_trace_matches_the_checked_in_golden_file() {
    // Reproduces exactly what `spec_run tests/specs/smoke.json --trace`
    // writes — the spec's first policy at the first repeat's seed with a
    // JSONL round sink — and pins it byte for byte, so the observer
    // output format (and the trajectory underneath it) cannot drift
    // silently. `AUTOFL_REGEN_SPECS=1` regenerates after an intentional
    // format change.
    let path = "tests/specs/smoke_trace.jsonl";
    let text = std::fs::read_to_string("tests/specs/smoke.json").expect("smoke spec");
    let spec = ExperimentSpec::from_json(&text).expect("smoke spec parses");
    let registry = standard_registry();
    let policy = registry
        .get(&spec.policies[0])
        .expect("first policy resolves");
    let mut sink = JsonlSink::new(Vec::new());
    let result = run_policy_observed(&spec.config, policy, &mut [&mut sink])
        .expect("in-memory sink cannot fail");
    let produced = String::from_utf8(sink.into_inner()).expect("JSONL is UTF-8");
    assert_eq!(produced.lines().count(), result.records.len());
    if std::env::var("AUTOFL_REGEN_SPECS").is_ok() {
        std::fs::write(path, &produced).expect("write golden trace");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{path}: {e} (AUTOFL_REGEN_SPECS=1 to create)"));
    assert!(
        produced == golden,
        "{path} drifted from `spec_run --trace` output: the JSONL record \
         format or the smoke trajectory changed \
         (AUTOFL_REGEN_SPECS=1 to regenerate intentionally)"
    );
}

#[test]
fn smoke_spec_file_runs_end_to_end_deterministically() {
    let text = std::fs::read_to_string("tests/specs/smoke.json").expect("smoke spec");
    let spec = ExperimentSpec::from_json(&text).expect("smoke spec parses");
    let registry = standard_registry();
    let a = spec.run(&registry).expect("smoke spec runs");
    let b = spec.run(&registry).expect("smoke spec runs");
    assert_eq!(a.len(), spec.policies.len());
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.policy, rb.policy);
        assert_eq!(ra.result.records.len(), rb.result.records.len());
        for (x, y) in ra.result.records.iter().zip(&rb.result.records) {
            assert_eq!(x.participants, y.participants, "{}", ra.policy);
            assert_eq!(x.accuracy.to_bits(), y.accuracy.to_bits(), "{}", ra.policy);
        }
    }
    // All three runs recorded the full fixed horizon (target 1.1 never
    // triggers), so downstream row comparisons see aligned lengths.
    for run in &a {
        assert_eq!(run.result.records.len(), spec.config.max_rounds);
    }
}

#[test]
fn fig04_spec_file_is_the_fig04_row_configuration() {
    let text = std::fs::read_to_string("tests/specs/fig04_s3_cnn.json").expect("fig04 spec");
    let spec = ExperimentSpec::from_json(&text).expect("fig04 spec parses");
    // Pin the row to the fig04 binary's S3 configuration: same workload,
    // Table 5 S3 parameters, paper fleet, 400-round horizon, seed 42.
    assert_eq!(spec.config.workload, Workload::CnnMnist);
    assert_eq!(spec.config.params, GlobalParams::s3());
    assert_eq!(spec.config.num_devices, 200);
    assert_eq!(spec.config.max_rounds, 400);
    assert_eq!(spec.config.seed, 42);
    assert_eq!(spec.policies.len(), 8);
    // Every policy resolves against the standard registry.
    assert!(spec.resolve(&standard_registry()).is_ok());
}

//! Integration tests of the network fabric (`autofl_fed::fabric`):
//! codec round-trip properties, exact byte accounting, partition and
//! loss semantics, and the bit-reproducibility contract with the fabric
//! enabled across thread counts and shard layouts.

use autofl_device::network::{NetworkObservation, SignalStrength, BANDWIDTH_THRESHOLD_MBPS};
use autofl_fed::engine::{SimConfig, SimResult, Simulation};
use autofl_fed::fabric::{
    top_k_count, CodecSpec, IdentityCodec, Int8Quant, LinkModel, NetworkFabric, PartitionRule,
    PartitionSchedule, PeriodicFullSync, TopK, TopKInt8, UpdateCodec,
};
use autofl_fed::runtime::AsyncRuntime;
use autofl_fed::selection::RandomSelector;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runs `f` with `AUTOFL_THREADS` pinned to `threads` (see
/// `tests/determinism.rs` for the contract).
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let prev = std::env::var("AUTOFL_THREADS").ok();
    std::env::set_var("AUTOFL_THREADS", threads.to_string());
    rayon::refresh_thread_count();
    let result = f();
    match prev {
        Some(v) => std::env::set_var("AUTOFL_THREADS", v),
        None => std::env::remove_var("AUTOFL_THREADS"),
    }
    rayon::refresh_thread_count();
    result
}

fn assert_bit_identical(a: &SimResult, b: &SimResult) {
    assert_eq!(a.records.len(), b.records.len(), "round counts differ");
    for (ra, rb) in a.records.iter().zip(b.records.iter()) {
        assert_eq!(ra.participants, rb.participants, "round {}", ra.round);
        assert_eq!(ra.plans, rb.plans, "round {}", ra.round);
        assert_eq!(ra.dropped, rb.dropped, "round {}", ra.round);
        assert_eq!(ra.dropouts, rb.dropouts, "round {}", ra.round);
        assert_eq!(ra.ineligible, rb.ineligible, "round {}", ra.round);
        assert_eq!(ra.net, rb.net, "round {}", ra.round);
        assert_eq!(ra.accuracy.to_bits(), rb.accuracy.to_bits());
        assert_eq!(ra.round_time_s.to_bits(), rb.round_time_s.to_bits());
        assert_eq!(ra.active_energy_j.to_bits(), rb.active_energy_j.to_bits());
        assert_eq!(ra.idle_energy_j.to_bits(), rb.idle_energy_j.to_bits());
    }
    assert_eq!(a.ppw_global().to_bits(), b.ppw_global().to_bits());
    assert_eq!(a.ppw_local().to_bits(), b.ppw_local().to_bits());
}

/// A fabric exercising every feature at once: noisy lossy links, a
/// composed sparsifying codec, periodic full syncs and a scripted
/// partition.
fn kitchen_sink_fabric(devices: usize) -> NetworkFabric {
    NetworkFabric::new(LinkModel::calm())
        .with_codec(CodecSpec::TopKInt8 { k_frac: 0.2 })
        .with_full_sync(5)
        .with_partitions(PartitionSchedule::single(PartitionRule {
            from_round: 3,
            until_round: 9,
            device_begin: 0,
            device_end: devices / 4,
        }))
}

// ---------------------------------------------------------------------
// Engine semantics
// ---------------------------------------------------------------------

/// An ideal fabric (zero latency, zero loss, identity codec) must leave
/// the simulation bit-identical to no fabric at all — the only change is
/// that byte accounting appears on the records.
#[test]
fn ideal_fabric_reproduces_the_bare_engine_bit_for_bit() {
    let mut base_cfg = SimConfig::smoke(17);
    base_cfg.max_rounds = 25;
    base_cfg.target_accuracy = Some(1.1);
    let mut fabric_cfg = base_cfg.clone();
    fabric_cfg.network = Some(NetworkFabric::ideal());

    let base = Simulation::new(base_cfg).run(&mut RandomSelector::new());
    let with_fabric = Simulation::new(fabric_cfg).run(&mut RandomSelector::new());

    assert_eq!(base.records.len(), with_fabric.records.len());
    for (ra, rb) in base.records.iter().zip(&with_fabric.records) {
        assert_eq!(ra.participants, rb.participants, "round {}", ra.round);
        assert_eq!(ra.plans, rb.plans);
        assert_eq!(ra.dropped, rb.dropped);
        assert_eq!(ra.dropouts, rb.dropouts);
        assert_eq!(ra.accuracy.to_bits(), rb.accuracy.to_bits());
        assert_eq!(ra.round_time_s.to_bits(), rb.round_time_s.to_bits());
        assert_eq!(ra.active_energy_j.to_bits(), rb.active_energy_j.to_bits());
        assert_eq!(ra.idle_energy_j.to_bits(), rb.idle_energy_j.to_bits());
        assert!(ra.net.is_none(), "no fabric must record no net stats");
        let net = rb.net.expect("fabric rounds carry net stats");
        assert!(net.bytes_uplinked > 0, "transmitting rounds uplink bytes");
        assert!(net.bytes_downlinked > 0);
        assert_eq!(net.net_drops, 0, "ideal links drop nothing");
        assert_eq!(net.partitioned, 0);
    }
    assert_eq!(
        base.ppw_global().to_bits(),
        with_fabric.ppw_global().to_bits()
    );
}

/// The AutoFL policy sees `bytes_uplinked` in its reward inputs; with the
/// default `bytes_penalty = 0` that must not perturb selection either.
#[test]
fn ideal_fabric_is_reward_neutral_for_the_learned_policy() {
    let mut base_cfg = SimConfig::smoke(23);
    base_cfg.max_rounds = 15;
    base_cfg.target_accuracy = Some(1.1);
    let mut fabric_cfg = base_cfg.clone();
    fabric_cfg.network = Some(NetworkFabric::ideal());

    let base = Simulation::new(base_cfg).run(&mut autofl_core::AutoFl::paper_default());
    let with_fabric = Simulation::new(fabric_cfg).run(&mut autofl_core::AutoFl::paper_default());
    assert_eq!(base.records.len(), with_fabric.records.len());
    for (ra, rb) in base.records.iter().zip(&with_fabric.records) {
        assert_eq!(ra.participants, rb.participants, "round {}", ra.round);
        assert_eq!(ra.accuracy.to_bits(), rb.accuracy.to_bits());
    }
}

/// Scripted partitions remove their device span from eligibility for
/// exactly the scripted rounds, and the record reports the count.
#[test]
fn partitions_mask_their_device_span_for_their_round_span() {
    let mut cfg = SimConfig::tiny_test(3);
    cfg.max_rounds = 8;
    cfg.target_accuracy = Some(1.1);
    cfg.network = Some(
        NetworkFabric::ideal().with_partitions(PartitionSchedule::single(PartitionRule {
            from_round: 2,
            until_round: 5,
            device_begin: 0,
            device_end: 6,
        })),
    );
    let result = Simulation::new(cfg).run(&mut RandomSelector::new());
    assert_eq!(result.records.len(), 8);
    for record in &result.records {
        let net = record.net.expect("fabric records net stats");
        if (2..5).contains(&record.round) {
            assert_eq!(net.partitioned, 6, "round {}", record.round);
            assert_eq!(record.ineligible, 6, "round {}", record.round);
            assert!(
                record.participants.iter().all(|id| id.0 >= 6),
                "round {}: partitioned device selected: {:?}",
                record.round,
                record.participants
            );
        } else {
            assert_eq!(net.partitioned, 0, "round {}", record.round);
            assert_eq!(record.ineligible, 0, "round {}", record.round);
        }
    }
}

/// With `drop_prob = 1` every upload is lost in transit: the device
/// trained (energy charged), transmitted (bytes charged), but its update
/// never lands — the dropout path, not silent disappearance.
#[test]
fn lost_uploads_count_as_dropouts_with_full_energy_and_bytes() {
    let mut cfg = SimConfig::tiny_test(9);
    cfg.max_rounds = 5;
    cfg.target_accuracy = Some(1.1);
    let mut link = LinkModel::ideal();
    link.drop_prob = 1.0;
    cfg.network = Some(NetworkFabric::new(link));
    let result = Simulation::new(cfg).run(&mut RandomSelector::new());
    let reference = autofl_nn::zoo::Workload::TinyTest.reference_model_bytes();
    for record in &result.records {
        let net = record.net.expect("fabric records net stats");
        assert_eq!(
            net.net_drops,
            record.participants.len(),
            "round {}: every upload must be lost",
            record.round
        );
        assert_eq!(record.dropouts, record.participants);
        assert!(record.update_fractions.iter().all(|&f| f == 0.0));
        // They still trained and still transmitted: full energy, full bytes.
        assert!(record.active_energy_j > 0.0);
        assert_eq!(
            net.bytes_uplinked,
            record.participants.len() as u64 * reference,
            "identity codec: every lost upload still burned its bytes"
        );
    }
}

/// Swapping in a compressing codec cuts the recorded uplink volume by
/// roughly its design ratio (exact ratios are pinned by unit tests; the
/// trajectories of different codecs legitimately diverge, so the
/// integration check is coarse).
#[test]
fn compressing_codecs_cut_recorded_uplink_bytes() {
    let total_bytes = |codec: CodecSpec| {
        let mut cfg = SimConfig::smoke(42);
        cfg.max_rounds = 12;
        cfg.target_accuracy = Some(1.1);
        cfg.network = Some(NetworkFabric::ideal().with_codec(codec));
        let result = Simulation::new(cfg).run(&mut RandomSelector::new());
        result
            .records
            .iter()
            .map(|r| r.net.expect("fabric").bytes_uplinked)
            .sum::<u64>() as f64
    };
    let identity = total_bytes(CodecSpec::Identity);
    let top_k = total_bytes(CodecSpec::TopK { k_frac: 0.1 });
    let int8 = total_bytes(CodecSpec::Int8Quant);
    assert!(
        identity / top_k > 4.5,
        "TopK(10%) reduction only {:.2}x",
        identity / top_k
    );
    assert!(
        identity / int8 > 3.5,
        "Int8 reduction only {:.2}x",
        identity / int8
    );
}

// ---------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------

/// The acceptance contract: a fabric-enabled run (loss, partitions,
/// composed codec, full syncs, realistic variance) is bit-reproducible
/// across `AUTOFL_THREADS` × shard layouts.
#[test]
fn fabric_enabled_runs_are_bit_identical_across_threads_and_shards() {
    let run = |threads: usize, shards: usize| {
        with_threads(threads, || {
            let mut cfg = SimConfig::smoke(21);
            cfg.scenario = autofl_device::scenario::VarianceScenario::realistic();
            cfg.max_rounds = 12;
            cfg.target_accuracy = Some(1.1);
            cfg.shards = shards;
            let mut fabric = kitchen_sink_fabric(cfg.num_devices);
            fabric.link.drop_prob = 0.05;
            cfg.network = Some(fabric);
            Simulation::new(cfg).run(&mut RandomSelector::new())
        })
    };
    let base = run(1, 1);
    let drops: usize = base
        .records
        .iter()
        .map(|r| r.net.expect("fabric").net_drops)
        .sum();
    assert!(drops > 0, "the lossy config must actually lose uploads");
    for threads in [1, 4] {
        for shards in [1, 4] {
            if (threads, shards) == (1, 1) {
                continue;
            }
            assert_bit_identical(&base, &run(threads, shards));
        }
    }
}

/// The event-driven runtime with a full barrier stays bit-identical to
/// the lockstep engine with the fabric attached (the PR 6 contract
/// extended to the network path).
#[test]
fn barrier_runtime_matches_lockstep_with_fabric_enabled() {
    let make_cfg = || {
        let mut cfg = SimConfig::smoke(31);
        cfg.max_rounds = 10;
        cfg.target_accuracy = Some(1.1);
        cfg.network = Some(kitchen_sink_fabric(cfg.num_devices));
        cfg
    };
    let lockstep = Simulation::new(make_cfg()).run(&mut RandomSelector::new());
    let mut cfg = make_cfg();
    cfg.runtime = Some(AsyncRuntime::barrier());
    let barrier = Simulation::new(cfg).run(&mut RandomSelector::new());
    assert_bit_identical(&lockstep, &barrier);
}

// ---------------------------------------------------------------------
// Codec properties
// ---------------------------------------------------------------------

fn random_delta(rng: &mut SmallRng, len: usize, magnitude: f32) -> Vec<f32> {
    (0..len)
        .map(|_| rng.gen_range(-1.0f32..1.0) * magnitude)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// TopK keeps exactly the `k` largest-magnitude coordinates bit-intact
    /// (ties to the lower index) and zeroes the rest.
    #[test]
    fn top_k_preserves_the_largest_coordinates_exactly(
        seed in 0u64..1_000_000,
        len in 1usize..300,
        k_frac in 0.01f64..1.0,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let original = random_delta(&mut rng, len, 2.0);
        let mut coded = original.clone();
        let codec = TopK { k_frac };
        codec.transcode(&mut coded, 0, &mut rng);

        let k = top_k_count(k_frac, len);
        // Reference: stable sort by (magnitude desc, index asc).
        let mut order: Vec<usize> = (0..len).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(original[i].abs().to_bits()), i));
        let mut expected = vec![0.0f32; len];
        for &i in &order[..k] {
            expected[i] = original[i];
        }
        for i in 0..len {
            prop_assert_eq!(
                coded[i].to_bits(), expected[i].to_bits(),
                "coordinate {} of {} (k={})", i, len, k
            );
        }
        prop_assert_eq!(codec.encoded_bytes(len, 0), 8 * k as u64);
    }

    /// Int8 stochastic quantization reconstructs every coordinate to
    /// within one quantization step of the slice's scale.
    #[test]
    fn int8_round_trip_error_is_within_one_step(
        seed in 0u64..1_000_000,
        len in 1usize..300,
        magnitude in 0.001f32..100.0,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let original = random_delta(&mut rng, len, magnitude);
        let mut coded = original.clone();
        Int8Quant.transcode(&mut coded, 0, &mut rng);

        let max_abs = original.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let step = max_abs / 127.0;
        for (o, c) in original.iter().zip(&coded) {
            prop_assert!(
                (o - c).abs() <= step * 1.0001,
                "error {} exceeds one step {}", (o - c).abs(), step
            );
            prop_assert!(c.abs() <= max_abs * 1.0001, "reconstruction escaped the range");
        }
        prop_assert_eq!(Int8Quant.encoded_bytes(len, 0), len as u64 + 4);
    }

    /// Byte counts are exact closed forms of `params` for every codec,
    /// and the periodic composition switches between inner and full-size
    /// payloads on the scripted cadence.
    #[test]
    fn encoded_byte_counts_are_exact(
        params in 1usize..5_000,
        k_frac in 0.01f64..1.0,
        every in 1usize..12,
    ) {
        let k = top_k_count(k_frac, params) as u64;
        prop_assert_eq!(IdentityCodec.encoded_bytes(params, 0), 4 * params as u64);
        prop_assert_eq!(TopK { k_frac }.encoded_bytes(params, 0), 8 * k);
        prop_assert_eq!(Int8Quant.encoded_bytes(params, 0), params as u64 + 4);
        prop_assert_eq!(TopKInt8 { k_frac }.encoded_bytes(params, 0), 5 * k + 4);
        let periodic = PeriodicFullSync {
            every,
            inner: Box::new(TopK { k_frac }),
        };
        for round in 0..3 * every {
            let expected = if round % every == 0 { 4 * params as u64 } else { 8 * k };
            prop_assert_eq!(periodic.encoded_bytes(params, round), expected, "round {}", round);
            let fidelity = periodic.fidelity(round);
            if round % every == 0 {
                prop_assert_eq!(fidelity.to_bits(), 1.0f64.to_bits(), "sync rounds are lossless");
            } else {
                prop_assert!(fidelity < 1.0);
            }
        }
    }

    /// Transcoding is deterministic in the tagged stream: the same seed
    /// reproduces the same reconstruction bit for bit, different seeds
    /// may not (stochastic rounding).
    #[test]
    fn transcode_is_deterministic_in_the_stream_seed(
        seed in 0u64..1_000_000,
        len in 2usize..200,
    ) {
        let mut source = SmallRng::seed_from_u64(seed ^ 0xd15c);
        let original = random_delta(&mut source, len, 1.0);
        let codec = TopKInt8 { k_frac: 0.5 };
        let run = |stream_seed: u64| {
            let mut delta = original.clone();
            codec.transcode(&mut delta, 3, &mut SmallRng::seed_from_u64(stream_seed));
            delta
        };
        let a = run(seed);
        let b = run(seed);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The satellite bugfix pin: a `Weak` signal observation never
    /// classifies as the paper's `Regular` network state, for any seed —
    /// the Gaussian tail above the 40 Mbps threshold is clamped.
    #[test]
    fn weak_signal_observations_are_never_regular(seed in 0u64..u64::MAX / 2) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..64 {
            let o = NetworkObservation::sample(SignalStrength::Weak, &mut rng);
            prop_assert!(!o.is_regular(), "weak draw above threshold: {:?}", o);
            prop_assert!(o.bandwidth_mbps <= BANDWIDTH_THRESHOLD_MBPS);
            prop_assert!(o.bandwidth_mbps >= 1.0);
        }
    }
}

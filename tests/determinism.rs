//! Bit-reproducibility of the round engine.
//!
//! Everything stochastic in the workspace flows from explicit seeds
//! (`SimConfig::seed`, `AutoFlConfig::seed`), through the in-tree
//! deterministic `rand` shim. These tests pin the contract: the same seed
//! must reproduce a run *bit for bit* — round counts, selected cohorts,
//! execution plans, energies and PPW metrics — and different seeds must
//! actually change the simulation.

use autofl_core::AutoFl;
use autofl_device::scenario::VarianceScenario;
use autofl_fed::engine::{Fidelity, SimConfig, SimResult, Simulation};
use autofl_fed::fleet::{FleetDynamics, StragglerPolicy};
use autofl_fed::oracle::OracleSelector;
use autofl_fed::selection::{RandomSelector, Selector};

/// Runs `f` with `AUTOFL_THREADS` pinned to `threads`, restoring the
/// previous value afterwards. Concurrently-running tests may observe the
/// temporary value, but thread count never affects results (that is
/// exactly the contract under test), only scheduling.
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let prev = std::env::var("AUTOFL_THREADS").ok();
    std::env::set_var("AUTOFL_THREADS", threads.to_string());
    rayon::refresh_thread_count();
    let result = f();
    match prev {
        Some(v) => std::env::set_var("AUTOFL_THREADS", v),
        None => std::env::remove_var("AUTOFL_THREADS"),
    }
    rayon::refresh_thread_count();
    result
}

fn run_with(seed: u64, make: &dyn Fn() -> Box<dyn Selector>) -> SimResult {
    let mut selector = make();
    Simulation::new(SimConfig::smoke(seed)).run(selector.as_mut())
}

fn assert_bit_identical(a: &SimResult, b: &SimResult) {
    assert_eq!(a.records.len(), b.records.len(), "round counts differ");
    for (ra, rb) in a.records.iter().zip(b.records.iter()) {
        assert_eq!(ra.participants, rb.participants, "round {}", ra.round);
        assert_eq!(ra.plans, rb.plans, "round {}", ra.round);
        assert_eq!(ra.dropped, rb.dropped, "round {}", ra.round);
        assert_eq!(ra.dropouts, rb.dropouts, "round {}", ra.round);
        assert_eq!(ra.ineligible, rb.ineligible, "round {}", ra.round);
        // f64 equality on purpose: the contract is bit-reproducibility,
        // not approximate agreement.
        assert_eq!(ra.accuracy.to_bits(), rb.accuracy.to_bits());
        assert_eq!(ra.round_time_s.to_bits(), rb.round_time_s.to_bits());
        assert_eq!(ra.active_energy_j.to_bits(), rb.active_energy_j.to_bits());
        assert_eq!(ra.idle_energy_j.to_bits(), rb.idle_energy_j.to_bits());
    }
    assert_eq!(a.ppw_global().to_bits(), b.ppw_global().to_bits());
    assert_eq!(a.ppw_local().to_bits(), b.ppw_local().to_bits());
    assert_eq!(
        a.time_to_target_s().to_bits(),
        b.time_to_target_s().to_bits()
    );
}

type PolicyFactory = Box<dyn Fn() -> Box<dyn Selector>>;

fn policies() -> Vec<(&'static str, PolicyFactory)> {
    vec![
        ("random", Box::new(|| Box::new(RandomSelector::new()))),
        ("autofl", Box::new(|| Box::new(AutoFl::paper_default()))),
        ("oracle", Box::new(|| Box::new(OracleSelector::full()))),
    ]
}

#[test]
fn same_seed_reproduces_every_policy_bit_for_bit() {
    for (name, make) in policies() {
        let a = run_with(7, make.as_ref());
        let b = run_with(7, make.as_ref());
        assert_eq!(a.records.len(), b.records.len(), "{name}");
        assert_bit_identical(&a, &b);
    }
}

#[test]
fn thread_count_never_changes_surrogate_results() {
    // The parallel-runtime contract: AUTOFL_THREADS tunes wall-clock
    // only. Same seed ⇒ bit-identical rounds, energies, PPW and final
    // accuracy at 1, 2 and 8 threads, for every policy.
    for (name, make) in policies() {
        let base = with_threads(1, || run_with(11, make.as_ref()));
        for threads in [2, 8] {
            let other = with_threads(threads, || run_with(11, make.as_ref()));
            assert_eq!(
                base.final_accuracy().to_bits(),
                other.final_accuracy().to_bits(),
                "{name} at {threads} threads"
            );
            assert_bit_identical(&base, &other);
        }
    }
}

fn real_training_run() -> SimResult {
    let mut cfg = SimConfig::tiny_test(5);
    cfg.fidelity = Fidelity::RealTraining {
        lr: 0.08,
        eval_samples: 48,
    };
    cfg.max_rounds = 6;
    Simulation::new(cfg).run(&mut RandomSelector::new())
}

#[test]
fn thread_count_never_changes_real_training_results() {
    // Real federated SGD fans each client out across the pool; per-device
    // RNG streams and participant-order aggregation keep the global model
    // (and hence accuracy, energy, PPW) bit-identical at any thread count.
    let base = with_threads(1, real_training_run);
    for threads in [2, 8] {
        let other = with_threads(threads, real_training_run);
        assert_eq!(
            base.final_accuracy().to_bits(),
            other.final_accuracy().to_bits(),
            "real training diverged at {threads} threads"
        );
        assert_bit_identical(&base, &other);
    }
}

/// A smoke-scale configuration with every fleet-dynamics effect active:
/// runtime variance, churn, battery, thermal, mid-round dropout.
fn dropout_config(seed: u64, straggler: StragglerPolicy) -> SimConfig {
    let mut cfg = SimConfig::smoke(seed);
    cfg.scenario = VarianceScenario::realistic();
    cfg.max_rounds = 20;
    cfg.target_accuracy = Some(1.1);
    cfg.fleet = Some(FleetDynamics::with_dropout_rate(0.35).straggler(straggler));
    cfg
}

#[test]
fn thread_count_never_changes_dropout_enabled_results() {
    // The fleet-dynamics subsystem evolves lifecycle state with
    // per-device RNG streams; this pins the contract across every
    // registered policy (baselines, clusters, oracles, AutoFL) with
    // dropout, churn and OverSelect all active.
    let registry = autofl_core::standard_registry();
    for policy in registry.iter() {
        let run = |threads: usize| {
            with_threads(threads, || {
                let cfg = dropout_config(13, StragglerPolicy::OverSelect { extra: 5 });
                let mut selector = policy.make_selector();
                Simulation::new(cfg).run(selector.as_mut())
            })
        };
        let base = run(1);
        let total_dropouts: usize = base.records.iter().map(|r| r.dropouts.len()).sum();
        assert!(
            total_dropouts > 0,
            "{}: the dropout config must actually drop devices",
            policy.name()
        );
        for threads in [2, 8] {
            let other = run(threads);
            assert_bit_identical(&base, &other);
        }
    }
}

#[test]
fn thread_count_never_changes_wait_and_drop_policies() {
    // The remaining straggler policies, pinned with the random baseline.
    for straggler in [
        StragglerPolicy::Drop,
        StragglerPolicy::WaitBounded { grace: 1.6 },
    ] {
        let run = |threads: usize| {
            with_threads(threads, || {
                let mut selector = RandomSelector::new();
                Simulation::new(dropout_config(29, straggler)).run(&mut selector)
            })
        };
        let base = run(1);
        for threads in [2, 8] {
            assert_bit_identical(&base, &run(threads));
        }
    }
}

#[test]
fn different_seeds_diverge() {
    for (name, make) in policies() {
        let a = run_with(7, make.as_ref());
        let b = run_with(8, make.as_ref());
        // The runs must differ somewhere observable: cohort history,
        // energy totals, or convergence round.
        let same_participants = a.records.len() == b.records.len()
            && a.records
                .iter()
                .zip(b.records.iter())
                .all(|(ra, rb)| ra.participants == rb.participants);
        let same_energy = a.energy_to_target_j().to_bits() == b.energy_to_target_j().to_bits();
        assert!(
            !(same_participants && same_energy),
            "{name}: seeds 7 and 8 produced identical runs"
        );
    }
}

#[test]
fn determinism_survives_interleaved_construction() {
    // Two simulations built and stepped in interleaved order must not
    // share hidden state (thread-locals, statics).
    let mut sim_a = Simulation::new(SimConfig::smoke(3));
    let mut sim_b = Simulation::new(SimConfig::smoke(3));
    let mut sel_a = RandomSelector::new();
    let mut sel_b = RandomSelector::new();
    for round in 0..20 {
        let ra = sim_a.run_round(&mut sel_a, round);
        let rb = sim_b.run_round(&mut sel_b, round);
        assert_eq!(ra.participants, rb.participants, "round {round}");
        assert_eq!(ra.accuracy.to_bits(), rb.accuracy.to_bits());
    }
}

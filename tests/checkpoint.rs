//! Kill-and-resume bit-identity of the checkpoint/resume service.
//!
//! The contract under test (`docs/serving.md`): interrupting a run at any
//! round, serializing its state through the checkpoint envelope, and
//! resuming in a fresh process state must reproduce the *exact* JSONL
//! trace of a run that was never interrupted — same bytes, under every
//! combination of worker threads, shard counts, fleet dynamics, the
//! buffered async runtime and the network fabric.

use autofl_core::policy::standard_registry;
use autofl_fed::engine::{RoundRecord, SimConfig};
use autofl_fed::fabric::{LinkModel, NetworkFabric};
use autofl_fed::fleet::FleetDynamics;
use autofl_fed::policy::{Policy, RandomPolicy};
use autofl_fed::runtime::AsyncRuntime;
use autofl_fed::serve::{read_checkpoint, write_checkpoint, ConvergeTarget, ExperimentRun};

/// Runs `f` with `AUTOFL_THREADS` pinned to `threads`, restoring the
/// previous value afterwards (same idiom as tests/determinism.rs: thread
/// count must never affect results, only scheduling).
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let prev = std::env::var("AUTOFL_THREADS").ok();
    std::env::set_var("AUTOFL_THREADS", threads.to_string());
    rayon::refresh_thread_count();
    let result = f();
    match prev {
        Some(v) => std::env::set_var("AUTOFL_THREADS", v),
        None => std::env::remove_var("AUTOFL_THREADS"),
    }
    rayon::refresh_thread_count();
    result
}

/// The trace as `spec_serve` streams it: one JSON line per record, in
/// emission order. Byte equality here is byte equality of trace files.
fn trace(records: &[RoundRecord]) -> String {
    records
        .iter()
        .map(|r| format!("{}\n", serde_json::to_string(r).expect("record serializes")))
        .collect()
}

/// A small config with everything turned on: fleet dynamics, the network
/// fabric, `shards` fleet shards, fixed horizon.
fn full_config(seed: u64, shards: usize) -> SimConfig {
    let mut config = SimConfig::tiny_test(seed);
    config.shards = shards;
    config.fleet = Some(FleetDynamics::realistic());
    config.network = Some(NetworkFabric::new(LinkModel::calm()));
    config.max_rounds = 10;
    config.target_accuracy = Some(1.1);
    config
}

/// Reference trace of an uninterrupted run, and the resumed trace of the
/// same run killed after `stop_after` records — the checkpoint travels
/// through the on-disk envelope (digest and all), not just memory.
fn interrupted_vs_straight(
    config: &SimConfig,
    policy: &dyn Policy,
    control: Option<ConvergeTarget>,
    stop_after: usize,
) -> (String, String) {
    let mut straight = ExperimentRun::new(config, policy, control).expect("config validates");
    while straight.step().expect("no observers").is_some() {}
    let reference = trace(straight.records());

    let mut first = ExperimentRun::new(config, policy, control).expect("config validates");
    for _ in 0..stop_after {
        first
            .step()
            .expect("no observers")
            .expect("interrupt point is before the end of the run");
    }
    let dir = std::env::temp_dir().join(format!(
        "autofl-ckpt-test-{}-{}",
        std::process::id(),
        config.seed
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("unit.ckpt.json");
    write_checkpoint(&path, first.state_snapshot()).expect("checkpoint writes");
    drop(first); // the "killed" process

    let payload = read_checkpoint(&path).expect("checkpoint validates");
    let mut resumed =
        ExperimentRun::resume(config, policy, control, &payload).expect("checkpoint restores");
    while resumed.step().expect("no observers").is_some() {}
    let resumed = trace(resumed.records());
    std::fs::remove_dir_all(&dir).unwrap();
    (reference, resumed)
}

#[test]
fn lockstep_resume_is_bit_identical_across_threads_and_shards() {
    for threads in [1, 4] {
        for shards in [1, 4] {
            with_threads(threads, || {
                let config = full_config(11, shards);
                for stop_after in [1, 5] {
                    let (reference, resumed) =
                        interrupted_vs_straight(&config, &RandomPolicy, None, stop_after);
                    assert_eq!(
                        reference, resumed,
                        "trace diverged: threads={threads} shards={shards} stop={stop_after}"
                    );
                }
            });
        }
    }
}

#[test]
fn event_driven_buffered_resume_is_bit_identical() {
    for threads in [1, 4] {
        for shards in [1, 4] {
            with_threads(threads, || {
                let mut config = full_config(23, shards);
                config.runtime = Some(AsyncRuntime::buffered(2, 1.0).concurrent_cohorts(2));
                for stop_after in [1, 4] {
                    let (reference, resumed) =
                        interrupted_vs_straight(&config, &RandomPolicy, None, stop_after);
                    assert_eq!(
                        reference, resumed,
                        "trace diverged: threads={threads} shards={shards} stop={stop_after}"
                    );
                }
            });
        }
    }
}

#[test]
fn autofl_selector_state_survives_the_checkpoint() {
    // AutoFL carries the heaviest selector state — Q-tables, pending
    // rounds awaiting reward, its own RNG — all of which must round-trip.
    let registry = standard_registry();
    let policy = registry.expect("AutoFL");
    let config = full_config(37, 2);
    let (reference, resumed) = interrupted_vs_straight(&config, policy, None, 5);
    assert_eq!(reference, resumed, "AutoFL trace diverged after resume");
}

#[test]
fn controlled_run_resumes_on_the_same_control_trajectory() {
    let mut config = full_config(53, 1);
    config.max_rounds = 12;
    let control = Some(ConvergeTarget::EnergyBudget {
        joules_per_round: 0.05,
    });
    let (reference, resumed) = interrupted_vs_straight(&config, &RandomPolicy, control, 6);
    assert_eq!(
        reference, resumed,
        "controller EMA/scale must continue, not restart, after resume"
    );
}

//! Checks that the surrogate accuracy engine's *orderings* agree with real
//! federated training on the tiny workload: more heterogeneity is worse,
//! and both engines converge on IID data.

use autofl_data::partition::DataDistribution;
use autofl_fed::engine::{Fidelity, SimConfig, Simulation};
use autofl_fed::selection::RandomSelector;
use autofl_fed::GlobalParams;
use autofl_nn::zoo::Workload;

fn tiny_real(dist: DataDistribution, seed: u64) -> f64 {
    let mut cfg = SimConfig::tiny_test(seed);
    cfg.workload = Workload::TinyTest;
    cfg.num_devices = 8;
    cfg.samples_per_device = 32;
    cfg.test_samples = 96;
    cfg.params = GlobalParams::new(8, 1, 4);
    cfg.distribution = dist;
    cfg.fidelity = Fidelity::RealTraining {
        lr: 0.08,
        eval_samples: 96,
    };
    cfg.max_rounds = 15;
    cfg.target_accuracy = Some(1.1);
    Simulation::new(cfg)
        .run(&mut RandomSelector::new())
        .best_accuracy()
}

fn tiny_surrogate(dist: DataDistribution, seed: u64) -> f64 {
    let mut cfg = SimConfig::tiny_test(seed);
    cfg.distribution = dist;
    cfg.max_rounds = 15;
    cfg.target_accuracy = Some(1.1);
    Simulation::new(cfg)
        .run(&mut RandomSelector::new())
        .best_accuracy()
}

#[test]
fn real_training_learns_on_iid_data() {
    let acc = tiny_real(DataDistribution::IidIdeal, 3);
    assert!(acc > 0.6, "real IID training reached only {}", acc);
}

#[test]
fn both_engines_rank_iid_above_full_non_iid() {
    // Average over seeds to avoid single-run flakiness.
    let mean = |f: &dyn Fn(u64) -> f64| (f(1) + f(2) + f(3)) / 3.0;
    let real_iid = mean(&|s| tiny_real(DataDistribution::IidIdeal, s));
    let real_skew = mean(&|s| tiny_real(DataDistribution::non_iid_percent(100), s));
    assert!(
        real_iid > real_skew,
        "real training: IID {} should beat non-IID {}",
        real_iid,
        real_skew
    );
    let sur_iid = mean(&|s| tiny_surrogate(DataDistribution::IidIdeal, s));
    let sur_skew = mean(&|s| tiny_surrogate(DataDistribution::non_iid_percent(100), s));
    assert!(
        sur_iid > sur_skew,
        "surrogate: IID {} should beat non-IID {}",
        sur_iid,
        sur_skew
    );
}

//! Property-based tests on the cross-crate invariants.

use autofl_cluster::dbscan::Discretizer;
use autofl_data::partition::{DataDistribution, Partition};
use autofl_data::synth;
use autofl_device::cost::{execute, ExecutionPlan, TrainingTask};
use autofl_device::dvfs::{DvfsTable, ExecutionTarget};
use autofl_device::scenario::DeviceConditions;
use autofl_device::tier::DeviceTier;
use autofl_nn::zoo::Workload;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every partition assigns every sample exactly once, for any device
    /// count, non-IID fraction and seed.
    #[test]
    fn partition_is_a_permutation(
        devices in 1usize..30,
        percent in 0u32..=100,
        seed in 0u64..1000,
    ) {
        let data = synth::generate(Workload::TinyTest, 240, 7);
        let dist = if percent == 0 {
            DataDistribution::IidIdeal
        } else {
            DataDistribution::non_iid_percent(percent)
        };
        let p = Partition::new(&data, devices, dist, seed);
        let mut seen = vec![false; data.len()];
        for d in 0..devices {
            for &i in p.device_indices(d) {
                prop_assert!(!seen[i], "sample {} assigned twice", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Cohort divergence and coverage stay in their documented ranges.
    #[test]
    fn cohort_stats_are_bounded(
        devices in 2usize..20,
        seed in 0u64..500,
    ) {
        let data = synth::generate(Workload::TinyTest, 200, 11);
        let p = Partition::new(&data, devices, DataDistribution::non_iid_percent(100), seed);
        let cohort: Vec<usize> = (0..devices).collect();
        let div = p.cohort_divergence(&cohort);
        let cov = p.cohort_class_coverage(&cohort);
        prop_assert!((0.0..=2.0).contains(&div));
        prop_assert!((0.0..=1.0).contains(&cov));
        for d in 0..devices {
            prop_assert!((0.0..=2.0).contains(&p.device_divergence(d)));
        }
    }

    /// Energy and time are positive and monotone in work, for any plan.
    #[test]
    fn cost_model_is_positive_and_monotone(
        flops in 1u64..1_000_000_000_000,
        step_frac in 0.01f64..=1.0,
        gpu in proptest::bool::ANY,
    ) {
        let tier = DeviceTier::Mid;
        let target = if gpu { ExecutionTarget::Gpu } else { ExecutionTarget::Cpu };
        let table = DvfsTable::for_tier(tier, target);
        let plan = ExecutionPlan { target, freq_step: table.step_at_fraction(step_frac) };
        let c = DeviceConditions::ideal();
        let small = execute(tier, plan, TrainingTask { flops, upload_bytes: 1000 }, &c);
        let large = execute(tier, plan, TrainingTask { flops: flops * 2, upload_bytes: 1000 }, &c);
        prop_assert!(small.compute_time_s > 0.0);
        prop_assert!(small.total_energy_j() > 0.0);
        prop_assert!(large.compute_time_s > small.compute_time_s);
        prop_assert!(large.compute_energy_j > small.compute_energy_j);
    }

    /// DVFS tables: frequency, power, and throughput are monotone in the
    /// step index for every tier/target.
    #[test]
    fn dvfs_tables_are_monotone(tier_idx in 0usize..3, gpu in proptest::bool::ANY) {
        let tier = DeviceTier::all()[tier_idx];
        let target = if gpu { ExecutionTarget::Gpu } else { ExecutionTarget::Cpu };
        let t = DvfsTable::for_tier(tier, target);
        for s in 1..t.num_steps() {
            prop_assert!(t.freq_ghz(s) < t.freq_ghz(s + 1));
            prop_assert!(t.busy_power_w(s) < t.busy_power_w(s + 1));
            prop_assert!(t.gflops(s) < t.gflops(s + 1));
        }
    }

    /// Discretizer bins are total: any f64 maps into 0..num_bins.
    #[test]
    fn discretizer_bins_are_total(value in -1e6f64..1e6) {
        let d = Discretizer::from_boundaries(vec![8.0, 32.0]);
        prop_assert!(d.bin(value) < d.num_bins());
    }

    /// Model parameter vectors round-trip for every workload and seed.
    #[test]
    fn param_vector_round_trips(seed in 0u64..100) {
        for w in [Workload::TinyTest, Workload::LstmShakespeare] {
            let mut m = w.build_trainable(seed);
            let v = m.param_vector();
            let doubled: Vec<f32> = v.iter().map(|x| x * 0.5).collect();
            m.set_param_vector(&doubled);
            prop_assert_eq!(m.param_vector(), doubled);
        }
    }
}

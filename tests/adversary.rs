//! Integration tests of the adversary subsystem (`autofl_fed::adversary`)
//! and the robust aggregators it motivates: disabled-path bit-neutrality,
//! bit-reproducibility of adversarial runs across thread counts and shard
//! layouts, free-rider cost accounting, checkpoint/resume under attack,
//! order-statistics aggregator properties, and a golden spec + trace
//! exercising poisoners against Krum end to end.

use autofl::fed::observe::JsonlSink;
use autofl::fed::policy::run_policy_observed;
use autofl::fed::spec::ExperimentSpec;
use autofl::standard_registry;
use autofl_fed::adversary::{AdversaryConfig, AdversaryRole};
use autofl_fed::algorithms::{AggregationAlgorithm, ClientUpdate, KrumAggregator};
use autofl_fed::engine::{RoundRecord, SimConfig, SimResult, Simulation};
use autofl_fed::fabric::{LinkModel, NetworkFabric};
use autofl_fed::fleet::FleetDynamics;
use autofl_fed::policy::RandomPolicy;
use autofl_fed::selection::RandomSelector;
use autofl_fed::serve::{read_checkpoint, write_checkpoint, ExperimentRun};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runs `f` with `AUTOFL_THREADS` pinned to `threads` (see
/// `tests/determinism.rs` for the contract).
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let prev = std::env::var("AUTOFL_THREADS").ok();
    std::env::set_var("AUTOFL_THREADS", threads.to_string());
    rayon::refresh_thread_count();
    let result = f();
    match prev {
        Some(v) => std::env::set_var("AUTOFL_THREADS", v),
        None => std::env::remove_var("AUTOFL_THREADS"),
    }
    rayon::refresh_thread_count();
    result
}

fn assert_bit_identical(a: &SimResult, b: &SimResult) {
    assert_eq!(a.records.len(), b.records.len(), "round counts differ");
    for (ra, rb) in a.records.iter().zip(b.records.iter()) {
        assert_eq!(ra.participants, rb.participants, "round {}", ra.round);
        assert_eq!(ra.plans, rb.plans, "round {}", ra.round);
        assert_eq!(ra.dropped, rb.dropped, "round {}", ra.round);
        assert_eq!(ra.dropouts, rb.dropouts, "round {}", ra.round);
        assert_eq!(ra.adversarial, rb.adversarial, "round {}", ra.round);
        assert_eq!(ra.flagged, rb.flagged, "round {}", ra.round);
        assert_eq!(ra.accuracy.to_bits(), rb.accuracy.to_bits());
        assert_eq!(ra.round_time_s.to_bits(), rb.round_time_s.to_bits());
        assert_eq!(ra.active_energy_j.to_bits(), rb.active_energy_j.to_bits());
        assert_eq!(ra.idle_energy_j.to_bits(), rb.idle_energy_j.to_bits());
    }
    assert_eq!(a.ppw_global().to_bits(), b.ppw_global().to_bits());
    assert_eq!(a.ppw_local().to_bits(), b.ppw_local().to_bits());
}

// ---------------------------------------------------------------------
// Disabled-path neutrality
// ---------------------------------------------------------------------

/// An adversary config whose every role fraction is zero assigns only
/// honest devices and must leave the trajectory bit-identical to no
/// adversary at all — the only change is that the per-round adversarial
/// counters appear (as zero) on the records.
#[test]
fn zero_fraction_adversary_reproduces_the_bare_engine_bit_for_bit() {
    let mut base_cfg = SimConfig::smoke(17);
    base_cfg.max_rounds = 25;
    base_cfg.target_accuracy = Some(1.1);
    let mut adv_cfg = base_cfg.clone();
    adv_cfg.adversary = Some(AdversaryConfig::poisoning(0.0));

    let base = Simulation::new(base_cfg).run(&mut RandomSelector::new());
    let with_adv = Simulation::new(adv_cfg).run(&mut RandomSelector::new());

    assert_eq!(base.records.len(), with_adv.records.len());
    for (ra, rb) in base.records.iter().zip(&with_adv.records) {
        assert_eq!(ra.participants, rb.participants, "round {}", ra.round);
        assert_eq!(ra.plans, rb.plans);
        assert_eq!(ra.dropped, rb.dropped);
        assert_eq!(ra.dropouts, rb.dropouts);
        assert_eq!(ra.accuracy.to_bits(), rb.accuracy.to_bits());
        assert_eq!(ra.round_time_s.to_bits(), rb.round_time_s.to_bits());
        assert_eq!(ra.active_energy_j.to_bits(), rb.active_energy_j.to_bits());
        assert_eq!(ra.idle_energy_j.to_bits(), rb.idle_energy_j.to_bits());
        assert!(
            ra.adversarial.is_none() && ra.flagged.is_none(),
            "no adversary must record no adversary stats"
        );
        assert_eq!(rb.adversarial, Some(0), "all-honest fleet");
        assert_eq!(rb.flagged, Some(0));
    }
    assert_eq!(base.ppw_global().to_bits(), with_adv.ppw_global().to_bits());
}

/// The learned policy reads the same reward inputs either way: an
/// all-honest adversary config must not perturb AutoFL's selections.
#[test]
fn zero_fraction_adversary_is_neutral_for_the_learned_policy() {
    let mut base_cfg = SimConfig::smoke(23);
    base_cfg.max_rounds = 15;
    base_cfg.target_accuracy = Some(1.1);
    let mut adv_cfg = base_cfg.clone();
    adv_cfg.adversary = Some(AdversaryConfig::mixed(0.0));

    let base = Simulation::new(base_cfg).run(&mut autofl_core::AutoFl::paper_default());
    let with_adv = Simulation::new(adv_cfg).run(&mut autofl_core::AutoFl::paper_default());
    assert_eq!(base.records.len(), with_adv.records.len());
    for (ra, rb) in base.records.iter().zip(&with_adv.records) {
        assert_eq!(ra.participants, rb.participants, "round {}", ra.round);
        assert_eq!(ra.accuracy.to_bits(), rb.accuracy.to_bits());
    }
}

// ---------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------

/// The acceptance contract: an adversarial run (mixed roles, realistic
/// fleet dynamics, a robust sharded aggregator) is bit-reproducible
/// across `AUTOFL_THREADS` × shard layouts — roles and per-round
/// misbehaviour live on tagged per-device streams, never on scheduling.
#[test]
fn adversarial_runs_are_bit_identical_across_threads_and_shards() {
    let run = |threads: usize, shards: usize| {
        with_threads(threads, || {
            let mut cfg = SimConfig::smoke(21);
            cfg.scenario = autofl_device::scenario::VarianceScenario::realistic();
            cfg.fleet = Some(FleetDynamics::realistic());
            cfg.max_rounds = 12;
            cfg.target_accuracy = Some(1.1);
            cfg.shards = shards;
            cfg.algorithm = AggregationAlgorithm::Median;
            let mut adv = AdversaryConfig::mixed(0.2);
            adv.free_rider_fraction = 0.1;
            adv.faulty_sensor_fraction = 0.1;
            cfg.adversary = Some(adv);
            Simulation::new(cfg).run(&mut RandomSelector::new())
        })
    };
    let base = run(1, 1);
    let adversarial: usize = base
        .records
        .iter()
        .map(|r| r.adversarial.expect("subsystem on"))
        .sum();
    assert!(adversarial > 0, "the 40% mixed fleet must select attackers");
    for threads in [1, 4] {
        for shards in [1, 4] {
            if (threads, shards) == (1, 1) {
                continue;
            }
            assert_bit_identical(&base, &run(threads, shards));
        }
    }
}

// ---------------------------------------------------------------------
// Free-rider accounting
// ---------------------------------------------------------------------

/// Free-riders skip compute but still transmit: versus the same honest
/// fleet they burn strictly less active energy, uplink exactly the same
/// bytes, and every one of them is flagged by the server.
#[test]
fn free_riders_cost_communication_but_not_compute() {
    let make_cfg = |free_riders: bool| {
        let mut cfg = SimConfig::smoke(29);
        cfg.max_rounds = 8;
        cfg.target_accuracy = Some(1.1);
        cfg.network = Some(NetworkFabric::new(LinkModel::ideal()));
        if free_riders {
            let mut adv = AdversaryConfig::poisoning(0.0);
            adv.free_rider_fraction = 1.0;
            cfg.adversary = Some(adv);
        }
        cfg
    };
    let honest = Simulation::new(make_cfg(false)).run(&mut RandomSelector::new());
    let lazy = Simulation::new(make_cfg(true)).run(&mut RandomSelector::new());
    assert_eq!(honest.records.len(), lazy.records.len());
    for (rh, rl) in honest.records.iter().zip(&lazy.records) {
        assert_eq!(rh.participants, rl.participants, "round {}", rh.round);
        assert!(
            rl.active_energy_j < rh.active_energy_j,
            "round {}: comm-only energy {} must undercut honest {}",
            rh.round,
            rl.active_energy_j,
            rh.active_energy_j
        );
        assert_eq!(
            rh.net.expect("fabric").bytes_uplinked,
            rl.net.expect("fabric").bytes_uplinked,
            "round {}: a zero-work update still ships full-size",
            rh.round
        );
        assert_eq!(
            rl.adversarial,
            Some(rl.participants.len()),
            "round {}: the whole cohort free-rides",
            rl.round
        );
        let landed = rl.update_fractions.iter().filter(|&&f| f > 0.0).count();
        assert_eq!(
            rl.flagged,
            Some(landed),
            "round {}: every landed zero-mass update is flagged",
            rl.round
        );
    }
}

// ---------------------------------------------------------------------
// Checkpoint/resume
// ---------------------------------------------------------------------

/// Kill-and-resume byte-equality with the adversary active: role
/// assignment and per-round misbehaviour are pure functions of
/// `(seed, TAG_ADV, round, id)`, so a resumed run replays the same
/// attacks and the same robust-aggregation outcomes, byte for byte.
#[test]
fn checkpoint_resume_with_adversaries_is_byte_identical() {
    let trace = |records: &[RoundRecord]| -> String {
        records
            .iter()
            .map(|r| format!("{}\n", serde_json::to_string(r).expect("record serializes")))
            .collect()
    };
    let mut config = SimConfig::tiny_test(37);
    config.fleet = Some(FleetDynamics::realistic());
    config.algorithm = AggregationAlgorithm::Median;
    let mut adv = AdversaryConfig::mixed(0.3);
    adv.free_rider_fraction = 0.1;
    config.adversary = Some(adv);
    config.max_rounds = 10;
    config.target_accuracy = Some(1.1);
    let policy = &RandomPolicy;

    let mut straight = ExperimentRun::new(&config, policy, None).expect("config validates");
    while straight.step().expect("no observers").is_some() {}
    let reference = trace(straight.records());
    assert!(
        reference.contains("\"adversarial\":"),
        "adversary-enabled traces must carry the counters"
    );

    let mut first = ExperimentRun::new(&config, policy, None).expect("config validates");
    for _ in 0..5 {
        first
            .step()
            .expect("no observers")
            .expect("interrupt point is before the end of the run");
    }
    let dir = std::env::temp_dir().join(format!("autofl-adv-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("adv.ckpt.json");
    write_checkpoint(&path, first.state_snapshot()).expect("checkpoint writes");
    drop(first); // the "killed" process

    let payload = read_checkpoint(&path).expect("checkpoint validates");
    let mut resumed =
        ExperimentRun::resume(&config, policy, None, &payload).expect("checkpoint restores");
    while resumed.step().expect("no observers").is_some() {}
    let resumed = trace(resumed.records());
    std::fs::remove_dir_all(&dir).unwrap();
    assert_eq!(
        reference, resumed,
        "adversarial trace diverged after resume"
    );
}

// ---------------------------------------------------------------------
// Aggregator properties
// ---------------------------------------------------------------------

fn random_updates(rng: &mut SmallRng, n: usize, dim: usize) -> Vec<ClientUpdate> {
    (0..n)
        .map(|_| ClientUpdate {
            delta: (0..dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect(),
            num_samples: rng.gen_range(1usize..200),
            local_steps: rng.gen_range(1usize..8),
        })
        .collect()
}

fn aggregate_with(
    algorithm: &AggregationAlgorithm,
    updates: &[ClientUpdate],
    dim: usize,
    shards: usize,
) -> Vec<f32> {
    let mut global = vec![0.25f32; dim];
    algorithm.aggregate_sharded(&mut global, updates, shards);
    global
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Order statistics are order-blind: permuting the cohort leaves the
    /// median and trimmed-mean aggregates bit-identical.
    #[test]
    fn median_and_trimmed_mean_are_permutation_invariant(
        seed in 0u64..1_000_000,
        n in 1usize..12,
        dim in 1usize..40,
        rotate in 0usize..12,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let updates = random_updates(&mut rng, n, dim);
        let mut permuted = updates.clone();
        permuted.rotate_left(rotate % n);
        permuted.reverse();
        for algorithm in [
            AggregationAlgorithm::Median,
            AggregationAlgorithm::TrimmedMean { trim: 0.2 },
        ] {
            let a = aggregate_with(&algorithm, &updates, dim, 1);
            let b = aggregate_with(&algorithm, &permuted, dim, 1);
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{}", algorithm.name());
            }
        }
    }

    /// Krum never synthesises: the aggregate is the starting point plus
    /// exactly one submitted update, verbatim, and the selection is the
    /// pairwise-score argmin.
    #[test]
    fn krum_applies_exactly_one_submitted_update(
        seed in 0u64..1_000_000,
        n in 1usize..10,
        dim in 1usize..40,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let updates = random_updates(&mut rng, n, dim);
        let global = aggregate_with(&AggregationAlgorithm::Krum, &updates, dim, 1);
        let chosen = KrumAggregator::select(&updates);
        prop_assert!(chosen < n);
        let expected: Vec<f32> = updates[chosen]
            .delta
            .iter()
            .map(|d| (f64::from(0.25f32) + f64::from(*d)) as f32)
            .collect();
        for (x, y) in global.iter().zip(&expected) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "chosen update {} not verbatim", chosen);
        }
    }

    /// At `trim = 0` nothing is discarded and the trimmed mean collapses
    /// to sample-weighted FedAvg, bit for bit.
    #[test]
    fn trimmed_mean_at_zero_trim_is_fedavg(
        seed in 0u64..1_000_000,
        n in 1usize..10,
        dim in 1usize..40,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let updates = random_updates(&mut rng, n, dim);
        let fedavg = aggregate_with(&AggregationAlgorithm::FedAvg, &updates, dim, 1);
        let trimmed = aggregate_with(
            &AggregationAlgorithm::TrimmedMean { trim: 0.0 }, &updates, dim, 1,
        );
        for (x, y) in fedavg.iter().zip(&trimmed) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Everywhere an exact two-level combine is claimed
    /// (`exact_sharded()`), the sharded aggregate equals the flat one bit
    /// for bit, for every shard count.
    #[test]
    fn sharded_equals_flat_wherever_exactness_is_claimed(
        seed in 0u64..1_000_000,
        n in 1usize..10,
        dim in 1usize..40,
        shards in 1usize..9,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let updates = random_updates(&mut rng, n, dim);
        for algorithm in [
            AggregationAlgorithm::FedAvg,
            AggregationAlgorithm::FedNova,
            AggregationAlgorithm::Median,
            AggregationAlgorithm::TrimmedMean { trim: 0.25 },
        ] {
            prop_assert!(algorithm.exact_sharded());
            let flat = aggregate_with(&algorithm, &updates, dim, 1);
            let sharded = aggregate_with(&algorithm, &updates, dim, shards);
            for (x, y) in flat.iter().zip(&sharded) {
                prop_assert_eq!(
                    x.to_bits(), y.to_bits(),
                    "{} at {} shards", algorithm.name(), shards
                );
            }
        }
    }

    /// Role assignment is a pure function of `(seed, id)`: independent of
    /// call order, other devices, and the fraction layout within a role.
    #[test]
    fn role_assignment_is_pure_in_seed_and_id(
        seed in 0u64..1_000_000,
        id in 0usize..10_000,
    ) {
        let adv = AdversaryConfig::mixed(0.3);
        let first = adv.role_of(seed, id);
        for _ in 0..4 {
            prop_assert_eq!(adv.role_of(seed, id), first);
        }
        // Raising a disjoint role's fraction never flips an assignment
        // between the roles below it in the cumulative cut.
        let mut wider = adv;
        wider.faulty_sensor_fraction = 0.2;
        let widened = wider.role_of(seed, id);
        if first != AdversaryRole::Honest {
            prop_assert_eq!(widened, first, "cut widening reshuffled a role");
        }
    }
}

// ---------------------------------------------------------------------
// Golden spec + trace: poisoners vs Krum, end to end.
// ---------------------------------------------------------------------

/// The adversarial smoke spec: a 30% label-flipping fleet under Krum at
/// smoke scale. Regenerate with `AUTOFL_REGEN_SPECS=1 cargo test --test
/// adversary` after an intentional schema change.
fn adv_smoke_spec() -> ExperimentSpec {
    let mut config = SimConfig::smoke(42);
    config.max_rounds = 60;
    config.target_accuracy = Some(1.1);
    config.algorithm = AggregationAlgorithm::Krum;
    config.adversary = Some(AdversaryConfig::poisoning(0.3));
    ExperimentSpec::new("adv-smoke", config, ["FedAvg-Random"], 1)
}

#[test]
fn checked_in_adv_spec_matches_its_generator() {
    let path = "tests/specs/adv_smoke.json";
    let spec = adv_smoke_spec();
    if std::env::var("AUTOFL_REGEN_SPECS").is_ok() {
        std::fs::write(path, spec.to_json() + "\n").expect("write spec file");
        return;
    }
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{path}: {e} (AUTOFL_REGEN_SPECS=1 to create)"));
    let parsed = ExperimentSpec::from_json(&text).expect(path);
    assert_eq!(parsed, spec, "{path} drifted from its generator");
    assert_eq!(text.trim_end(), spec.to_json(), "{path} is not canonical");
}

#[test]
fn adv_spec_trace_matches_the_checked_in_golden_file() {
    // Pins the adversarial trajectory — poisoners active, Krum filtering,
    // `adversarial`/`flagged` counters on every record — byte for byte,
    // exactly as `spec_run tests/specs/adv_smoke.json --trace` writes it.
    let path = "tests/specs/adv_smoke_trace.jsonl";
    let spec = adv_smoke_spec();
    let registry = standard_registry();
    let policy = registry
        .get(&spec.policies[0])
        .expect("first policy resolves");
    let mut sink = JsonlSink::new(Vec::new());
    let result = run_policy_observed(&spec.config, policy, &mut [&mut sink])
        .expect("in-memory sink cannot fail");
    let produced = String::from_utf8(sink.into_inner()).expect("JSONL is UTF-8");
    assert_eq!(produced.lines().count(), result.records.len());
    let poisoned: usize = result
        .records
        .iter()
        .map(|r| r.adversarial.expect("subsystem on"))
        .sum();
    assert!(
        poisoned > 0,
        "the 30% poisoning fleet must select attackers"
    );
    if std::env::var("AUTOFL_REGEN_SPECS").is_ok() {
        std::fs::write(path, &produced).expect("write golden trace");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{path}: {e} (AUTOFL_REGEN_SPECS=1 to create)"));
    assert!(
        produced == golden,
        "{path} drifted from `spec_run --trace` output: the JSONL record \
         format or the adversarial smoke trajectory changed \
         (AUTOFL_REGEN_SPECS=1 to regenerate intentionally)"
    );
}

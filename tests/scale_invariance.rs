//! Scale-invariance contracts of the sharded simulator.
//!
//! The `shards` knob restructures the per-device stores and the
//! aggregation tree; `AUTOFL_THREADS` restructures scheduling. Neither
//! may ever change a result. This suite pins that end to end:
//!
//! * hierarchical FedAvg/FedNova aggregation is bit-equal to the flat
//!   path for *random* shard counts (property test over random cohorts),
//! * a 10k-device smoke run — fleet dynamics, churn, runtime variance —
//!   is bit-identical across shards ∈ {1, 4, 16} × threads ∈ {1, 4}
//!   for random, cluster and oracle policies (and a 1k-device run for
//!   the AutoFL controller's top-K cut),
//! * the labels-only surrogate data path produces the same partition
//!   statistics as the full generator.

use autofl::fed::algorithms::{AggregationAlgorithm, ClientUpdate, ExactF32Sum};
use autofl::fed::engine::{SimConfig, SimResult, Simulation};
use autofl::fed::fleet::FleetDynamics;
use autofl::fed::policy::Policy;
use autofl::fed::runtime::AsyncRuntime;
use autofl::standard_registry;
use autofl_data::partition::DataDistribution;
use autofl_data::FlData;
use autofl_device::scenario::VarianceScenario;
use autofl_nn::tensor::Tensor;
use autofl_nn::zoo::Workload;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runs `f` with `AUTOFL_THREADS` pinned, restoring the previous value.
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let prev = std::env::var("AUTOFL_THREADS").ok();
    std::env::set_var("AUTOFL_THREADS", threads.to_string());
    rayon::refresh_thread_count();
    let result = f();
    match prev {
        Some(v) => std::env::set_var("AUTOFL_THREADS", v),
        None => std::env::remove_var("AUTOFL_THREADS"),
    }
    rayon::refresh_thread_count();
    result
}

fn assert_bit_identical(a: &SimResult, b: &SimResult, label: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{label}: round counts");
    for (ra, rb) in a.records.iter().zip(b.records.iter()) {
        assert_eq!(ra.participants, rb.participants, "{label} r{}", ra.round);
        assert_eq!(ra.plans, rb.plans, "{label} r{}", ra.round);
        assert_eq!(ra.dropped, rb.dropped, "{label} r{}", ra.round);
        assert_eq!(ra.dropouts, rb.dropouts, "{label} r{}", ra.round);
        assert_eq!(ra.ineligible, rb.ineligible, "{label} r{}", ra.round);
        assert_eq!(ra.accuracy.to_bits(), rb.accuracy.to_bits(), "{label}");
        assert_eq!(
            ra.active_energy_j.to_bits(),
            rb.active_energy_j.to_bits(),
            "{label}"
        );
        assert_eq!(
            ra.idle_energy_j.to_bits(),
            rb.idle_energy_j.to_bits(),
            "{label}"
        );
        assert_eq!(
            ra.round_time_s.to_bits(),
            rb.round_time_s.to_bits(),
            "{label}"
        );
        assert_eq!(
            ra.logical_time_s.to_bits(),
            rb.logical_time_s.to_bits(),
            "{label}"
        );
        assert_eq!(
            ra.mean_staleness.to_bits(),
            rb.mean_staleness.to_bits(),
            "{label}"
        );
    }
}

/// A 10k-device configuration with every scale feature active: sharded
/// stores, fleet dynamics (battery, churn, dropout), runtime variance.
fn scale_config(shards: usize) -> SimConfig {
    Simulation::builder(Workload::CnnMnist)
        .devices(10_000)
        .shards(shards)
        .samples_per_device(8)
        .test_samples(64)
        .scenario(VarianceScenario::realistic())
        .fleet_dynamics(FleetDynamics::with_dropout_rate(0.25))
        .max_rounds(5)
        .target_accuracy(1.1)
        .seed(1301)
        .build_config()
        .expect("scale config is valid")
}

fn run_policy_at(config: SimConfig, policy: &dyn Policy) -> SimResult {
    let mut selector = policy.make_selector();
    Simulation::new(config).run(selector.as_mut())
}

#[test]
fn ten_k_device_run_is_bit_identical_across_shards_and_threads() {
    let registry = standard_registry();
    for name in ["FedAvg-Random", "C3", "O_FL"] {
        let policy = registry.expect(name);
        let base = with_threads(1, || run_policy_at(scale_config(1), policy));
        let dropouts: usize = base.records.iter().map(|r| r.dropouts.len()).sum();
        assert!(dropouts > 0, "{name}: churn must actually drop devices");
        for shards in [1, 4, 16] {
            for threads in [1, 4] {
                if (shards, threads) == (1, 1) {
                    continue;
                }
                let other = with_threads(threads, || run_policy_at(scale_config(shards), policy));
                assert_bit_identical(&base, &other, &format!("{name} s{shards} t{threads}"));
            }
        }
    }
}

#[test]
fn hundred_k_device_async_run_is_bit_identical_across_shards_and_threads() {
    // The full digest matrix at the next fleet-size decade: 100k devices
    // with fleet dynamics AND the event-driven runtime (a 3-deep buffered
    // pipeline, so staleness weighting and out-of-order completion are
    // live) at AUTOFL_THREADS ∈ {1, 2, 4} × shards ∈ {1, 4, 16}.
    let config = |shards: usize| {
        Simulation::builder(Workload::CnnMnist)
            .devices(100_000)
            .shards(shards)
            .samples_per_device(4)
            .test_samples(32)
            .scenario(VarianceScenario::realistic())
            .fleet_dynamics(FleetDynamics::with_dropout_rate(0.25))
            .runtime(AsyncRuntime::buffered(8, 0.5).concurrent_cohorts(3))
            .max_rounds(3)
            .target_accuracy(1.1)
            .seed(1701)
            .build_config()
            .expect("100k async scale config is valid")
    };
    let policy = standard_registry();
    let policy = policy.expect("FedAvg-Random");
    let base = with_threads(1, || run_policy_at(config(1), policy));
    let dropouts: usize = base.records.iter().map(|r| r.dropouts.len()).sum();
    assert!(dropouts > 0, "churn must actually drop devices");
    assert!(
        base.records.iter().any(|r| r.mean_staleness > 0.0),
        "the buffered pipeline must produce stale updates"
    );
    for shards in [1, 4, 16] {
        for threads in [1, 2, 4] {
            if (shards, threads) == (1, 1) {
                continue;
            }
            let other = with_threads(threads, || run_policy_at(config(shards), policy));
            assert_bit_identical(&base, &other, &format!("100k async s{shards} t{threads}"));
        }
    }
}

#[test]
fn autofl_controller_is_bit_identical_across_shards_and_threads() {
    // The controller's Q-value top-K cut and availability binning at a
    // smaller fleet (per-device Q-tables at 10k devices would dominate
    // the suite's runtime without testing anything extra).
    let registry = standard_registry();
    let policy = registry.expect("AutoFL");
    let config = |shards: usize| {
        Simulation::builder(Workload::CnnMnist)
            .devices(1_000)
            .shards(shards)
            .samples_per_device(8)
            .test_samples(64)
            .scenario(VarianceScenario::realistic())
            .fleet_dynamics(FleetDynamics::with_dropout_rate(0.25))
            .max_rounds(5)
            .target_accuracy(1.1)
            .seed(7)
            .build_config()
            .expect("autofl scale config is valid")
    };
    let base = with_threads(1, || run_policy_at(config(1), policy));
    for shards in [4, 16] {
        for threads in [1, 4] {
            let other = with_threads(threads, || run_policy_at(config(shards), policy));
            assert_bit_identical(&base, &other, &format!("AutoFL s{shards} t{threads}"));
        }
    }
}

#[test]
fn stats_only_data_matches_the_full_generator_partition() {
    for workload in [
        Workload::TinyTest,
        Workload::CnnMnist,
        Workload::LstmShakespeare,
    ] {
        for distribution in [
            DataDistribution::IidIdeal,
            DataDistribution::non_iid_percent(60),
        ] {
            let full = FlData::generate(workload, 24, 20, 32, distribution, 9);
            let stats = FlData::generate_stats_only(workload, 24, 20, 32, distribution, 9);
            assert_eq!(full.train.labels(), stats.train.labels(), "{workload:?}");
            assert_eq!(full.test.labels(), stats.test.labels(), "{workload:?}");
            assert!(!stats.train.has_features(), "{workload:?} stores pixels");
            for d in 0..24 {
                assert_eq!(
                    full.partition.device_indices(d),
                    stats.partition.device_indices(d),
                    "{workload:?} device {d}"
                );
                assert_eq!(
                    full.partition.class_counts(d),
                    stats.partition.class_counts(d),
                    "{workload:?} device {d}"
                );
                assert_eq!(
                    full.partition.is_non_iid(d),
                    stats.partition.is_non_iid(d),
                    "{workload:?} device {d}"
                );
            }
        }
    }
}

/// Reference ikj product with ascending-k accumulation and the SIMD
/// kernels' sparse-skip rule — the exact FP addition order the lane-width
/// kernels must reproduce bit for bit, at *any* shape.
fn scalar_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for kk in 0..k {
            let av = a.data()[i * k + kk];
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i * n + j] += av * b.data()[kk * n + j];
            }
        }
    }
    Tensor::from_vec(vec![m, n], out)
}

fn random_tensor(rng: &mut SmallRng, shape: Vec<usize>) -> Tensor {
    let len = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..len)
            .map(|_| {
                // A sprinkle of exact zeros exercises the sparse-skip rule.
                if rng.gen_bool(0.1) {
                    0.0
                } else {
                    rng.gen::<f32>() - 0.5
                }
            })
            .collect(),
    )
}

fn assert_tensor_bits_equal(a: &Tensor, b: &Tensor, label: &str) {
    assert_eq!(a.shape(), b.shape(), "{label}");
    for (x, y) in a.data().iter().zip(b.data()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: {x} vs {y}");
    }
}

fn random_updates(rng: &mut SmallRng, k: usize, params: usize) -> Vec<ClientUpdate> {
    (0..k)
        .map(|_| ClientUpdate {
            delta: (0..params)
                .map(|_| {
                    // Wildly mixed magnitudes: exactly the regime where
                    // float addition order matters most.
                    let magnitude = 10f64.powi(rng.gen_range(-25i32..25));
                    ((rng.gen::<f64>() - 0.5) * magnitude) as f32
                })
                .collect(),
            num_samples: rng.gen_range(1usize..500),
            local_steps: rng.gen_range(1usize..40),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Hierarchical FedAvg == flat FedAvg, bit for bit, for random
    /// cohorts and random shard counts (and the same for FedNova's
    /// step-normalised weighting).
    #[test]
    fn hierarchical_aggregation_is_bit_equal_to_flat(
        seed in 0u64..1_000_000,
        k in 1usize..30,
        params in 1usize..40,
        shards_a in 1usize..50,
        shards_b in 1usize..50,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let updates = random_updates(&mut rng, k, params);
        for algorithm in [AggregationAlgorithm::FedAvg, AggregationAlgorithm::FedNova] {
            let mut flat = vec![0.1f32; params];
            algorithm.aggregate(&mut flat, &updates);
            for shards in [shards_a, shards_b] {
                let mut sharded = vec![0.1f32; params];
                algorithm.aggregate_sharded(&mut sharded, &updates, shards);
                let flat_bits: Vec<u32> = flat.iter().map(|v| v.to_bits()).collect();
                let sharded_bits: Vec<u32> = sharded.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(
                    &flat_bits,
                    &sharded_bits,
                    "{} diverged at {} shards",
                    algorithm.name(),
                    shards
                );
            }
        }
    }

    /// The SIMD matmul trio (`matmul`, `matmul_tn`, `matmul_nt`) is
    /// bit-equal to the scalar ascending-k reference at arbitrary odd
    /// shapes — ranges chosen so tails not divisible by the f32x8 lane
    /// width (and sub-lane-width dimensions) dominate the cases.
    #[test]
    fn simd_matmul_trio_is_bit_equal_to_scalar_at_odd_shapes(
        seed in 0u64..1_000_000,
        m in 1usize..30,
        k in 1usize..30,
        n in 1usize..30,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = random_tensor(&mut rng, vec![m, k]);
        let b = random_tensor(&mut rng, vec![k, n]);
        let expect = scalar_matmul(&a, &b);
        assert_tensor_bits_equal(&a.matmul(&b), &expect, "matmul");
        let at = a.transpose();
        assert_tensor_bits_equal(&at.matmul_tn(&b), &expect, "matmul_tn");
        let bt = b.transpose();
        assert_tensor_bits_equal(&a.matmul_nt(&bt), &expect, "matmul_nt");
    }

    /// The exact accumulator is invariant to summation order and
    /// grouping for arbitrary finite f32 terms.
    #[test]
    fn exact_sum_is_permutation_invariant(
        seed in 0u64..1_000_000,
        n in 1usize..200,
        split in 0usize..200,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let terms: Vec<f32> = (0..n)
            .map(|_| {
                let magnitude = 10f64.powi(rng.gen_range(-40i32..38));
                ((rng.gen::<f64>() - 0.5) * magnitude) as f32
            })
            .collect();
        let mut forward = ExactF32Sum::default();
        for &t in &terms {
            forward.add(t);
        }
        let mut reverse = ExactF32Sum::default();
        for &t in terms.iter().rev() {
            reverse.add(t);
        }
        prop_assert_eq!(forward, reverse);
        // Split into two partials at an arbitrary point and merge.
        let cut = split % n;
        let mut head = ExactF32Sum::default();
        let mut tail = ExactF32Sum::default();
        for &t in &terms[..cut] {
            head.add(t);
        }
        for &t in &terms[cut..] {
            tail.add(t);
        }
        head.merge(&tail);
        prop_assert_eq!(head, forward);
        prop_assert_eq!(head.to_f64().to_bits(), forward.to_f64().to_bits());
    }
}

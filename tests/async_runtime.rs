//! The event-driven runtime's two contracts (see `docs/async-runtime.md`):
//!
//! 1. **Barrier equivalence** — the discrete-event scheduler with a full
//!    barrier (`AsyncRuntime::barrier()`) reproduces the lockstep engine
//!    *bit for bit*: every registered policy, at multiple thread and
//!    shard counts, with fleet dynamics, dropout and OverSelect active.
//! 2. **Determinism** — buffered staleness-weighted aggregation is
//!    bit-reproducible per seed at any thread count, and the staleness
//!    weights themselves are deterministic and sum-normalized.

use autofl_fed::engine::{SimConfig, SimResult, Simulation};
use autofl_fed::fleet::{survivor_weights, FleetDynamics, StragglerPolicy};
use autofl_fed::runtime::{staleness_weight, AsyncRuntime};
use autofl_fed::selection::RandomSelector;
use autofl_nn::zoo::Workload;
use proptest::prelude::*;

/// Runs `f` with `AUTOFL_THREADS` pinned to `threads`, restoring the
/// previous value afterwards (same helper as `tests/determinism.rs`).
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let prev = std::env::var("AUTOFL_THREADS").ok();
    std::env::set_var("AUTOFL_THREADS", threads.to_string());
    rayon::refresh_thread_count();
    let result = f();
    match prev {
        Some(v) => std::env::set_var("AUTOFL_THREADS", v),
        None => std::env::remove_var("AUTOFL_THREADS"),
    }
    rayon::refresh_thread_count();
    result
}

/// Bit-level equality over every record field, including the logical-time
/// fields the runtime introduces.
fn assert_bit_identical(a: &SimResult, b: &SimResult, label: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{label}: round counts");
    for (ra, rb) in a.records.iter().zip(b.records.iter()) {
        let at = format!("{label}, round {}", ra.round);
        assert_eq!(ra.round, rb.round, "{at}");
        assert_eq!(ra.participants, rb.participants, "{at}");
        assert_eq!(ra.plans, rb.plans, "{at}");
        assert_eq!(ra.dropped, rb.dropped, "{at}");
        assert_eq!(ra.dropouts, rb.dropouts, "{at}");
        assert_eq!(ra.ineligible, rb.ineligible, "{at}");
        assert_eq!(ra.update_fractions, rb.update_fractions, "{at}");
        // f64 equality on purpose: the contract is bit-reproducibility.
        assert_eq!(ra.accuracy.to_bits(), rb.accuracy.to_bits(), "{at}");
        assert_eq!(ra.round_time_s.to_bits(), rb.round_time_s.to_bits(), "{at}");
        assert_eq!(
            ra.active_energy_j.to_bits(),
            rb.active_energy_j.to_bits(),
            "{at}"
        );
        assert_eq!(
            ra.idle_energy_j.to_bits(),
            rb.idle_energy_j.to_bits(),
            "{at}"
        );
        assert_eq!(
            ra.dispatch_time_s.to_bits(),
            rb.dispatch_time_s.to_bits(),
            "{at}"
        );
        assert_eq!(
            ra.logical_time_s.to_bits(),
            rb.logical_time_s.to_bits(),
            "{at}"
        );
        assert_eq!(
            ra.mean_staleness.to_bits(),
            rb.mean_staleness.to_bits(),
            "{at}"
        );
    }
    assert_eq!(
        a.ppw_global().to_bits(),
        b.ppw_global().to_bits(),
        "{label}"
    );
    assert_eq!(a.ppw_local().to_bits(), b.ppw_local().to_bits(), "{label}");
}

/// A smoke-scale configuration with every fleet-dynamics effect active —
/// churn, battery, mid-round dropout and OverSelect — the hardest config
/// for the equivalence contract.
fn dynamic_config(seed: u64, shards: usize) -> SimConfig {
    let mut cfg = SimConfig::smoke(seed);
    cfg.scenario = autofl_device::scenario::VarianceScenario::realistic();
    cfg.max_rounds = 20;
    cfg.target_accuracy = Some(1.1);
    cfg.shards = shards;
    cfg.fleet = Some(
        FleetDynamics::with_dropout_rate(0.35).straggler(StragglerPolicy::OverSelect { extra: 5 }),
    );
    cfg
}

#[test]
fn barrier_runtime_reproduces_lockstep_for_every_policy() {
    // Digest-pins the barrier-equivalence contract across the whole
    // policy registry (baselines, clusters, oracles, AutoFL) at
    // AUTOFL_THREADS ∈ {1, 4} × shards ∈ {1, 4}.
    let registry = autofl_core::standard_registry();
    for policy in registry.iter() {
        for shards in [1, 4] {
            let lockstep = with_threads(1, || {
                let mut selector = policy.make_selector();
                Simulation::new(dynamic_config(13, shards)).run(selector.as_mut())
            });
            for threads in [1, 4] {
                let event = with_threads(threads, || {
                    let mut cfg = dynamic_config(13, shards);
                    cfg.runtime = Some(AsyncRuntime::barrier());
                    let mut selector = policy.make_selector();
                    Simulation::new(cfg).run(selector.as_mut())
                });
                let label = format!("{} (shards {shards}, threads {threads})", policy.name());
                assert_bit_identical(&lockstep, &event, &label);
                assert!(
                    event.records.iter().all(|r| r.mean_staleness == 0.0),
                    "{label}: a full barrier has no stale updates"
                );
            }
        }
    }
}

#[test]
fn lockstep_logical_clock_accumulates_round_times() {
    let result = Simulation::new(dynamic_config(7, 1)).run(&mut RandomSelector::new());
    let mut clock = 0.0f64;
    for rec in &result.records {
        assert_eq!(rec.dispatch_time_s.to_bits(), clock.to_bits());
        clock += rec.round_time_s;
        assert_eq!(rec.logical_time_s.to_bits(), clock.to_bits());
    }
}

fn buffered_config(seed: u64) -> SimConfig {
    let mut cfg = dynamic_config(seed, 4);
    cfg.runtime = Some(AsyncRuntime::buffered(8, 0.5).concurrent_cohorts(3));
    cfg
}

#[test]
fn buffered_runtime_is_bit_reproducible_across_thread_counts() {
    let run = |threads: usize| {
        with_threads(threads, || {
            Simulation::new(buffered_config(19)).run(&mut RandomSelector::new())
        })
    };
    let base = run(1);
    for threads in [2, 4] {
        assert_bit_identical(&base, &run(threads), &format!("threads {threads}"));
    }
    // The async pipeline must actually exercise staleness: with three
    // cohorts in flight and an 8-update buffer, some updates wait.
    assert!(
        base.records.iter().any(|r| r.mean_staleness > 0.0),
        "a 3-deep pipeline must produce stale updates"
    );
    // Logical time stays monotone in completion order even when cohorts
    // finish out of dispatch order.
    for rec in &base.records {
        assert!(rec.logical_time_s >= rec.dispatch_time_s);
        assert!(rec.mean_staleness.is_finite() && rec.mean_staleness >= 0.0);
    }
}

#[test]
fn buffered_runtime_diverges_from_the_barrier() {
    // Sanity check that the buffer/staleness knobs are actually live:
    // a buffered run must differ observably from the barrier run.
    let barrier = {
        let mut cfg = dynamic_config(19, 4);
        cfg.runtime = Some(AsyncRuntime::barrier());
        Simulation::new(cfg).run(&mut RandomSelector::new())
    };
    let buffered = Simulation::new(buffered_config(19)).run(&mut RandomSelector::new());
    let same_accuracy = barrier
        .records
        .iter()
        .zip(buffered.records.iter())
        .all(|(a, b)| a.accuracy.to_bits() == b.accuracy.to_bits());
    assert!(
        !same_accuracy,
        "buffered staleness-weighted aggregation must change the trajectory"
    );
}

#[test]
fn barrier_equivalence_holds_under_real_training() {
    // The contract is engine-agnostic: pin it once on the real-training
    // path too (tiny workload, few rounds).
    let mk = || {
        let mut cfg = SimConfig::tiny_test(5);
        cfg.fidelity = autofl_fed::engine::Fidelity::RealTraining {
            lr: 0.08,
            eval_samples: 48,
        };
        cfg.max_rounds = 4;
        cfg.target_accuracy = Some(1.1);
        cfg
    };
    let lockstep = Simulation::new(mk()).run(&mut RandomSelector::new());
    let mut cfg = mk();
    cfg.runtime = Some(AsyncRuntime::barrier());
    let event = Simulation::new(cfg).run(&mut RandomSelector::new());
    assert_bit_identical(&lockstep, &event, "real training");
}

#[test]
fn spec_round_trips_the_runtime_block() {
    // AsyncRuntime serializes through SimConfig (spec files) and an
    // absent field deserializes to the lockstep default.
    let mut cfg = SimConfig::tiny_test(1);
    cfg.runtime = Some(AsyncRuntime::buffered(4, 1.0).concurrent_cohorts(2));
    let json = serde_json::to_string(&cfg).expect("config serializes");
    let back: SimConfig = serde_json::from_str(&json).expect("config parses");
    assert_eq!(back, cfg);

    let plain = serde_json::to_string(&SimConfig::tiny_test(1)).expect("serializes");
    let stripped = plain.replace("\"runtime\":null,", "");
    let back: SimConfig = serde_json::from_str(&stripped).expect("pre-runtime spec parses");
    assert_eq!(back.runtime, None);
}

#[test]
fn builder_builds_event_driven_simulations() {
    let result = Simulation::builder(Workload::TinyTest)
        .devices(12)
        .params(autofl_fed::global::GlobalParams::new(8, 1, 4))
        .samples_per_device(24)
        .test_samples(48)
        .max_rounds(6)
        .target_accuracy(1.1)
        .runtime(AsyncRuntime::buffered(2, 1.0))
        .seed(3)
        .build()
        .expect("valid event-driven configuration")
        .run(&mut RandomSelector::new());
    assert_eq!(result.records.len(), 6);
    assert!(result.final_accuracy() > 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Staleness weights are a deterministic pure function, bounded in
    /// (0, 1], exactly 1 when fresh, and non-increasing in staleness.
    #[test]
    fn staleness_weights_are_deterministic_and_bounded(
        staleness in 0u64..10_000,
        exponent in 0.0f64..8.0,
    ) {
        let w = staleness_weight(staleness, exponent);
        prop_assert_eq!(w.to_bits(), staleness_weight(staleness, exponent).to_bits());
        prop_assert!(w > 0.0 && w <= 1.0);
        prop_assert_eq!(staleness_weight(0, exponent).to_bits(), 1.0f64.to_bits());
        prop_assert!(staleness_weight(staleness + 1, exponent) <= w);
    }

    /// Aggregation stays sum-normalized under staleness discounting: the
    /// survivor weights computed from staleness-discounted sample masses
    /// sum to exactly 1.0 (bit-for-bit), as the engine's debug invariant
    /// demands.
    #[test]
    fn discounted_survivor_weights_sum_to_exactly_one(
        seed in 0u64..1_000_000,
        cohort in 1usize..40,
        exponent in 0.0f64..4.0,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let effectives: Vec<f64> = (0..cohort)
            .map(|_| {
                let mass = rng.gen_range(1..10_000u32) as f64;
                let staleness = rng.gen_range(0..50u64);
                mass * staleness_weight(staleness, exponent)
            })
            .collect();
        let weights = survivor_weights(&effectives);
        prop_assert_eq!(weights.iter().sum::<f64>().to_bits(), 1.0f64.to_bits());
    }
}

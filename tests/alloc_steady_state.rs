//! Counting-allocator proof of the round loop's allocation hygiene.
//!
//! The fleet-dynamics hot path — session evolution, condition sampling,
//! throttle overlay, mid-round dropout draws and lifecycle advancement —
//! works entirely in buffers sized at construction. After a short
//! warm-up, steady-state rounds must perform **zero** heap allocations on
//! the inline (`AUTOFL_THREADS=1`) path; multicore runs additionally pay
//! only the pool's per-fan-out bookkeeping, never per-device storage.
//!
//! This binary installs a counting `#[global_allocator]`, so it holds
//! exactly one test: any neighbour running concurrently would perturb the
//! counter.

use autofl_device::fleet::{DeviceId, Fleet};
use autofl_device::scenario::VarianceScenario;
use autofl_device::store::ConditionsStore;
use autofl_device::tier::DeviceTier;
use autofl_fed::fleet::{FleetDynamics, FleetStore};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pass-through allocator that counts every allocation (and reallocation)
/// made by the measuring thread while its `ENABLED` flag is set.
///
/// The gate is thread-local on purpose: the test harness runs threads of
/// its own (timers, result channels) whose incidental allocations are
/// not the round loop's — the contract under test is "the dynamics path
/// itself allocates nothing", and on the `AUTOFL_THREADS=1` inline path
/// every dynamics allocation happens on the calling thread.
struct CountingAllocator;

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
}
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

fn counting_enabled() -> bool {
    // `try_with` never allocates; it only fails during TLS teardown.
    ENABLED.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_enabled() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if counting_enabled() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_enabled() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_dynamics_rounds_are_allocation_free() {
    // The inline path is the allocation-free contract; parallel fan-outs
    // may box their jobs.
    std::env::set_var("AUTOFL_THREADS", "1");
    rayon::refresh_thread_count();

    let config = FleetDynamics::with_dropout_rate(0.25);
    let fleet = Fleet::custom(
        &[
            (DeviceTier::High, 2_000),
            (DeviceTier::Mid, 3_000),
            (DeviceTier::Low, 5_000),
        ],
        1,
    );
    let shards = 8;
    let mut store = FleetStore::new(&config, &fleet, 42, shards);
    let mut conditions = ConditionsStore::new(fleet.len(), shards);
    let scenario = VarianceScenario::realistic();

    // A fixed cohort with per-participant budgets, sized once up front
    // (the engine holds these in its round scratch the same way).
    let participants: Vec<DeviceId> = (0..20).map(|i| DeviceId(i * 97)).collect();
    let busy_s: Vec<f64> = (0..20).map(|i| 5.0 + i as f64).collect();
    let energy_j: Vec<f64> = (0..20).map(|i| 40.0 + 3.0 * i as f64).collect();

    let mut dropouts_seen = 0usize;
    let run_round = |round: usize,
                     store: &mut FleetStore,
                     conditions: &mut ConditionsStore,
                     dropouts_seen: &mut usize| {
        store.begin_round(&config, &fleet, round);
        scenario.sample_into(&fleet, 0x5eed ^ (round as u64) << 17, conditions);
        store.overlay_throttle(conditions);
        for (i, id) in participants.iter().enumerate() {
            if store
                .mid_round_dropout(&config, &fleet, round, *id, energy_j[i])
                .is_some()
            {
                *dropouts_seen += 1;
            }
        }
        store.end_round(&config, &fleet, 60.0, &participants, &busy_s, &energy_j);
    };

    // Warm-up: first rounds may still grow buffers to their steady size.
    for round in 0..3 {
        run_round(round, &mut store, &mut conditions, &mut dropouts_seen);
    }

    ALLOCATIONS.store(0, Ordering::SeqCst);
    ENABLED.with(|f| f.set(true));
    for round in 3..10 {
        run_round(round, &mut store, &mut conditions, &mut dropouts_seen);
    }
    ENABLED.with(|f| f.set(false));

    let n = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        n, 0,
        "steady-state dynamics rounds performed {n} heap allocations"
    );
    // The loop above must exercise the real path, not a degenerate one.
    assert!(dropouts_seen > 0, "25% churn never dropped a participant");
    assert!(store.eligible_count() > 0, "no device ever checked in");
}

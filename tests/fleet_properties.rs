//! Property tests for the fleet-dynamics subsystem (proptest shim):
//! state-of-charge and throttle invariants, bit-exact survivor weights,
//! and the dropout set's subset/determinism contract.

use autofl::fed::engine::{SimConfig, Simulation};
use autofl::fed::fleet::{survivor_weights, FleetDynamics, FleetState, StragglerPolicy};
use autofl::fed::selection::RandomSelector;
use autofl_device::cost::{execute, ExecutionPlan, TrainingTask};
use autofl_device::fleet::Fleet;
use autofl_device::scenario::DeviceConditions;
use autofl_device::tier::DeviceTier;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn dropout_config(seed: u64, rate: f64) -> SimConfig {
    let mut cfg = SimConfig::tiny_test(seed);
    cfg.max_rounds = 6;
    cfg.target_accuracy = Some(1.1);
    cfg.fleet = Some(FleetDynamics::with_dropout_rate(rate));
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// State of charge and throttle stay in [0, 1] under arbitrary churn
    /// knobs, round lengths and participation patterns.
    #[test]
    fn soc_and_throttle_stay_in_unit_interval(
        seed in 0u64..1_000_000,
        charge_rate in 0.0f64..0.01,
        drain in 0.0f64..0.01,
        heat in 0.0f64..0.05,
        capacity_scale in 0.001f64..2.0,
        round_time in 1.0f64..500.0,
    ) {
        let config = FleetDynamics {
            charge_rate_per_s: charge_rate,
            idle_drain_per_s: drain,
            heat_per_s: heat,
            battery_capacity_scale: capacity_scale,
            ..FleetDynamics::realistic()
        };
        let fleet = Fleet::custom(&[(DeviceTier::Mid, 6), (DeviceTier::Low, 6)], seed);
        let shards = 1 + (seed as usize % 5);
        let mut state = FleetState::new(&config, &fleet, seed, shards);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xcafe);
        for round in 0..30 {
            state.begin_round(&config, &fleet, round);
            prop_assert!(
                (0..fleet.len()).all(|i| (0.0..=1.0).contains(&state.availability(i).soc))
            );
            // A random subset trains with a random (possibly huge) energy.
            let participants: Vec<_> = fleet
                .ids()
                .into_iter()
                .filter(|_| rng.gen_bool(0.4))
                .collect();
            let busy: Vec<f64> = participants.iter().map(|_| rng.gen_range(0.0..round_time)).collect();
            let energy: Vec<f64> = participants.iter().map(|_| rng.gen_range(0.0..100_000.0)).collect();
            state.end_round(&config, &fleet, round_time, &participants, &busy, &energy);
            for lifecycle in (0..fleet.len()).map(|i| state.lifecycle(i)) {
                prop_assert!((0.0..=1.0).contains(&lifecycle.soc), "soc {}", lifecycle.soc);
                prop_assert!(
                    (0.0..=1.0).contains(&lifecycle.throttle),
                    "throttle {}",
                    lifecycle.throttle
                );
            }
        }
    }

    /// Thermal throttling never increases the effective frequency: any
    /// hotter device computes no faster than a cooler one, and a cool
    /// device matches the static model exactly.
    #[test]
    fn throttle_never_increases_effective_frequency(
        t_lo in 0.0f64..1.0,
        gap in 0.0f64..1.0,
        flops in 1_000_000u64..100_000_000_000,
    ) {
        let t_hi = (t_lo + gap).min(1.0);
        let task = TrainingTask { flops, upload_bytes: 1_000_000 };
        for tier in DeviceTier::all() {
            let plan = ExecutionPlan::cpu_max(tier);
            let at = |throttle: f64| {
                execute(tier, plan, task, &DeviceConditions { throttle, ..DeviceConditions::ideal() })
            };
            prop_assert!(at(t_hi).compute_time_s >= at(t_lo).compute_time_s);
            prop_assert!(at(t_lo).compute_time_s >= at(0.0).compute_time_s);
            prop_assert_eq!(
                at(0.0).compute_time_s.to_bits(),
                execute(tier, plan, task, &DeviceConditions::ideal()).compute_time_s.to_bits()
            );
        }
    }

    /// Survivor weights in partial aggregation are non-negative,
    /// proportional to effective sample mass, and sum to exactly 1.0.
    #[test]
    fn survivor_weights_sum_to_one_bit_exact(
        seed in 0u64..1_000_000,
        n in 1usize..40,
        scale in 0.01f64..1e6,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let effective: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05..1000.0) * scale).collect();
        let w = survivor_weights(&effective);
        prop_assert_eq!(w.len(), n);
        prop_assert!(w.iter().all(|x| *x >= 0.0));
        let sum: f64 = w.iter().sum();
        prop_assert_eq!(sum.to_bits(), 1.0f64.to_bits(), "sum {} of {:?}", sum, w);
        // Proportionality (up to the last-element remainder absorption).
        if n >= 2 {
            let ratio = w[0] / w[1];
            let expected = effective[0] / effective[1];
            prop_assert!((ratio - expected).abs() <= 1e-9 * expected.max(1.0));
        }
    }

    /// The dropout set is always a subset of the selection, disjoint from
    /// the straggler set, and bit-deterministic per seed.
    #[test]
    fn dropout_set_is_a_deterministic_subset_of_the_selection(
        seed in 0u64..1_000_000,
        rate in 0.05f64..0.8,
    ) {
        let run = || {
            let mut sim = Simulation::new(dropout_config(seed, rate));
            let mut selector = RandomSelector::new();
            (0..6).map(|round| sim.run_round(&mut selector, round)).collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        for (ra, rb) in a.iter().zip(&b) {
            prop_assert_eq!(&ra.participants, &rb.participants);
            prop_assert_eq!(&ra.dropouts, &rb.dropouts);
            prop_assert_eq!(&ra.dropped, &rb.dropped);
            prop_assert_eq!(ra.accuracy.to_bits(), rb.accuracy.to_bits());
            for id in &ra.dropouts {
                prop_assert!(ra.participants.contains(id), "dropout outside selection");
                prop_assert!(!ra.dropped.contains(id), "dropout double-counted as straggler");
            }
        }
    }
}

/// The fig16 acceptance property: at a high dropout rate, provisioning
/// `K + extra` participants recovers at least the accuracy the plain
/// `Drop` policy achieves with its shrunken cohorts.
#[test]
fn overselect_recovers_drop_accuracy_under_heavy_dropout() {
    let accuracy_with = |straggler: StragglerPolicy| {
        let mut cfg = SimConfig::smoke(42);
        cfg.max_rounds = 60;
        cfg.target_accuracy = Some(1.1);
        cfg.fleet = Some(FleetDynamics::with_dropout_rate(0.45).straggler(straggler));
        Simulation::new(cfg)
            .run(&mut RandomSelector::new())
            .best_accuracy()
    };
    let drop = accuracy_with(StragglerPolicy::Drop);
    let overselect = accuracy_with(StragglerPolicy::OverSelect { extra: 5 });
    assert!(
        overselect >= drop,
        "OverSelect {overselect} must recover >= Drop {drop} at 45% dropout"
    );
}

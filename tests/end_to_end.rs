//! End-to-end integration tests spanning all crates: data generation →
//! partitioning → device models → round engine → AutoFL learning.

use autofl_core::AutoFl;
use autofl_data::partition::DataDistribution;
use autofl_device::scenario::VarianceScenario;
use autofl_fed::engine::{SimConfig, Simulation};
use autofl_fed::oracle::OracleSelector;
use autofl_fed::selection::{ClusterSelector, RandomSelector};
use autofl_nn::zoo::Workload;

fn paper_cfg() -> SimConfig {
    let mut cfg = SimConfig::paper_default(Workload::CnnMnist);
    cfg.max_rounds = 400;
    cfg
}

#[test]
fn autofl_beats_random_on_global_and_local_ppw() {
    let autofl = Simulation::new(paper_cfg()).run(&mut AutoFl::paper_default());
    let random = Simulation::new(paper_cfg()).run(&mut RandomSelector::new());
    assert!(autofl.converged(), "AutoFL did not converge");
    assert!(
        autofl.ppw_global() > 1.2 * random.ppw_global(),
        "global PPW: AutoFL {} vs random {}",
        autofl.ppw_global(),
        random.ppw_global()
    );
    assert!(
        autofl.ppw_local() > 1.2 * random.ppw_local(),
        "local PPW: AutoFL {} vs random {}",
        autofl.ppw_local(),
        random.ppw_local()
    );
}

#[test]
fn oracle_brackets_autofl_from_above() {
    let autofl = Simulation::new(paper_cfg()).run(&mut AutoFl::paper_default());
    let oracle = Simulation::new(paper_cfg()).run(&mut OracleSelector::full());
    assert!(
        oracle.ppw_global() >= autofl.ppw_global(),
        "oracle {} should be at least AutoFL {}",
        oracle.ppw_global(),
        autofl.ppw_global()
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let mut cfg = paper_cfg();
        cfg.max_rounds = 50;
        cfg.target_accuracy = Some(1.1);
        Simulation::new(cfg).run(&mut AutoFl::paper_default())
    };
    let (a, b) = (run(), run());
    for (ra, rb) in a.records.iter().zip(b.records.iter()) {
        assert_eq!(ra.participants, rb.participants);
        assert_eq!(ra.plans, rb.plans);
        assert_eq!(ra.accuracy, rb.accuracy);
    }
}

#[test]
fn interference_slows_the_random_baseline_more_than_autofl() {
    let mut calm = paper_cfg();
    calm.max_rounds = 300;
    let mut noisy = calm.clone();
    noisy.scenario = VarianceScenario::with_interference();

    let random_calm = Simulation::new(calm).run(&mut RandomSelector::new());
    let random_noisy = Simulation::new(noisy.clone()).run(&mut RandomSelector::new());
    // Interference must cost the data-blind baseline energy.
    assert!(
        random_noisy.energy_to_target_j() > random_calm.energy_to_target_j(),
        "interference should increase baseline energy"
    );
    let autofl_noisy = Simulation::new(noisy).run(&mut AutoFl::paper_default());
    assert!(
        autofl_noisy.ppw_global() > 1.2 * random_noisy.ppw_global(),
        "AutoFL {} vs random {} under interference",
        autofl_noisy.ppw_global(),
        random_noisy.ppw_global()
    );
}

#[test]
fn full_non_iid_stalls_random_but_not_the_oracle() {
    let mut cfg = paper_cfg();
    cfg.distribution = DataDistribution::non_iid_percent(100);
    cfg.max_rounds = 600;
    let random = Simulation::new(cfg.clone()).run(&mut RandomSelector::new());
    let oracle = Simulation::new(cfg.clone()).run(&mut OracleSelector::full());
    let autofl = Simulation::new(cfg).run(&mut AutoFl::paper_default());
    assert!(
        !random.converged(),
        "random should stall under full non-IID, reached {}",
        random.final_accuracy()
    );
    assert!(
        oracle.converged(),
        "oracle should converge under full non-IID, reached {}",
        oracle.final_accuracy()
    );
    assert!(
        autofl.best_accuracy() > random.best_accuracy() + 0.05,
        "AutoFL {} should outlearn random {}",
        autofl.best_accuracy(),
        random.best_accuracy()
    );
}

#[test]
fn performance_and_power_policies_bound_round_time() {
    let mut cfg = paper_cfg();
    cfg.max_rounds = 40;
    cfg.target_accuracy = Some(1.1);
    let perf = Simulation::new(cfg.clone()).run(&mut ClusterSelector::performance());
    let power = Simulation::new(cfg.clone()).run(&mut ClusterSelector::power());
    let random = Simulation::new(cfg).run(&mut RandomSelector::new());
    assert!(perf.mean_round_time_s() < random.mean_round_time_s());
    assert!(random.mean_round_time_s() < power.mean_round_time_s());
}

//! Stochastic fleet dynamics: battery, thermal throttling, user sessions
//! and mid-round dropout, with the engine's straggler-tolerant
//! aggregation policies.
//!
//! ```sh
//! cargo run --release --example fleet_dynamics
//! ```

use autofl::fed::engine::Simulation;
use autofl::{run_policy, standard_registry};
use autofl_device::scenario::VarianceScenario;
use autofl_fed::fleet::{FleetDynamics, StragglerPolicy};
use autofl_nn::zoo::Workload;

fn main() {
    println!("== Fleet dynamics (CNN-MNIST smoke fleet, 25% churn) ==");
    let registry = standard_registry();
    let policies = [
        ("static fleet", None),
        (
            "Drop",
            Some(FleetDynamics::with_dropout_rate(0.25).straggler(StragglerPolicy::Drop)),
        ),
        (
            "Wait(1.5)",
            Some(
                FleetDynamics::with_dropout_rate(0.25)
                    .straggler(StragglerPolicy::WaitBounded { grace: 1.5 }),
            ),
        ),
        (
            "OverSelect(K+5)",
            Some(
                FleetDynamics::with_dropout_rate(0.25)
                    .straggler(StragglerPolicy::OverSelect { extra: 5 }),
            ),
        ),
    ];
    println!(
        "{:<16} {:>16} {:>9} {:>9} {:>10} {:>10}",
        "fleet", "policy", "best-acc", "dropouts", "avg inelig", "PPW"
    );
    for (label, dynamics) in policies {
        let mut builder = Simulation::builder(Workload::CnnMnist)
            .devices(40)
            .samples_per_device(120)
            .test_samples(256)
            .scenario(VarianceScenario::realistic())
            .target_accuracy(1.1)
            .max_rounds(80)
            .seed(42);
        if let Some(dynamics) = dynamics {
            builder = builder.fleet_dynamics(dynamics);
        }
        let config = builder.build_config().expect("valid dynamics study");
        for name in ["FedAvg-Random", "AutoFL"] {
            let result = run_policy(&config, registry.expect(name));
            let dropouts: usize = result.records.iter().map(|r| r.dropouts.len()).sum();
            let inelig: f64 = result
                .records
                .iter()
                .map(|r| r.ineligible as f64)
                .sum::<f64>()
                / result.records.len().max(1) as f64;
            println!(
                "{:<16} {:>16} {:>8.1}% {:>9} {:>10.1} {:>10.2e}",
                label,
                name,
                result.best_accuracy() * 100.0,
                dropouts,
                inelig,
                result.ppw_global(),
            );
        }
    }
    println!("\nChurn shrinks surviving cohorts and costs accuracy; OverSelect provisions");
    println!("K+d so aggregation still sees ~K updates. AutoFL's Q-state includes an");
    println!("availability bin, so it learns to avoid flaky, hot or low-battery devices.");
}

//! Sweep the paper's four global-parameter settings S1–S4 (Table 5) and
//! show how the best fixed device cluster shifts — the Section 3.1
//! characterization — then let AutoFL adapt on its own. Configurations
//! come from `Simulation::builder`; every contender is resolved from the
//! policy registry by name (the clusters C1–C7 are registered policies).
//!
//! ```sh
//! cargo run --release --example heterogeneous_fleet
//! ```

use autofl::fed::engine::Simulation;
use autofl::{run_policy, standard_registry};
use autofl_fed::clusters::CharacterizationCluster;
use autofl_fed::GlobalParams;
use autofl_nn::zoo::Workload;

fn main() {
    println!("== Optimal cluster vs global parameters (CNN-MNIST) ==");
    println!(
        "{:<8} {:>10} {:>12} {:>12}",
        "setting", "best", "best PPWx", "AutoFL PPWx"
    );
    let registry = standard_registry();
    for (label, params) in GlobalParams::paper_settings() {
        let config = Simulation::builder(Workload::CnnMnist)
            .params(params)
            .max_rounds(300)
            .build_config()
            .expect("valid sweep configuration");

        let baseline = run_policy(&config, registry.expect("FedAvg-Random"));
        let base_ppw = baseline.ppw_global();

        // Characterize every fixed Table 4 composition.
        let mut best = ("C0", 1.0);
        for cluster in CharacterizationCluster::fixed() {
            let result = run_policy(&config, registry.expect(cluster.name()));
            let gain = result.ppw_global() / base_ppw;
            if gain > best.1 {
                best = (cluster.name(), gain);
            }
        }

        let learned = run_policy(&config, registry.expect("AutoFL"));
        println!(
            "{:<8} {:>10} {:>11.2}x {:>11.2}x",
            label,
            best.0,
            best.1,
            learned.ppw_global() / base_ppw
        );
    }
    println!(
        "\nThe best fixed composition depends on (B, E, K); AutoFL tracks it without being told."
    );
}

//! Sweep the paper's four global-parameter settings S1–S4 (Table 5) and
//! show how the best fixed device cluster shifts — the Section 3.1
//! characterization — then let AutoFL adapt on its own.
//!
//! ```sh
//! cargo run --release --example heterogeneous_fleet
//! ```

use autofl_core::AutoFl;
use autofl_fed::clusters::CharacterizationCluster;
use autofl_fed::engine::{SimConfig, Simulation};
use autofl_fed::selection::{ClusterSelector, RandomSelector};
use autofl_fed::GlobalParams;
use autofl_nn::zoo::Workload;

fn main() {
    println!("== Optimal cluster vs global parameters (CNN-MNIST) ==");
    println!(
        "{:<8} {:>10} {:>12} {:>12}",
        "setting", "best", "best PPWx", "AutoFL PPWx"
    );
    for (label, params) in GlobalParams::paper_settings() {
        let mut config = SimConfig::paper_default(Workload::CnnMnist);
        config.params = params;
        config.max_rounds = 300;

        let baseline = Simulation::new(config.clone()).run(&mut RandomSelector::new());
        let base_ppw = baseline.ppw_global();

        // Characterize every fixed Table 4 composition.
        let mut best = ("C0", 1.0);
        for cluster in CharacterizationCluster::fixed() {
            let result = Simulation::new(config.clone()).run(&mut ClusterSelector::new(cluster));
            let gain = result.ppw_global() / base_ppw;
            if gain > best.1 {
                best = (cluster.name(), gain);
            }
        }

        let learned = Simulation::new(config).run(&mut AutoFl::paper_default());
        println!(
            "{:<8} {:>10} {:>11.2}x {:>11.2}x",
            label,
            best.0,
            best.1,
            learned.ppw_global() / base_ppw
        );
    }
    println!(
        "\nThe best fixed composition depends on (B, E, K); AutoFL tracks it without being told."
    );
}

//! Reproduce the runtime-variance study: interference from co-running
//! apps and weak network signals shift the optimal policy (Figures 5 and
//! 10 of the paper).
//!
//! ```sh
//! cargo run --release --example runtime_variance
//! ```

use autofl_core::AutoFl;
use autofl_device::scenario::VarianceScenario;
use autofl_fed::engine::{SimConfig, Simulation};
use autofl_fed::selection::{ClusterSelector, RandomSelector, Selector};
use autofl_nn::zoo::Workload;

fn main() {
    println!("== Runtime variance (CNN-MNIST, S3) ==");
    let regimes = [
        ("calm", VarianceScenario::calm()),
        ("interference", VarianceScenario::with_interference()),
        ("weak network", VarianceScenario::weak_network()),
    ];
    println!(
        "{:<14} {:>16} {:>13} {:>13} {:>10}",
        "regime", "policy", "round time", "PPW vs rand", "drops"
    );
    for (label, scenario) in regimes {
        let mut config = SimConfig::paper_default(Workload::CnnMnist);
        config.scenario = scenario;
        config.max_rounds = 300;
        let baseline = Simulation::new(config.clone()).run(&mut RandomSelector::new());
        let base_ppw = baseline.ppw_global();

        let mut policies: Vec<(&str, Box<dyn Selector>)> = vec![
            ("FedAvg-Random", Box::new(RandomSelector::new())),
            ("Performance", Box::new(ClusterSelector::performance())),
            ("Power", Box::new(ClusterSelector::power())),
            ("AutoFL", Box::new(AutoFl::paper_default())),
        ];
        for (name, selector) in policies.iter_mut() {
            let result = Simulation::new(config.clone()).run(selector.as_mut());
            let drops: usize = result.records.iter().map(|r| r.dropped.len()).sum();
            println!(
                "{:<14} {:>16} {:>10.1} s {:>12.2}x {:>10}",
                label,
                name,
                result.mean_round_time_s(),
                result.ppw_global() / base_ppw,
                drops
            );
        }
    }
    println!("\nUnder interference high-end devices win; under weak signal low-power");
    println!("devices amortise the communication cost. AutoFL adapts per round.");
}

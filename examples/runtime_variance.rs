//! Reproduce the runtime-variance study: interference from co-running
//! apps and weak network signals shift the optimal policy (Figures 5 and
//! 10 of the paper).
//!
//! ```sh
//! cargo run --release --example runtime_variance
//! ```

use autofl::fed::engine::Simulation;
use autofl::{run_policy, standard_registry};
use autofl_device::scenario::VarianceScenario;
use autofl_nn::zoo::Workload;

fn main() {
    println!("== Runtime variance (CNN-MNIST, S3) ==");
    let regimes = [
        ("calm", VarianceScenario::calm()),
        ("interference", VarianceScenario::with_interference()),
        ("weak network", VarianceScenario::weak_network()),
    ];
    println!(
        "{:<14} {:>16} {:>13} {:>13} {:>10}",
        "regime", "policy", "round time", "PPW vs rand", "drops"
    );
    let registry = standard_registry();
    for (label, scenario) in regimes {
        let config = Simulation::builder(Workload::CnnMnist)
            .scenario(scenario)
            .max_rounds(300)
            .build_config()
            .expect("valid study configuration");
        let baseline = run_policy(&config, registry.expect("FedAvg-Random"));
        let base_ppw = baseline.ppw_global();

        for name in ["FedAvg-Random", "Performance", "Power", "AutoFL"] {
            let result = run_policy(&config, registry.expect(name));
            let drops: usize = result.records.iter().map(|r| r.dropped.len()).sum();
            println!(
                "{:<14} {:>16} {:>10.1} s {:>12.2}x {:>10}",
                label,
                name,
                result.mean_round_time_s(),
                result.ppw_global() / base_ppw,
                drops
            );
        }
    }
    println!("\nUnder interference high-end devices win; under weak signal low-power");
    println!("devices amortise the communication cost. AutoFL adapts per round.");
}

//! Real on-device training, no surrogate: run a miniature federated
//! deployment where every round actually trains the scaled-down CNN with
//! the `autofl-nn` substrate and evaluates on a held-out test set.
//!
//! Demonstrates a custom [`RoundObserver`]: the per-round report is a
//! observer hooked into `run_with`, not a hand-rolled loop around
//! `run_round`.
//!
//! ```sh
//! cargo run --release --example train_on_device
//! ```

use autofl::fed::engine::{Fidelity, RoundRecord, SimResult, Simulation};
use autofl::{standard_registry, RoundObserver};
use autofl_data::partition::DataDistribution;
use autofl_fed::GlobalParams;
use autofl_nn::zoo::Workload;

/// Prints each round's accuracy, time, energy and cohort.
struct RoundReport;

impl RoundObserver for RoundReport {
    fn on_round_end(&mut self, record: &RoundRecord) -> std::io::Result<()> {
        println!(
            "round {:>2}: acc {:>5.1}%  round time {:>6.1} s  energy {:>7.1} J  cohort {:?}",
            record.round,
            record.accuracy * 100.0,
            record.round_time_s,
            record.total_energy_j(),
            record
                .participants
                .iter()
                .map(|id| id.0)
                .collect::<Vec<_>>(),
        );
        Ok(())
    }

    fn on_converged(&mut self, _result: &SimResult) -> std::io::Result<()> {
        println!("target reached.");
        Ok(())
    }
}

fn main() {
    // Shrink the deployment so real training stays interactive.
    let mut sim = Simulation::builder(Workload::CnnMnist)
        .devices(20)
        .samples_per_device(60)
        .test_samples(256)
        .params(GlobalParams::new(16, 1, 5))
        .fidelity(Fidelity::RealTraining {
            lr: 0.08,
            eval_samples: 256,
        })
        .distribution(DataDistribution::non_iid_percent(50))
        .max_rounds(25)
        .target_accuracy(0.90)
        .build()
        .expect("valid real-training configuration");

    println!(
        "== Real federated training ({} devices, CNN on synthetic digits) ==",
        sim.config().num_devices
    );
    let registry = standard_registry();
    let mut agent = registry.expect("AutoFL").make_selector();
    let mut report = RoundReport;
    let _ = sim.run_with(agent.as_mut(), &mut [&mut report]);
}

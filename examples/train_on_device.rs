//! Real on-device training, no surrogate: run a miniature federated
//! deployment where every round actually trains the scaled-down CNN with
//! the `autofl-nn` substrate and evaluates on a held-out test set.
//!
//! ```sh
//! cargo run --release --example train_on_device
//! ```

use autofl_core::AutoFl;
use autofl_data::partition::DataDistribution;
use autofl_fed::engine::{Fidelity, SimConfig, Simulation};
use autofl_fed::GlobalParams;
use autofl_nn::zoo::Workload;

fn main() {
    let mut config = SimConfig::paper_default(Workload::CnnMnist);
    // Shrink the deployment so real training stays interactive.
    config.num_devices = 20;
    config.samples_per_device = 60;
    config.test_samples = 256;
    config.params = GlobalParams::new(16, 1, 5);
    config.fidelity = Fidelity::RealTraining {
        lr: 0.08,
        eval_samples: 256,
    };
    config.distribution = DataDistribution::non_iid_percent(50);
    config.max_rounds = 25;
    config.target_accuracy = Some(0.90);

    println!(
        "== Real federated training ({} devices, CNN on synthetic digits) ==",
        config.num_devices
    );
    let mut sim = Simulation::new(config);
    let mut agent = AutoFl::paper_default();
    for round in 0..25 {
        let record = sim.run_round(&mut agent, round);
        println!(
            "round {:>2}: acc {:>5.1}%  round time {:>6.1} s  energy {:>7.1} J  cohort {:?}",
            round,
            record.accuracy * 100.0,
            record.round_time_s,
            record.total_energy_j(),
            record
                .participants
                .iter()
                .map(|id| id.0)
                .collect::<Vec<_>>(),
        );
        if record.accuracy >= 0.90 {
            println!("target reached.");
            break;
        }
    }
}

//! Quickstart: run AutoFL against the FedAvg-Random baseline on a small
//! CNN-MNIST deployment and print the headline numbers — using the
//! experiment API: `Simulation::builder` for the configuration and the
//! policy registry for the contenders.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Pass `--smoke` for the reduced CI profile (40 devices, 250 rounds),
//! which finishes in well under a second.

use autofl::fed::engine::{SimConfig, Simulation};
use autofl::{run_policy, standard_registry};
use autofl_nn::zoo::Workload;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // A paper-shaped deployment: 200 devices (30 high / 70 mid / 100
    // low-end), S3 global parameters (B=16, E=5, K=20), surrogate accuracy.
    let config = if smoke {
        SimConfig::smoke(42)
    } else {
        Simulation::builder(Workload::CnnMnist)
            .max_rounds(400)
            .build_config()
            .expect("paper defaults are valid")
    };

    println!("== AutoFL quickstart: {} ==", config.workload.name());
    println!(
        "fleet: {} devices, target accuracy {:.0}%, {} worker threads (AUTOFL_THREADS)",
        config.num_devices,
        config.target() * 100.0,
        rayon::current_num_threads()
    );

    let registry = standard_registry();
    let learned = run_policy(&config, registry.expect("AutoFL"));
    let baseline = run_policy(&config, registry.expect("FedAvg-Random"));

    for result in [&learned, &baseline] {
        println!(
            "{:<14} converged at round {:>4}  time-to-target {:>7.0} s  energy {:>9.0} J",
            result.policy,
            result
                .converged_round()
                .map(|r| r.to_string())
                .unwrap_or_else(|| "n/a".into()),
            result.time_to_target_s(),
            result.energy_to_target_j(),
        );
    }
    println!(
        "AutoFL energy-efficiency (PPW) gain over FedAvg-Random: {:.2}x global, {:.2}x local",
        learned.ppw_global() / baseline.ppw_global(),
        learned.ppw_local() / baseline.ppw_local(),
    );
    println!("All registered policies: {}", registry.names().join(", "));
}

//! The network fabric: lossy tier-conditioned links, a scripted
//! partition, and communication-efficient update codecs with exact byte
//! accounting.
//!
//! Four runs of the same smoke-scale federation: no fabric (the
//! control), a realistic lossy fabric, the same fabric with top-k
//! sparsification, and a fabric whose partition cuts half the fleet off
//! for ten rounds — showing how losses surface as dropouts, partitions
//! as ineligibility, and compression as uplink savings.
//!
//! ```sh
//! cargo run --release --example network_fabric
//! ```

use autofl::fed::engine::Simulation;
use autofl_device::scenario::VarianceScenario;
use autofl_fed::fabric::{CodecSpec, LinkModel, NetworkFabric, PartitionRule, PartitionSchedule};
use autofl_fed::selection::RandomSelector;
use autofl_nn::zoo::Workload;

fn main() {
    println!("== Network fabric (CNN-MNIST smoke fleet, weak-network scenario) ==");
    let fabrics: Vec<(&str, Option<NetworkFabric>)> =
        vec![
            ("no fabric", None),
            (
                "lossy links",
                Some(NetworkFabric::new(LinkModel::realistic())),
            ),
            (
                "lossy + top-k 10%",
                Some(
                    NetworkFabric::new(LinkModel::realistic())
                        .with_codec(CodecSpec::TopK { k_frac: 0.1 })
                        .with_full_sync(20),
                ),
            ),
            (
                "partition r10..20",
                Some(NetworkFabric::new(LinkModel::calm()).with_partitions(
                    PartitionSchedule::single(PartitionRule {
                        from_round: 10,
                        until_round: 20,
                        device_begin: 0,
                        device_end: 20,
                    }),
                )),
            ),
        ];
    println!(
        "{:<18} {:>9} {:>11} {:>10} {:>10} {:>11}",
        "fabric", "best-acc", "uplink-MB", "net-drops", "avg inelig", "PPW-L/MJ"
    );
    for (label, fabric) in fabrics {
        let mut builder = Simulation::builder(Workload::CnnMnist)
            .devices(40)
            .samples_per_device(120)
            .test_samples(256)
            .scenario(VarianceScenario::weak_network())
            .target_accuracy(1.1)
            .max_rounds(60)
            .seed(42);
        if let Some(fabric) = fabric {
            builder = builder.network(fabric);
        }
        let mut sim = builder.build().expect("valid fabric study");
        let result = sim.run(&mut RandomSelector::new());
        let uplink_mb = result
            .records
            .iter()
            .filter_map(|r| r.net)
            .map(|n| n.bytes_uplinked)
            .sum::<u64>() as f64
            / 1e6;
        let net_drops: usize = result
            .records
            .iter()
            .filter_map(|r| r.net)
            .map(|n| n.net_drops)
            .sum();
        let inelig: f64 = result
            .records
            .iter()
            .map(|r| r.ineligible as f64)
            .sum::<f64>()
            / result.records.len() as f64;
        println!(
            "{:<18} {:>8.1}% {:>11.1} {:>10} {:>10.1} {:>11.4}",
            label,
            result.best_accuracy() * 100.0,
            uplink_mb,
            net_drops,
            inelig,
            result.ppw_local() * 1e6,
        );
    }
    println!(
        "\nLost uploads surface as dropouts (energy burned, update gone), \
         partitions as ineligibility, and codecs as uplink savings that \
         feed the Eq. 3 communication-energy path."
    );
}

//! Reproduce the data-heterogeneity study: convergence and energy
//! efficiency under Ideal IID and Non-IID(50/75/100%) Dirichlet splits
//! (Figures 6 and 11 of the paper).
//!
//! ```sh
//! cargo run --release --example non_iid_study
//! ```

use autofl_core::AutoFl;
use autofl_data::partition::DataDistribution;
use autofl_fed::engine::{SimConfig, Simulation};
use autofl_fed::oracle::OracleSelector;
use autofl_fed::selection::RandomSelector;
use autofl_nn::zoo::Workload;

fn main() {
    println!("== Data heterogeneity (CNN-MNIST, Dirichlet alpha = 0.1) ==");
    let scenarios = [
        DataDistribution::IidIdeal,
        DataDistribution::non_iid_percent(50),
        DataDistribution::non_iid_percent(75),
        DataDistribution::non_iid_percent(100),
    ];
    println!(
        "{:<16} {:<22} {:<22} {:<22}",
        "distribution", "FedAvg-Random", "AutoFL", "O_FL"
    );
    for distribution in scenarios {
        let mut config = SimConfig::paper_default(Workload::CnnMnist);
        config.distribution = distribution;
        config.max_rounds = 700;

        let fmt = |r: &autofl_fed::engine::SimResult| -> String {
            match r.converged_round() {
                Some(round) => format!(
                    "round {:>4}, {:>7.0} J/k",
                    round,
                    r.energy_to_target_j() / 1000.0
                ),
                None => format!("stalled @ {:.1}%", r.final_accuracy() * 100.0),
            }
        };
        let random = Simulation::new(config.clone()).run(&mut RandomSelector::new());
        let autofl = Simulation::new(config.clone()).run(&mut AutoFl::paper_default());
        let oracle = Simulation::new(config).run(&mut OracleSelector::full());
        println!(
            "{:<16} {:<22} {:<22} {:<22}",
            distribution.label(),
            fmt(&random),
            fmt(&autofl),
            fmt(&oracle)
        );
    }
    println!("\nNon-IID participants defer or destroy convergence for data-blind policies;");
    println!("AutoFL learns to compose balanced cohorts from the S_Data state.");
}

//! Reproduce the data-heterogeneity study: convergence and energy
//! efficiency under Ideal IID and Non-IID(50/75/100%) Dirichlet splits
//! (Figures 6 and 11 of the paper).
//!
//! ```sh
//! cargo run --release --example non_iid_study
//! ```

use autofl::fed::engine::Simulation;
use autofl::{run_policy, standard_registry};
use autofl_data::partition::DataDistribution;
use autofl_nn::zoo::Workload;

fn main() {
    println!("== Data heterogeneity (CNN-MNIST, Dirichlet alpha = 0.1) ==");
    let scenarios = [
        DataDistribution::IidIdeal,
        DataDistribution::non_iid_percent(50),
        DataDistribution::non_iid_percent(75),
        DataDistribution::non_iid_percent(100),
    ];
    println!(
        "{:<16} {:<22} {:<22} {:<22}",
        "distribution", "FedAvg-Random", "AutoFL", "O_FL"
    );
    let registry = standard_registry();
    for distribution in scenarios {
        let config = Simulation::builder(Workload::CnnMnist)
            .distribution(distribution)
            .max_rounds(700)
            .build_config()
            .expect("valid study configuration");

        let fmt = |r: &autofl_fed::engine::SimResult| -> String {
            match r.converged_round() {
                Some(round) => format!(
                    "round {:>4}, {:>7.0} J/k",
                    round,
                    r.energy_to_target_j() / 1000.0
                ),
                None => format!("stalled @ {:.1}%", r.final_accuracy() * 100.0),
            }
        };
        let random = run_policy(&config, registry.expect("FedAvg-Random"));
        let autofl = run_policy(&config, registry.expect("AutoFL"));
        let oracle = run_policy(&config, registry.expect("O_FL"));
        println!(
            "{:<16} {:<22} {:<22} {:<22}",
            distribution.label(),
            fmt(&random),
            fmt(&autofl),
            fmt(&oracle)
        );
    }
    println!("\nNon-IID participants defer or destroy convergence for data-blind policies;");
    println!("AutoFL learns to compose balanced cohorts from the S_Data state.");
}

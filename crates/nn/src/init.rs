//! Weight initialisation helpers.

use crate::tensor::Tensor;
use rand::Rng;

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// # Examples
///
/// ```
/// use autofl_nn::init::xavier_uniform;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let w = xavier_uniform(vec![3, 3], 3, 3, &mut rng);
/// assert!(w.data().iter().all(|x| x.abs() <= 1.0));
/// ```
pub fn xavier_uniform(
    shape: Vec<usize>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl Rng,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(-a..a)).collect();
    Tensor::from_vec(shape, data)
}

/// Uniform initialisation in `[-a, a]`.
pub fn uniform(shape: Vec<usize>, a: f32, rng: &mut impl Rng) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(-a..a)).collect();
    Tensor::from_vec(shape, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = SmallRng::seed_from_u64(9);
        let w = xavier_uniform(vec![16, 16], 16, 16, &mut rng);
        let bound = (6.0f32 / 32.0).sqrt();
        assert!(w.data().iter().all(|x| x.abs() <= bound));
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let w1 = xavier_uniform(vec![8], 8, 8, &mut SmallRng::seed_from_u64(42));
        let w2 = xavier_uniform(vec![8], 8, 8, &mut SmallRng::seed_from_u64(42));
        assert_eq!(w1, w2);
    }
}

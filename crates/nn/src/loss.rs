//! Classification loss and metrics.

use crate::tensor::Tensor;

/// Computes mean softmax cross-entropy loss and its gradient w.r.t. the
/// logits.
///
/// `logits` is `[batch, classes]`; `labels[i]` is the class index of sample
/// `i`. The returned gradient already includes the `1/batch` factor, so it
/// can be fed straight into [`crate::model::Sequential::backward`].
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size or any label is out
/// of range.
///
/// # Examples
///
/// ```
/// use autofl_nn::loss::softmax_cross_entropy;
/// use autofl_nn::tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![1, 2], vec![2.0, 0.0]);
/// let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
/// assert!(loss < 0.2);
/// assert_eq!(grad.shape(), &[1, 2]);
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (batch, classes) = (logits.rows(), logits.cols());
    assert_eq!(batch, labels.len(), "label count must match batch size");
    let mut grad = Tensor::zeros(vec![batch, classes]);
    let mut loss = 0.0f64;
    for (bi, &label) in labels.iter().enumerate() {
        assert!(
            label < classes,
            "label {} out of {} classes",
            label,
            classes
        );
        let row: Vec<f32> = (0..classes).map(|c| logits.at2(bi, c)).collect();
        let maxv = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let exps: Vec<f32> = row.iter().map(|&x| (x - maxv).exp()).collect();
        let z: f32 = exps.iter().sum();
        for (c, &e) in exps.iter().enumerate() {
            let p = e / z;
            let target = if c == label { 1.0 } else { 0.0 };
            *grad.at2_mut(bi, c) = (p - target) / batch as f32;
            if c == label {
                loss -= (p.max(1e-12)).ln() as f64;
            }
        }
    }
    ((loss / batch as f64) as f32, grad)
}

/// Fraction of samples whose arg-max logit equals the label.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let (batch, classes) = (logits.rows(), logits.cols());
    assert_eq!(batch, labels.len(), "label count must match batch size");
    let mut correct = 0usize;
    for (bi, &label) in labels.iter().enumerate() {
        let mut best = 0usize;
        for c in 1..classes {
            if logits.at2(bi, c) > logits.at2(bi, best) {
                best = c;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    correct as f32 / batch as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes_loss() {
        let logits = Tensor::zeros(vec![2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., -1., 0., 1.]);
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]);
        for bi in 0..2 {
            let s: f32 = (0..3).map(|c| grad.at2(bi, c)).sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(vec![1, 3], vec![0.5, -0.2, 0.1]);
        let labels = [1usize];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for c in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[c] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[c] -= eps;
            let (l1, _) = softmax_cross_entropy(&lp, &labels);
            let (l2, _) = softmax_cross_entropy(&lm, &labels);
            let fd = (l1 - l2) / (2.0 * eps);
            assert!(
                (grad.data()[c] - fd).abs() < 1e-3,
                "class {}: {} vs {}",
                c,
                grad.data()[c],
                fd
            );
        }
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_vec(vec![2, 2], vec![0.9, 0.1, 0.2, 0.8]);
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 0]), 0.0);
        assert_eq!(accuracy(&logits, &[0, 0]), 0.5);
    }
}

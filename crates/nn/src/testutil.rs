//! Numerical gradient checking used by the layer unit tests.
//!
//! Hidden from the public docs; exposed so downstream crates' tests can
//! gradient-check composite models too.

use crate::layers::Layer;
use crate::tensor::Tensor;
use rand::Rng;

/// Scalar loss used for gradient checks: a fixed random projection of the
/// layer output, `L = Σ r_i · y_i`.
fn projected_loss(y: &Tensor, r: &Tensor) -> f64 {
    y.data()
        .iter()
        .zip(r.data().iter())
        .map(|(&a, &b)| a as f64 * b as f64)
        .sum()
}

/// Checks a layer's analytic gradients (input and parameters) against
/// central finite differences.
///
/// # Panics
///
/// Panics (test failure) if any gradient deviates by more than `tol`
/// relative error (with an absolute floor of `tol` for tiny gradients).
pub fn check_layer_gradients<L: Layer>(
    mut layer: L,
    input_shape: &[usize],
    tol: f32,
    rng: &mut impl Rng,
) {
    let n: usize = input_shape.iter().product();
    let x = Tensor::from_vec(
        input_shape.to_vec(),
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    );

    // Analytic pass.
    let y = layer.forward(&x, true);
    let r = Tensor::from_vec(
        y.shape().to_vec(),
        (0..y.len()).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    );
    layer.zero_grad();
    let gx = layer.backward(&r);

    let eps = 1e-2f32;
    let agree = |analytic: f32, numeric: f32| -> bool {
        let denom = analytic.abs().max(numeric.abs()).max(1.0);
        (analytic - numeric).abs() / denom <= tol
    };

    // Input gradient.
    let mut xp = x.clone();
    for i in 0..n {
        let orig = xp.data()[i];
        xp.data_mut()[i] = orig + eps;
        let lp = projected_loss(&layer.forward(&xp, false), &r);
        xp.data_mut()[i] = orig - eps;
        let lm = projected_loss(&layer.forward(&xp, false), &r);
        xp.data_mut()[i] = orig;
        let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
        assert!(
            agree(gx.data()[i], fd),
            "input grad [{}]: analytic {} vs numeric {}",
            i,
            gx.data()[i],
            fd
        );
    }

    // Parameter gradients. Collect analytic copies first, then perturb.
    let mut analytic_grads: Vec<Vec<f32>> = Vec::new();
    layer.visit_params(&mut |_, g| analytic_grads.push(g.data().to_vec()));
    for (pi, agrad) in analytic_grads.iter().enumerate() {
        for (i, &analytic) in agrad.iter().enumerate() {
            // Perturb parameter (pi, i) in both directions.
            let mut lp = 0.0f64;
            let mut lm = 0.0f64;
            for (dir, out) in [(eps, &mut lp), (-eps, &mut lm)] {
                let mut k = 0;
                layer.visit_params(&mut |p, _| {
                    if k == pi {
                        p.data_mut()[i] += dir;
                    }
                    k += 1;
                });
                *out = projected_loss(&layer.forward(&x, false), &r);
                let mut k = 0;
                layer.visit_params(&mut |p, _| {
                    if k == pi {
                        p.data_mut()[i] -= dir;
                    }
                    k += 1;
                });
            }
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                agree(analytic, fd),
                "param {} grad [{}]: analytic {} vs numeric {}",
                pi,
                i,
                analytic,
                fd
            );
        }
    }
}

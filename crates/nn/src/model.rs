//! The [`Sequential`] model container.

use crate::layers::{Layer, LayerKind};
use crate::loss::{accuracy, softmax_cross_entropy};
use crate::optim::Sgd;
use crate::tensor::Tensor;

/// Number of layers of each coarse kind in a model.
///
/// These counts feed the `S_CONV` / `S_FC` / `S_RC` features of the AutoFL
/// reinforcement-learning state (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerCounts {
    /// Convolutional layers (regular + depthwise).
    pub conv: usize,
    /// Fully-connected layers.
    pub fc: usize,
    /// Recurrent layers.
    pub rc: usize,
}

/// A feed-forward stack of [`Layer`]s trained with softmax cross-entropy.
///
/// `Sequential` owns the layers, chains forward/backward passes through
/// them, and exposes the flat parameter vector used by federated
/// aggregation (`param_vector` / `set_param_vector`).
///
/// # Examples
///
/// ```
/// use autofl_nn::layers::{Dense, Relu};
/// use autofl_nn::model::Sequential;
/// use autofl_nn::tensor::Tensor;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let mut model = Sequential::new(vec![4]);
/// model.push(Dense::new(4, 8, &mut rng));
/// model.push(Relu::new());
/// model.push(Dense::new(8, 2, &mut rng));
/// let logits = model.forward(&Tensor::zeros(vec![3, 4]), false);
/// assert_eq!(logits.shape(), &[3, 2]);
/// ```
pub struct Sequential {
    layers: Vec<Box<dyn Layer + Send>>,
    input_shape: Vec<usize>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("input_shape", &self.input_shape)
            .field(
                "layers",
                &self.layers.iter().map(|l| l.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Sequential {
    /// Creates an empty model expecting per-sample inputs of `input_shape`
    /// (the batch dimension is added at call time).
    pub fn new(input_shape: Vec<usize>) -> Self {
        Sequential {
            layers: Vec::new(),
            input_shape,
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + Send + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Per-sample input shape.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Runs all layers forward.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Runs all layers backward, accumulating parameter gradients.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Visits every `(parameter, gradient)` pair across all layers.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Total number of trainable scalars.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }

    /// Copies all parameters into one flat vector (layer order).
    pub fn param_vector(&mut self) -> Vec<f32> {
        let mut v = Vec::new();
        self.visit_params(&mut |p, _| v.extend_from_slice(p.data()));
        v
    }

    /// Copies all gradients into one flat vector (layer order).
    pub fn grad_vector(&mut self) -> Vec<f32> {
        let mut v = Vec::new();
        self.visit_params(&mut |_, g| v.extend_from_slice(g.data()));
        v
    }

    /// Overwrites all parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len()` differs from [`Sequential::param_count`].
    pub fn set_param_vector(&mut self, flat: &[f32]) {
        let mut off = 0;
        self.visit_params(&mut |p, _| {
            let n = p.len();
            p.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        });
        assert_eq!(off, flat.len(), "parameter vector length mismatch");
    }

    /// Trains on one `(inputs, labels)` mini-batch; returns `(loss, accuracy)`.
    pub fn train_batch(&mut self, x: &Tensor, labels: &[usize], sgd: &mut Sgd) -> (f32, f32) {
        let logits = self.forward(x, true);
        let acc = accuracy(&logits, labels);
        let (loss, grad) = softmax_cross_entropy(&logits, labels);
        self.zero_grad();
        let _ = self.backward(&grad);
        sgd.step(self);
        (loss, acc)
    }

    /// Evaluates `(loss, accuracy)` without touching parameters.
    pub fn evaluate(&mut self, x: &Tensor, labels: &[usize]) -> (f32, f32) {
        let logits = self.forward(x, false);
        let (loss, _) = softmax_cross_entropy(&logits, labels);
        (loss, accuracy(&logits, labels))
    }

    /// Forward FLOPs for one sample, chaining actual activation shapes.
    pub fn flops_per_sample(&self) -> u64 {
        let mut shape = self.input_shape.clone();
        let mut total = 0u64;
        for layer in &self.layers {
            total += layer.flops_per_sample(&shape);
            shape = layer.output_shape(&shape);
        }
        total
    }

    /// Training FLOPs for one sample; the backward pass costs roughly twice
    /// the forward pass, the standard 3x-forward estimate.
    pub fn training_flops_per_sample(&self) -> u64 {
        3 * self.flops_per_sample()
    }

    /// Layer counts per coarse kind (CONV / FC / RC).
    pub fn layer_counts(&self) -> LayerCounts {
        let mut counts = LayerCounts::default();
        for layer in &self.layers {
            match layer.kind() {
                LayerKind::Conv => counts.conv += 1,
                LayerKind::FullyConnected => counts.fc += 1,
                LayerKind::Recurrent => counts.rc += 1,
                LayerKind::Other => {}
            }
        }
        counts
    }

    /// Per-sample output shape.
    pub fn output_shape(&self) -> Vec<usize> {
        let mut shape = self.input_shape.clone();
        for layer in &self.layers {
            shape = layer.output_shape(&shape);
        }
        shape
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn tiny_cnn(rng: &mut SmallRng) -> Sequential {
        let mut m = Sequential::new(vec![1, 8, 8]);
        m.push(Conv2d::new(1, 4, 3, 1, 1, rng));
        m.push(Relu::new());
        m.push(MaxPool2d::new(2));
        m.push(Flatten::new());
        m.push(Dense::new(4 * 4 * 4, 3, rng));
        m
    }

    #[test]
    fn param_vector_round_trip() {
        let mut rng = SmallRng::seed_from_u64(51);
        let mut m = tiny_cnn(&mut rng);
        let v = m.param_vector();
        assert_eq!(v.len(), m.param_count());
        let doubled: Vec<f32> = v.iter().map(|x| x * 2.0).collect();
        m.set_param_vector(&doubled);
        assert_eq!(m.param_vector(), doubled);
    }

    #[test]
    fn flops_chain_through_shapes() {
        let mut rng = SmallRng::seed_from_u64(52);
        let m = tiny_cnn(&mut rng);
        // conv: (2*9+1)*4*64 = 4864; relu: 256; pool: 256; fc: 2*64*3+3 = 387.
        assert_eq!(m.flops_per_sample(), 4864 + 256 + 256 + 387);
        assert_eq!(m.training_flops_per_sample(), 3 * m.flops_per_sample());
    }

    #[test]
    fn layer_counts_by_kind() {
        let mut rng = SmallRng::seed_from_u64(53);
        let m = tiny_cnn(&mut rng);
        let c = m.layer_counts();
        assert_eq!((c.conv, c.fc, c.rc), (1, 1, 0));
    }

    #[test]
    fn output_shape_matches_forward() {
        let mut rng = SmallRng::seed_from_u64(54);
        let mut m = tiny_cnn(&mut rng);
        let y = m.forward(&Tensor::zeros(vec![2, 1, 8, 8]), false);
        assert_eq!(y.shape()[1..], m.output_shape()[..]);
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        let mut rng = SmallRng::seed_from_u64(55);
        let mut m = Sequential::new(vec![2]);
        m.push(Dense::new(2, 16, &mut rng));
        m.push(Relu::new());
        m.push(Dense::new(16, 2, &mut rng));
        // Two Gaussian blobs.
        let n = 64;
        let mut xs = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            let cx = if label == 0 { -1.0 } else { 1.0 };
            xs.push(cx + rng.gen_range(-0.3..0.3));
            xs.push(cx + rng.gen_range(-0.3..0.3));
            labels.push(label);
        }
        let x = Tensor::from_vec(vec![n, 2], xs);
        let (loss0, _) = m.evaluate(&x, &labels);
        let mut sgd = Sgd::new(0.1);
        for _ in 0..30 {
            let _ = m.train_batch(&x, &labels, &mut sgd);
        }
        let (loss1, acc1) = m.evaluate(&x, &labels);
        assert!(
            loss1 < loss0,
            "loss did not improve: {} -> {}",
            loss0,
            loss1
        );
        assert!(acc1 > 0.9, "accuracy too low: {}", acc1);
    }
}

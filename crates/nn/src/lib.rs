//! # autofl-nn
//!
//! A from-scratch neural-network training substrate for the AutoFL
//! reproduction. It provides:
//!
//! * a minimal dense [`tensor::Tensor`],
//! * [`layers`] with hand-written backprop (dense, conv, depthwise conv,
//!   pooling, activations, embedding, LSTM),
//! * softmax cross-entropy [`loss`] and an SGD [`optim`]izer,
//! * the [`model::Sequential`] container with flat parameter vectors for
//!   federated aggregation and exact FLOP accounting, and
//! * the paper's three workloads in [`zoo`] (CNN-MNIST, LSTM-Shakespeare,
//!   MobileNet-ImageNet).
//!
//! FLOP accounting is load-bearing: the `autofl-device` energy model maps
//! `FLOPs → seconds → joules`, so every layer reports its exact forward
//! cost for a given input shape.
//!
//! # Examples
//!
//! Train a tiny model on random data:
//!
//! ```
//! use autofl_nn::optim::Sgd;
//! use autofl_nn::tensor::Tensor;
//! use autofl_nn::zoo::Workload;
//!
//! let mut model = Workload::TinyTest.build_trainable(7);
//! let x = Tensor::zeros(vec![4, 1, 8, 8]);
//! let labels = [0usize, 1, 2, 3];
//! let mut sgd = Sgd::new(0.05);
//! let (loss, _acc) = model.train_batch(&x, &labels, &mut sgd);
//! assert!(loss.is_finite());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod init;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optim;
pub mod tensor;
#[doc(hidden)]
pub mod testutil;
pub mod zoo;

pub use model::{LayerCounts, Sequential};
pub use tensor::Tensor;
pub use zoo::Workload;

//! A minimal dense tensor of `f32` values.
//!
//! [`Tensor`] is the single data container used throughout the training
//! substrate. It stores a row-major buffer plus a shape and provides exactly
//! the operations the layers in [`crate::layers`] need: element access,
//! element-wise arithmetic and matrix multiplication.
//!
//! # Examples
//!
//! ```
//! use autofl_nn::tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// The shape is dynamic (a `Vec<usize>`), which keeps the substrate simple;
/// all shape errors are programming errors and therefore panic rather than
/// returning `Result`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tensor")
            .field("shape", &self.shape)
            .field("len", &self.data.len())
            .finish()
    }
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    ///
    /// # Examples
    ///
    /// ```
    /// # use autofl_nn::tensor::Tensor;
    /// let t = Tensor::zeros(vec![2, 3]);
    /// assert_eq!(t.len(), 6);
    /// ```
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            data.len(),
            "shape {:?} implies {} elements, got {}",
            shape,
            n,
            data.len()
        );
        Tensor { shape, data }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(vec![n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: Vec<usize>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape to {:?} changes length", shape);
        self.shape = shape;
        self
    }

    /// Number of rows when viewed as a 2-D matrix (first dimension).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "rows() requires a 2-D tensor");
        self.shape[0]
    }

    /// Number of columns when viewed as a 2-D matrix (second dimension).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols() requires a 2-D tensor");
        self.shape[1]
    }

    /// Element access for a 2-D tensor.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable element access for a 2-D tensor.
    #[inline]
    pub fn at2_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        let cols = self.shape[1];
        &mut self.data[r * cols + c]
    }

    /// Matrix multiplication `self · rhs` for 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree or either tensor is not 2-D.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul inner dims: {} vs {}", k, k2);
        let mut out = vec![0.0f32; m * n];
        // ikj loop order keeps the inner loop contiguous in both `rhs` and
        // `out`, which matters for the naive kernel's throughput.
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (kk, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &rhs.data[kk * n..(kk + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(vec![m, n], out)
    }

    /// Matrix multiplication `selfᵀ · rhs` without materialising the transpose.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(rhs.shape.len(), 2);
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul_tn inner dims: {} vs {}", k, k2);
        let mut out = vec![0.0f32; m * n];
        for kk in 0..k {
            let arow = &self.data[kk * m..(kk + 1) * m];
            let brow = &rhs.data[kk * n..(kk + 1) * n];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(vec![m, n], out)
    }

    /// Matrix multiplication `self · rhsᵀ` without materialising the transpose.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(rhs.shape.len(), 2);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul_nt inner dims: {} vs {}", k, k2);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &rhs.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in arow.iter().zip(brow.iter()) {
                    acc += a * b;
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(vec![m, n], out)
    }

    /// Returns the transpose of a 2-D tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(vec![n, m], out)
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// In-place multiplication by a scalar.
    pub fn scale(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute element, or 0.0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_len_and_shape() {
        let t = Tensor::zeros(vec![3, 4, 5]);
        assert_eq!(t.len(), 60);
        assert_eq!(t.shape(), &[3, 4, 5]);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_rejects_wrong_len() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0; 5]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Tensor::from_vec(vec![3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 4], (0..12).map(|x| x as f32).collect());
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![4, 3], (0..12).map(|x| x as f32).collect());
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast, slow);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.clone().reshape(vec![3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), &[3, 2]);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]);
        assert_eq!(a.matmul(&Tensor::eye(2)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn scale_and_add_assign() {
        let mut a = Tensor::full(vec![2], 2.0);
        let b = Tensor::full(vec![2], 3.0);
        a.add_assign(&b);
        a.scale(2.0);
        assert_eq!(a.data(), &[10.0, 10.0]);
    }

    #[test]
    fn max_abs_finds_largest_magnitude() {
        let a = Tensor::from_vec(vec![3], vec![-5.0, 2.0, 4.0]);
        assert_eq!(a.max_abs(), 5.0);
    }
}

//! A minimal dense tensor of `f32` values.
//!
//! [`Tensor`] is the single data container used throughout the training
//! substrate. It stores a row-major buffer plus a shape and provides exactly
//! the operations the layers in [`crate::layers`] need: element access,
//! element-wise arithmetic and matrix multiplication.
//!
//! # Examples
//!
//! ```
//! use autofl_nn::tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

use rayon::prelude::*;
use std::fmt;

/// Column-panel width of the cache-blocked kernels: a `k × NC` panel of
/// the right-hand operand stays resident in L1/L2 while a row sweeps it.
const NC: usize = 256;
/// Rows per parallel band. Bands are fixed-size and each output element is
/// produced entirely inside one band, so banding never changes results.
const MC: usize = 64;
/// Below this many FLOPs a matmul runs single-threaded: the fan-out
/// bookkeeping would cost more than the arithmetic.
const PAR_FLOPS: usize = 1 << 21;

/// Runs `kernel(first_row, band)` over fixed-size row bands of `out`
/// (`m` rows of `n` columns), in parallel when the problem is large
/// enough. Each band is written by exactly one thread and the band
/// boundaries depend only on `MC`, so the output is bit-identical to the
/// single-band sequential sweep at any thread count.
fn run_banded(
    m: usize,
    n: usize,
    flops: usize,
    out: &mut [f32],
    kernel: impl Fn(usize, &mut [f32]) + Sync,
) {
    if m == 0 || n == 0 {
        return;
    }
    if flops < PAR_FLOPS || m <= MC || rayon::current_num_threads() <= 1 {
        kernel(0, out);
        return;
    }
    out.par_chunks_mut(MC * n)
        .enumerate()
        .for_each(|(band, chunk)| kernel(band * MC, chunk));
}

/// `out_band[r][jb..] += Σ_k a[row0+r][k] · b[k][jb..]` — the `self · rhs`
/// kernel, j-panelled for cache reuse, accumulating in ascending-`k` order
/// per output element (the bit-determinism contract).
fn mm_nn(a: &[f32], b: &[f32], out_band: &mut [f32], row0: usize, k: usize, n: usize) {
    let rows = out_band.len() / n;
    let mut jb = 0;
    while jb < n {
        let je = (jb + NC).min(n);
        for r in 0..rows {
            let arow = &a[(row0 + r) * k..(row0 + r + 1) * k];
            let orow = &mut out_band[r * n + jb..r * n + je];
            for (kk, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[kk * n + jb..kk * n + je];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        jb = je;
    }
}

/// The `self · rhsᵀ` kernel: row-by-row dot products, j-panelled so a
/// panel of `rhs` rows stays cached across the band.
fn mm_nt(a: &[f32], b: &[f32], out_band: &mut [f32], row0: usize, k: usize, n: usize) {
    let rows = out_band.len() / n;
    let mut jb = 0;
    while jb < n {
        let je = (jb + NC).min(n);
        for r in 0..rows {
            let arow = &a[(row0 + r) * k..(row0 + r + 1) * k];
            for j in jb..je {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&x, &y) in arow.iter().zip(brow) {
                    acc += x * y;
                }
                out_band[r * n + j] = acc;
            }
        }
        jb = je;
    }
}

/// The `selfᵀ · rhs` kernel (`a` is `[k, m]`): ascending-`k` rank-1
/// updates into the band, j-panelled.
fn mm_tn(a: &[f32], b: &[f32], out_band: &mut [f32], row0: usize, k: usize, m: usize, n: usize) {
    let rows = out_band.len() / n;
    let mut jb = 0;
    while jb < n {
        let je = (jb + NC).min(n);
        for kk in 0..k {
            let arow = &a[kk * m..(kk + 1) * m];
            let brow = &b[kk * n + jb..kk * n + je];
            for r in 0..rows {
                let av = arow[row0 + r];
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out_band[r * n + jb..r * n + je];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        jb = je;
    }
}

/// A dense, row-major tensor of `f32` values.
///
/// The shape is dynamic (a `Vec<usize>`), which keeps the substrate simple;
/// all shape errors are programming errors and therefore panic rather than
/// returning `Result`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tensor")
            .field("shape", &self.shape)
            .field("len", &self.data.len())
            .finish()
    }
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    ///
    /// # Examples
    ///
    /// ```
    /// # use autofl_nn::tensor::Tensor;
    /// let t = Tensor::zeros(vec![2, 3]);
    /// assert_eq!(t.len(), 6);
    /// ```
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            data.len(),
            "shape {:?} implies {} elements, got {}",
            shape,
            n,
            data.len()
        );
        Tensor { shape, data }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(vec![n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: Vec<usize>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape to {:?} changes length", shape);
        self.shape = shape;
        self
    }

    /// Number of rows when viewed as a 2-D matrix (first dimension).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "rows() requires a 2-D tensor");
        self.shape[0]
    }

    /// Number of columns when viewed as a 2-D matrix (second dimension).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols() requires a 2-D tensor");
        self.shape[1]
    }

    /// Element access for a 2-D tensor.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable element access for a 2-D tensor.
    #[inline]
    pub fn at2_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        let cols = self.shape[1];
        &mut self.data[r * cols + c]
    }

    /// Re-shapes this tensor into a zeroed buffer of the given shape,
    /// reusing the existing allocation when its capacity suffices. The
    /// scratch-buffer primitive behind the `*_into` kernels.
    pub(crate) fn reset(&mut self, shape: Vec<usize>) {
        let n: usize = shape.iter().product();
        self.data.clear();
        self.data.resize(n, 0.0);
        self.shape = shape;
    }

    /// Matrix multiplication `self · rhs` for 2-D tensors.
    ///
    /// Cache-blocked and (for large products) parallel across fixed row
    /// bands; bit-identical to the naive ikj loop at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree or either tensor is not 2-D.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(vec![0]);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`Tensor::matmul`] into a caller-held output tensor, reusing its
    /// allocation (the hot-loop variant: no allocation once warm).
    pub fn matmul_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul inner dims: {} vs {}", k, k2);
        out.reset(vec![m, n]);
        let (a, b) = (self.data.as_slice(), rhs.data.as_slice());
        run_banded(m, n, 2 * m * n * k, &mut out.data, |row0, band| {
            mm_nn(a, b, band, row0, k, n)
        });
    }

    /// Matrix multiplication `selfᵀ · rhs` without materialising the transpose.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(vec![0]);
        self.matmul_tn_into(rhs, &mut out);
        out
    }

    /// [`Tensor::matmul_tn`] into a caller-held output tensor.
    pub fn matmul_tn_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(rhs.shape.len(), 2);
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul_tn inner dims: {} vs {}", k, k2);
        out.reset(vec![m, n]);
        let (a, b) = (self.data.as_slice(), rhs.data.as_slice());
        run_banded(m, n, 2 * m * n * k, &mut out.data, |row0, band| {
            mm_tn(a, b, band, row0, k, m, n)
        });
    }

    /// Matrix multiplication `self · rhsᵀ` without materialising the transpose.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(vec![0]);
        self.matmul_nt_into(rhs, &mut out);
        out
    }

    /// [`Tensor::matmul_nt`] into a caller-held output tensor.
    pub fn matmul_nt_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(rhs.shape.len(), 2);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul_nt inner dims: {} vs {}", k, k2);
        out.reset(vec![m, n]);
        let (a, b) = (self.data.as_slice(), rhs.data.as_slice());
        run_banded(m, n, 2 * m * n * k, &mut out.data, |row0, band| {
            mm_nt(a, b, band, row0, k, n)
        });
    }

    /// Returns the transpose of a 2-D tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(vec![n, m], out)
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// In-place multiplication by a scalar.
    pub fn scale(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute element, or 0.0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_len_and_shape() {
        let t = Tensor::zeros(vec![3, 4, 5]);
        assert_eq!(t.len(), 60);
        assert_eq!(t.shape(), &[3, 4, 5]);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_rejects_wrong_len() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0; 5]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Tensor::from_vec(vec![3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 4], (0..12).map(|x| x as f32).collect());
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![4, 3], (0..12).map(|x| x as f32).collect());
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast, slow);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.clone().reshape(vec![3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), &[3, 2]);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]);
        assert_eq!(a.matmul(&Tensor::eye(2)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn scale_and_add_assign() {
        let mut a = Tensor::full(vec![2], 2.0);
        let b = Tensor::full(vec![2], 3.0);
        a.add_assign(&b);
        a.scale(2.0);
        assert_eq!(a.data(), &[10.0, 10.0]);
    }

    #[test]
    fn max_abs_finds_largest_magnitude() {
        let a = Tensor::from_vec(vec![3], vec![-5.0, 2.0, 4.0]);
        assert_eq!(a.max_abs(), 5.0);
    }

    /// Deterministic pseudo-random matrix (xorshift-free, no rand dep in
    /// unit scope) whose sizes force multiple `MC` bands and `NC` panels.
    fn pseudo(shape: Vec<usize>, seed: u64) -> Tensor {
        let n: usize = shape.iter().product();
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let data: Vec<f32> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // Include exact zeros so the sparse-skip path is exercised.
                if state % 17 == 0 {
                    0.0
                } else {
                    ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
                }
            })
            .collect();
        Tensor::from_vec(shape, data)
    }

    /// Reference ikj product with ascending-k accumulation and the same
    /// sparse-skip rule — the exact FP addition order the blocked kernels
    /// must reproduce bit for bit.
    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a.data()[i * k + kk];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[i * n + j] += av * b.data()[kk * n + j];
                }
            }
        }
        Tensor::from_vec(vec![m, n], out)
    }

    fn assert_bits_equal(a: &Tensor, b: &Tensor) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_naive() {
        // 130 rows > 2 bands of MC=64; 300 cols > 1 panel of NC=256.
        let a = pseudo(vec![130, 70], 1);
        let b = pseudo(vec![70, 300], 2);
        assert_bits_equal(&a.matmul(&b), &naive_matmul(&a, &b));
    }

    #[test]
    fn blocked_matmul_tn_is_bit_identical_to_naive() {
        let a = pseudo(vec![70, 130], 3);
        let b = pseudo(vec![70, 300], 4);
        let t = a.transpose();
        assert_bits_equal(&a.matmul_tn(&b), &naive_matmul(&t, &b));
    }

    #[test]
    fn blocked_matmul_nt_is_bit_identical_to_naive() {
        let a = pseudo(vec![130, 70], 5);
        let b = pseudo(vec![300, 70], 6);
        let t = b.transpose();
        assert_bits_equal(&a.matmul_nt(&b), &naive_matmul(&a, &t));
    }

    #[test]
    fn matmul_bits_are_thread_count_invariant() {
        // Big enough to clear PAR_FLOPS so the banded parallel path runs.
        let a = pseudo(vec![256, 96], 7);
        let b = pseudo(vec![96, 128], 8);
        let prev = std::env::var("AUTOFL_THREADS").ok();
        std::env::set_var("AUTOFL_THREADS", "1");
        let seq = a.matmul(&b);
        std::env::set_var("AUTOFL_THREADS", "8");
        let par = a.matmul(&b);
        match prev {
            Some(v) => std::env::set_var("AUTOFL_THREADS", v),
            None => std::env::remove_var("AUTOFL_THREADS"),
        }
        assert_bits_equal(&seq, &par);
    }

    #[test]
    fn matmul_into_reuses_the_output_allocation() {
        let a = pseudo(vec![8, 8], 9);
        let b = pseudo(vec![8, 8], 10);
        let mut out = Tensor::zeros(vec![8, 8]);
        let cap_ptr = out.data().as_ptr();
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data().as_ptr(), cap_ptr, "no realloc for same size");
        assert_bits_equal(&out, &naive_matmul(&a, &b));
    }
}

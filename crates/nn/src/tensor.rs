//! A minimal dense tensor of `f32` values.
//!
//! [`Tensor`] is the single data container used throughout the training
//! substrate. It stores a row-major buffer plus a shape and provides exactly
//! the operations the layers in [`crate::layers`] need: element access,
//! element-wise arithmetic and matrix multiplication.
//!
//! # Examples
//!
//! ```
//! use autofl_nn::tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

use rayon::prelude::*;
use std::fmt;
use wide::f32x8;

/// SIMD lane width of the register-blocked kernels. Every vectorised loop
/// below is a map over *independent output elements* — lanes never share
/// an accumulation — so lane width is a pure speed knob: results are
/// bit-identical to the scalar reference at any width.
const L: usize = f32x8::LANES;
/// Columns per register strip: four `f32x8` accumulators stay in
/// registers while a full `k` sweep runs over them.
const JR: usize = 4 * L;
/// `k`-block length of the packed `rhsᵀ` panel in [`mm_nt`]: the panel
/// (`KB × L` floats, 8 KiB) lives on the stack and is reused across every
/// row of the band.
const KB: usize = 256;
/// Rows per parallel band. Bands are fixed-size and each output element is
/// produced entirely inside one band, so banding never changes results.
const MC: usize = 64;

std::thread_local! {
    /// Per-thread packing scratch for [`mm_tn`]'s transposed `a` block
    /// (at most `MC × KB` floats). Reused across calls, so steady-state
    /// matmuls allocate nothing; each worker thread of the parallel
    /// banded sweep owns its own buffer.
    static TN_PACK: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
}
/// Below this many FLOPs a matmul runs single-threaded: the fan-out
/// bookkeeping would cost more than the arithmetic.
const PAR_FLOPS: usize = 1 << 21;

/// Runs `kernel(first_row, band)` over fixed-size row bands of `out`
/// (`m` rows of `n` columns), in parallel when the problem is large
/// enough. Each band is written by exactly one thread and the band
/// boundaries depend only on `MC`, so the output is bit-identical to the
/// single-band sequential sweep at any thread count.
fn run_banded(
    m: usize,
    n: usize,
    flops: usize,
    out: &mut [f32],
    kernel: impl Fn(usize, &mut [f32]) + Sync,
) {
    if m == 0 || n == 0 {
        return;
    }
    if flops < PAR_FLOPS || m <= MC || rayon::current_num_threads() <= 1 {
        kernel(0, out);
        return;
    }
    out.par_chunks_mut(MC * n)
        .enumerate()
        .for_each(|(band, chunk)| kernel(band * MC, chunk));
}

/// One register-strip pass for the `nn`/`tn` kernels: accumulates
/// `out[j] += av · b[kbase + j]` over ascending `kk` for a strip of `W`
/// columns held in `W / L` vector registers, with the sparse-skip rule
/// (`av == 0.0` contributes nothing, exactly like the scalar reference).
///
/// Each lane is one output element whose additions happen in the same
/// ascending-`k` order as the scalar loop, so the strip is bit-identical
/// to it; keeping the accumulators in registers merely removes the per-`k`
/// load/store of the output row.
#[inline(always)]
fn strip_axpy<const W: usize>(
    out: &mut [f32],
    b: &[f32],
    col: usize,
    n: usize,
    av_of: impl Fn(usize) -> f32,
    k: usize,
) {
    let blocks = W / L;
    let mut acc = [f32x8::ZERO; 8];
    for (i, slot) in acc.iter_mut().take(blocks).enumerate() {
        *slot = f32x8::from_slice(&out[i * L..]);
    }
    for kk in 0..k {
        let av = av_of(kk);
        if av == 0.0 {
            continue;
        }
        let avv = f32x8::splat(av);
        let brow = &b[kk * n + col..kk * n + col + W];
        for (i, slot) in acc.iter_mut().take(blocks).enumerate() {
            *slot += avv * f32x8::from_slice(&brow[i * L..]);
        }
    }
    for (i, slot) in acc.iter().take(blocks).enumerate() {
        slot.write_to_slice(&mut out[i * L..]);
    }
}

/// Scalar column tail shared by [`mm_nn`] and [`mm_tn`].
#[inline(always)]
fn tail_axpy(
    out: &mut [f32],
    b: &[f32],
    col: usize,
    n: usize,
    av_of: impl Fn(usize) -> f32,
    k: usize,
) {
    for (j, o) in out.iter_mut().enumerate() {
        let mut acc = *o;
        for kk in 0..k {
            let av = av_of(kk);
            if av == 0.0 {
                continue;
            }
            acc += av * b[kk * n + col + j];
        }
        *o = acc;
    }
}

/// `out_band[r][j] += Σ_k a[row0+r][k] · b[k][j]` — the `self · rhs`
/// kernel. `k` is processed in `KB` blocks whose `KB × strip` window of
/// `b` stays cache-resident across every row of the band; within a block,
/// column strips of `JR` (then `L`, then scalar) run a full ascending-`k`
/// register sweep. Partial sums round-trip through the output bit-exactly
/// between blocks, so per output element the addition order is exactly
/// the scalar reference's.
fn mm_nn(a: &[f32], b: &[f32], out_band: &mut [f32], row0: usize, k: usize, n: usize) {
    let rows = out_band.len() / n;
    let mut kb = 0;
    while kb < k {
        let ke = (kb + KB).min(k);
        let kl = ke - kb;
        let bblk = &b[kb * n..ke * n];
        let mut j = 0;
        while j + JR <= n {
            for r in 0..rows {
                let arow = &a[(row0 + r) * k + kb..(row0 + r) * k + ke];
                let orow = &mut out_band[r * n + j..r * n + j + JR];
                strip_axpy::<JR>(orow, bblk, j, n, |kk| arow[kk], kl);
            }
            j += JR;
        }
        while j + L <= n {
            for r in 0..rows {
                let arow = &a[(row0 + r) * k + kb..(row0 + r) * k + ke];
                let orow = &mut out_band[r * n + j..r * n + j + L];
                strip_axpy::<L>(orow, bblk, j, n, |kk| arow[kk], kl);
            }
            j += L;
        }
        if j < n {
            for r in 0..rows {
                let arow = &a[(row0 + r) * k + kb..(row0 + r) * k + ke];
                let orow = &mut out_band[r * n + j..r * n + n];
                tail_axpy(orow, bblk, j, n, |kk| arow[kk], kl);
            }
        }
        kb = ke;
    }
}

/// The `self · rhsᵀ` kernel: each output element is the ascending-`k` dot
/// product of an `a` row and a `b` row. An `L`-column panel of `b` is
/// packed transposed into a stack buffer (`KB` rows at a time) so the
/// eight dots of a strip run as one vector accumulator — eight
/// *independent* dependency chains where the scalar loop had one. The
/// output must be zeroed on entry (callers go through
/// [`Tensor::matmul_nt_into`], which resets it): `k`-blocks accumulate
/// into it, which round-trips each partial sum through memory bit-exactly.
fn mm_nt(a: &[f32], b: &[f32], out_band: &mut [f32], row0: usize, k: usize, n: usize) {
    let rows = out_band.len() / n;
    let mut pack = [0.0f32; KB * L];
    let mut j = 0;
    while j + L <= n {
        let mut kb = 0;
        while kb < k {
            let ke = (kb + KB).min(k);
            let kl = ke - kb;
            for lane in 0..L {
                let col = &b[(j + lane) * k + kb..(j + lane) * k + ke];
                for (i, &v) in col.iter().enumerate() {
                    pack[i * L + lane] = v;
                }
            }
            // Four rows at a time: the packed vector load is shared and
            // the four accumulators form independent dependency chains,
            // hiding FP-add latency. Each row's lane still accumulates in
            // ascending-`k` order, bit-equal to the scalar dot.
            let mut r = 0;
            while r + 4 <= rows {
                let base = (row0 + r) * k + kb;
                let a0 = &a[base..base + kl];
                let a1 = &a[base + k..base + k + kl];
                let a2 = &a[base + 2 * k..base + 2 * k + kl];
                let a3 = &a[base + 3 * k..base + 3 * k + kl];
                let mut c0 = f32x8::from_slice(&out_band[r * n + j..]);
                let mut c1 = f32x8::from_slice(&out_band[(r + 1) * n + j..]);
                let mut c2 = f32x8::from_slice(&out_band[(r + 2) * n + j..]);
                let mut c3 = f32x8::from_slice(&out_band[(r + 3) * n + j..]);
                for i in 0..kl {
                    let pv = f32x8::from_slice(&pack[i * L..]);
                    c0 += f32x8::splat(a0[i]) * pv;
                    c1 += f32x8::splat(a1[i]) * pv;
                    c2 += f32x8::splat(a2[i]) * pv;
                    c3 += f32x8::splat(a3[i]) * pv;
                }
                c0.write_to_slice(&mut out_band[r * n + j..]);
                c1.write_to_slice(&mut out_band[(r + 1) * n + j..]);
                c2.write_to_slice(&mut out_band[(r + 2) * n + j..]);
                c3.write_to_slice(&mut out_band[(r + 3) * n + j..]);
                r += 4;
            }
            while r < rows {
                let arow = &a[(row0 + r) * k + kb..(row0 + r) * k + ke];
                let mut acc = f32x8::from_slice(&out_band[r * n + j..]);
                for (i, &av) in arow.iter().enumerate() {
                    acc += f32x8::splat(av) * f32x8::from_slice(&pack[i * L..]);
                }
                acc.write_to_slice(&mut out_band[r * n + j..]);
                r += 1;
            }
            kb = ke;
        }
        j += L;
    }
    // Scalar tail columns (n % L): the original dot-product loop.
    for r in 0..rows {
        let arow = &a[(row0 + r) * k..(row0 + r + 1) * k];
        for jj in j..n {
            let brow = &b[jj * k..(jj + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            out_band[r * n + jj] = acc;
        }
    }
}

/// The `selfᵀ · rhs` kernel (`a` is `[k, m]`). Same `KB`-blocked strip
/// structure as [`mm_nn`]; the `a` operand is read down a column (stride
/// `m`), which stays cache-resident across the block's strips. Per output
/// element the additions are ascending-`k` with the sparse-skip rule —
/// the same sequence the previous rank-1-update formulation performed.
fn mm_tn(a: &[f32], b: &[f32], out_band: &mut [f32], row0: usize, k: usize, m: usize, n: usize) {
    let rows = out_band.len() / n;
    TN_PACK.with(|cell| {
        let mut pack = cell.borrow_mut();
        let mut kb = 0;
        while kb < k {
            let ke = (kb + KB).min(k);
            let kl = ke - kb;
            let bblk = &b[kb * n..ke * n];
            // Transpose-pack the band's `a` columns once per block: the
            // strided stride-`m` walk happens a single time and every
            // strip below reads the packed row contiguously.
            pack.resize(rows * kl, 0.0);
            for r in 0..rows {
                for (i, slot) in pack[r * kl..(r + 1) * kl].iter_mut().enumerate() {
                    *slot = a[(kb + i) * m + row0 + r];
                }
            }
            let mut j = 0;
            while j + JR <= n {
                for r in 0..rows {
                    let arow = &pack[r * kl..(r + 1) * kl];
                    let orow = &mut out_band[r * n + j..r * n + j + JR];
                    strip_axpy::<JR>(orow, bblk, j, n, |kk| arow[kk], kl);
                }
                j += JR;
            }
            while j + L <= n {
                for r in 0..rows {
                    let arow = &pack[r * kl..(r + 1) * kl];
                    let orow = &mut out_band[r * n + j..r * n + j + L];
                    strip_axpy::<L>(orow, bblk, j, n, |kk| arow[kk], kl);
                }
                j += L;
            }
            if j < n {
                for r in 0..rows {
                    let arow = &pack[r * kl..(r + 1) * kl];
                    let orow = &mut out_band[r * n + j..r * n + n];
                    tail_axpy(orow, bblk, j, n, |kk| arow[kk], kl);
                }
            }
            kb = ke;
        }
    });
}

/// A dense, row-major tensor of `f32` values.
///
/// The shape is dynamic (a `Vec<usize>`), which keeps the substrate simple;
/// all shape errors are programming errors and therefore panic rather than
/// returning `Result`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tensor")
            .field("shape", &self.shape)
            .field("len", &self.data.len())
            .finish()
    }
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    ///
    /// # Examples
    ///
    /// ```
    /// # use autofl_nn::tensor::Tensor;
    /// let t = Tensor::zeros(vec![2, 3]);
    /// assert_eq!(t.len(), 6);
    /// ```
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            data.len(),
            "shape {:?} implies {} elements, got {}",
            shape,
            n,
            data.len()
        );
        Tensor { shape, data }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(vec![n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: Vec<usize>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape to {:?} changes length", shape);
        self.shape = shape;
        self
    }

    /// Number of rows when viewed as a 2-D matrix (first dimension).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "rows() requires a 2-D tensor");
        self.shape[0]
    }

    /// Number of columns when viewed as a 2-D matrix (second dimension).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols() requires a 2-D tensor");
        self.shape[1]
    }

    /// Element access for a 2-D tensor.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable element access for a 2-D tensor.
    #[inline]
    pub fn at2_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        let cols = self.shape[1];
        &mut self.data[r * cols + c]
    }

    /// Re-shapes this tensor into a zeroed buffer of the given shape,
    /// reusing the existing allocation when its capacity suffices. The
    /// scratch-buffer primitive behind the `*_into` kernels.
    pub(crate) fn reset(&mut self, shape: Vec<usize>) {
        let n: usize = shape.iter().product();
        self.data.clear();
        self.data.resize(n, 0.0);
        self.shape = shape;
    }

    /// Like [`Tensor::reset`] but skips the zero-fill of retained
    /// contents: only newly grown elements are zeroed. For scratch
    /// buffers whose every element the caller overwrites before reading
    /// (e.g. the im2col expansion, which writes padding cells
    /// explicitly) — this drops a full-buffer memset from the hot loop.
    pub(crate) fn reset_unfilled(&mut self, shape: Vec<usize>) {
        let n: usize = shape.iter().product();
        self.data.resize(n, 0.0);
        self.shape = shape;
    }

    /// Matrix multiplication `self · rhs` for 2-D tensors.
    ///
    /// Cache-blocked and (for large products) parallel across fixed row
    /// bands; bit-identical to the naive ikj loop at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree or either tensor is not 2-D.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(vec![0]);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`Tensor::matmul`] into a caller-held output tensor, reusing its
    /// allocation (the hot-loop variant: no allocation once warm).
    pub fn matmul_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul inner dims: {} vs {}", k, k2);
        out.reset(vec![m, n]);
        let (a, b) = (self.data.as_slice(), rhs.data.as_slice());
        run_banded(m, n, 2 * m * n * k, &mut out.data, |row0, band| {
            mm_nn(a, b, band, row0, k, n)
        });
    }

    /// Matrix multiplication `selfᵀ · rhs` without materialising the transpose.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(vec![0]);
        self.matmul_tn_into(rhs, &mut out);
        out
    }

    /// [`Tensor::matmul_tn`] into a caller-held output tensor.
    pub fn matmul_tn_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(rhs.shape.len(), 2);
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul_tn inner dims: {} vs {}", k, k2);
        out.reset(vec![m, n]);
        let (a, b) = (self.data.as_slice(), rhs.data.as_slice());
        run_banded(m, n, 2 * m * n * k, &mut out.data, |row0, band| {
            mm_tn(a, b, band, row0, k, m, n)
        });
    }

    /// Matrix multiplication `self · rhsᵀ` without materialising the transpose.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(vec![0]);
        self.matmul_nt_into(rhs, &mut out);
        out
    }

    /// [`Tensor::matmul_nt`] into a caller-held output tensor.
    pub fn matmul_nt_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(rhs.shape.len(), 2);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul_nt inner dims: {} vs {}", k, k2);
        out.reset(vec![m, n]);
        let (a, b) = (self.data.as_slice(), rhs.data.as_slice());
        run_banded(m, n, 2 * m * n * k, &mut out.data, |row0, band| {
            mm_nt(a, b, band, row0, k, n)
        });
    }

    /// Returns the transpose of a 2-D tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(vec![n, m], out)
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// In-place multiplication by a scalar.
    pub fn scale(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute element, or 0.0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_len_and_shape() {
        let t = Tensor::zeros(vec![3, 4, 5]);
        assert_eq!(t.len(), 60);
        assert_eq!(t.shape(), &[3, 4, 5]);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_rejects_wrong_len() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0; 5]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Tensor::from_vec(vec![3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 4], (0..12).map(|x| x as f32).collect());
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![4, 3], (0..12).map(|x| x as f32).collect());
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast, slow);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.clone().reshape(vec![3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), &[3, 2]);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]);
        assert_eq!(a.matmul(&Tensor::eye(2)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn scale_and_add_assign() {
        let mut a = Tensor::full(vec![2], 2.0);
        let b = Tensor::full(vec![2], 3.0);
        a.add_assign(&b);
        a.scale(2.0);
        assert_eq!(a.data(), &[10.0, 10.0]);
    }

    #[test]
    fn max_abs_finds_largest_magnitude() {
        let a = Tensor::from_vec(vec![3], vec![-5.0, 2.0, 4.0]);
        assert_eq!(a.max_abs(), 5.0);
    }

    /// Deterministic pseudo-random matrix (xorshift-free, no rand dep in
    /// unit scope) whose sizes force multiple `MC` bands and `NC` panels.
    fn pseudo(shape: Vec<usize>, seed: u64) -> Tensor {
        let n: usize = shape.iter().product();
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let data: Vec<f32> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // Include exact zeros so the sparse-skip path is exercised.
                if state % 17 == 0 {
                    0.0
                } else {
                    ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
                }
            })
            .collect();
        Tensor::from_vec(shape, data)
    }

    /// Reference ikj product with ascending-k accumulation and the same
    /// sparse-skip rule — the exact FP addition order the blocked kernels
    /// must reproduce bit for bit.
    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a.data()[i * k + kk];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[i * n + j] += av * b.data()[kk * n + j];
                }
            }
        }
        Tensor::from_vec(vec![m, n], out)
    }

    fn assert_bits_equal(a: &Tensor, b: &Tensor) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_naive() {
        // 130 rows > 2 bands of MC=64; 300 cols > 1 panel of NC=256.
        let a = pseudo(vec![130, 70], 1);
        let b = pseudo(vec![70, 300], 2);
        assert_bits_equal(&a.matmul(&b), &naive_matmul(&a, &b));
    }

    #[test]
    fn blocked_matmul_tn_is_bit_identical_to_naive() {
        let a = pseudo(vec![70, 130], 3);
        let b = pseudo(vec![70, 300], 4);
        let t = a.transpose();
        assert_bits_equal(&a.matmul_tn(&b), &naive_matmul(&t, &b));
    }

    #[test]
    fn blocked_matmul_nt_is_bit_identical_to_naive() {
        let a = pseudo(vec![130, 70], 5);
        let b = pseudo(vec![300, 70], 6);
        let t = b.transpose();
        assert_bits_equal(&a.matmul_nt(&b), &naive_matmul(&a, &t));
    }

    #[test]
    fn matmul_bits_are_thread_count_invariant() {
        // Big enough to clear PAR_FLOPS so the banded parallel path runs.
        let a = pseudo(vec![256, 96], 7);
        let b = pseudo(vec![96, 128], 8);
        let prev = std::env::var("AUTOFL_THREADS").ok();
        std::env::set_var("AUTOFL_THREADS", "1");
        rayon::refresh_thread_count();
        let seq = a.matmul(&b);
        std::env::set_var("AUTOFL_THREADS", "8");
        rayon::refresh_thread_count();
        let par = a.matmul(&b);
        match prev {
            Some(v) => std::env::set_var("AUTOFL_THREADS", v),
            None => std::env::remove_var("AUTOFL_THREADS"),
        }
        rayon::refresh_thread_count();
        assert_bits_equal(&seq, &par);
    }

    #[test]
    fn matmul_into_reuses_the_output_allocation() {
        let a = pseudo(vec![8, 8], 9);
        let b = pseudo(vec![8, 8], 10);
        let mut out = Tensor::zeros(vec![8, 8]);
        let cap_ptr = out.data().as_ptr();
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data().as_ptr(), cap_ptr, "no realloc for same size");
        assert_bits_equal(&out, &naive_matmul(&a, &b));
    }
}

//! Shape adapter flattening all non-batch dimensions.

use crate::layers::{Layer, LayerKind};
use crate::tensor::Tensor;

/// Flattens `[batch, d1, d2, ...]` into `[batch, d1*d2*...]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cache_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates the layer.
    pub fn new() -> Self {
        Flatten { cache_shape: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let s = input.shape().to_vec();
        let batch = s[0];
        let rest: usize = s[1..].iter().product();
        if train {
            self.cache_shape = Some(s.clone());
        }
        input.clone().reshape(vec![batch, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let s = self
            .cache_shape
            .take()
            .expect("Flatten::backward without training forward");
        grad_out.clone().reshape(s)
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape.iter().product()]
    }

    fn flops_per_sample(&self, _input_shape: &[usize]) -> u64 {
        0
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Other
    }

    fn name(&self) -> String {
        "flatten".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_shape() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(vec![2, 3, 4]);
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 12]);
        let gx = f.backward(&y);
        assert_eq!(gx.shape(), &[2, 3, 4]);
    }
}

//! Depthwise convolution, the building block of MobileNet-style models.

use crate::init::xavier_uniform;
use crate::layers::{Layer, LayerKind};
use crate::tensor::Tensor;
use rand::Rng;

/// A depthwise 2-D convolution: each input channel is convolved with its own
/// `k`×`k` filter (channel multiplier 1). Combined with a 1×1 [`Conv2d`]
/// (pointwise convolution) this forms the depthwise-separable block used by
/// MobileNet.
///
/// [`Conv2d`]: crate::layers::Conv2d
#[derive(Debug, Clone)]
pub struct DepthwiseConv2d {
    channels: usize,
    k: usize,
    stride: usize,
    pad: usize,
    /// Weights laid out `[channels, k*k]`.
    w: Tensor,
    b: Tensor,
    gw: Tensor,
    gb: Tensor,
    cache_x: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `stride == 0`.
    pub fn new(channels: usize, k: usize, stride: usize, pad: usize, rng: &mut impl Rng) -> Self {
        assert!(k > 0 && stride > 0, "kernel and stride must be positive");
        let fan = k * k;
        DepthwiseConv2d {
            channels,
            k,
            stride,
            pad,
            w: xavier_uniform(vec![channels, fan], fan, fan, rng),
            b: Tensor::zeros(vec![channels]),
            gw: Tensor::zeros(vec![channels, fan]),
            gb: Tensor::zeros(vec![channels]),
            cache_x: None,
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.pad - self.k) / self.stride + 1,
            (w + 2 * self.pad - self.k) / self.stride + 1,
        )
    }
}

impl Layer for DepthwiseConv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 4, "dwconv input must be [batch, c, h, w]");
        assert_eq!(s[1], self.channels, "dwconv channel mismatch");
        let (batch, c, h, w) = (s[0], s[1], s[2], s[3]);
        let (oh, ow) = self.out_hw(h, w);
        let mut out = vec![0.0f32; batch * c * oh * ow];
        let data = input.data();
        let wdat = self.w.data();
        for b in 0..batch {
            for ch in 0..c {
                let wbase = ch * self.k * self.k;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = self.b.data()[ch];
                        for ky in 0..self.k {
                            let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..self.k {
                                let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += data[((b * c + ch) * h + iy as usize) * w + ix as usize]
                                    * wdat[wbase + ky * self.k + kx];
                            }
                        }
                        out[((b * c + ch) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        if train {
            self.cache_x = Some(input.clone());
        }
        Tensor::from_vec(vec![batch, c, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("DepthwiseConv2d::backward without training forward");
        let s = x.shape();
        let (batch, c, h, w) = (s[0], s[1], s[2], s[3]);
        let (oh, ow) = self.out_hw(h, w);
        let mut gx = Tensor::zeros(vec![batch, c, h, w]);
        let xd = x.data();
        let gd = grad_out.data();
        let wdat = self.w.data().to_vec();
        for b in 0..batch {
            for ch in 0..c {
                let wbase = ch * self.k * self.k;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = gd[((b * c + ch) * oh + oy) * ow + ox];
                        self.gb.data_mut()[ch] += g;
                        for ky in 0..self.k {
                            let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..self.k {
                                let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi = ((b * c + ch) * h + iy as usize) * w + ix as usize;
                                self.gw.data_mut()[wbase + ky * self.k + kx] += g * xd[xi];
                                gx.data_mut()[xi] += g * wdat[wbase + ky * self.k + kx];
                            }
                        }
                    }
                }
            }
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (oh, ow) = self.out_hw(input_shape[1], input_shape[2]);
        vec![self.channels, oh, ow]
    }

    fn flops_per_sample(&self, input_shape: &[usize]) -> u64 {
        let (oh, ow) = self.out_hw(input_shape[1], input_shape[2]);
        ((2 * self.k * self.k + 1) * self.channels * oh * ow) as u64
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Conv
    }

    fn name(&self) -> String {
        format!(
            "dwconv({}ch,{}x{},s{},p{})",
            self.channels, self.k, self.k, self.stride, self.pad
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_layer_gradients;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_preserves_channels() {
        let mut rng = SmallRng::seed_from_u64(21);
        let mut dw = DepthwiseConv2d::new(3, 3, 1, 1, &mut rng);
        let y = dw.forward(&Tensor::zeros(vec![2, 3, 6, 6]), false);
        assert_eq!(y.shape(), &[2, 3, 6, 6]);
    }

    #[test]
    fn stride_two_downsamples() {
        let mut rng = SmallRng::seed_from_u64(22);
        let mut dw = DepthwiseConv2d::new(2, 3, 2, 1, &mut rng);
        let y = dw.forward(&Tensor::zeros(vec![1, 2, 8, 8]), false);
        assert_eq!(y.shape(), &[1, 2, 4, 4]);
    }

    #[test]
    fn gradients_match_numerical() {
        let mut rng = SmallRng::seed_from_u64(23);
        let layer = DepthwiseConv2d::new(2, 3, 1, 1, &mut rng);
        check_layer_gradients(layer, &[1, 2, 4, 4], 2e-2, &mut rng);
    }
}

//! Depthwise convolution, the building block of MobileNet-style models.

use crate::init::xavier_uniform;
use crate::layers::{Layer, LayerKind};
use crate::tensor::Tensor;
use rand::Rng;
use wide::f32x8;

/// A depthwise 2-D convolution: each input channel is convolved with its own
/// `k`×`k` filter (channel multiplier 1). Combined with a 1×1 [`Conv2d`]
/// (pointwise convolution) this forms the depthwise-separable block used by
/// MobileNet.
///
/// [`Conv2d`]: crate::layers::Conv2d
#[derive(Debug, Clone)]
pub struct DepthwiseConv2d {
    channels: usize,
    k: usize,
    stride: usize,
    pad: usize,
    /// Weights laid out `[channels, k*k]`.
    w: Tensor,
    b: Tensor,
    gw: Tensor,
    gb: Tensor,
    cache_x: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `stride == 0`.
    pub fn new(channels: usize, k: usize, stride: usize, pad: usize, rng: &mut impl Rng) -> Self {
        assert!(k > 0 && stride > 0, "kernel and stride must be positive");
        let fan = k * k;
        DepthwiseConv2d {
            channels,
            k,
            stride,
            pad,
            w: xavier_uniform(vec![channels, fan], fan, fan, rng),
            b: Tensor::zeros(vec![channels]),
            gw: Tensor::zeros(vec![channels, fan]),
            gb: Tensor::zeros(vec![channels]),
            cache_x: None,
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.pad - self.k) / self.stride + 1,
            (w + 2 * self.pad - self.k) / self.stride + 1,
        )
    }
}

impl Layer for DepthwiseConv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 4, "dwconv input must be [batch, c, h, w]");
        assert_eq!(s[1], self.channels, "dwconv channel mismatch");
        let (batch, c, h, w) = (s[0], s[1], s[2], s[3]);
        let (oh, ow) = self.out_hw(h, w);
        let mut out = vec![0.0f32; batch * c * oh * ow];
        let data = input.data();
        let wdat = self.w.data();
        let bdat = self.b.data();
        let (k, stride, pad) = (self.k, self.stride, self.pad);
        // Interior columns need no per-tap bounds checks: every kx tap stays
        // inside the row. Taps are added in the same ascending (ky, kx) order
        // as the border path, so interior and border results are bit-equal to
        // the naive triple loop.
        let ox_lo = pad.div_ceil(stride).min(ow);
        let ox_hi = if w + pad >= k {
            (((w + pad - k) / stride) + 1).min(ow)
        } else {
            0
        };
        // Degenerate shapes (kernel wider than the padded input) have no
        // interior; treat every column as border.
        let (ox_lo, ox_hi) = if ox_lo <= ox_hi {
            (ox_lo, ox_hi)
        } else {
            (0, 0)
        };
        for b in 0..batch {
            for ch in 0..c {
                let wrow = &wdat[ch * k * k..(ch + 1) * k * k];
                let bias = bdat[ch];
                let plane = &data[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                let out_plane = &mut out[(b * c + ch) * oh * ow..(b * c + ch + 1) * oh * ow];
                for oy in 0..oh {
                    let out_row = &mut out_plane[oy * ow..(oy + 1) * ow];
                    let border = |out_row: &mut [f32], ox: usize| {
                        let mut acc = bias;
                        for ky in 0..k {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += plane[iy as usize * w + ix as usize] * wrow[ky * k + kx];
                            }
                        }
                        out_row[ox] = acc;
                    };
                    for ox in 0..ox_lo {
                        border(out_row, ox);
                    }
                    let mut ox = ox_lo;
                    if stride == 1 && ox_lo < ox_hi {
                        // Unit stride: eight consecutive outputs read eight
                        // consecutive inputs per tap, so a whole lane of
                        // independent accumulators advances together.
                        while ox + f32x8::LANES <= ox_hi {
                            let mut acc = f32x8::splat(bias);
                            for ky in 0..k {
                                let iy = (oy + ky) as isize - pad as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                let row = &plane[iy as usize * w..(iy as usize + 1) * w];
                                for kx in 0..k {
                                    let ix = ox + kx - pad;
                                    acc += f32x8::splat(wrow[ky * k + kx])
                                        * f32x8::from_slice(&row[ix..]);
                                }
                            }
                            acc.write_to_slice(&mut out_row[ox..]);
                            ox += f32x8::LANES;
                        }
                    }
                    while ox < ox_hi {
                        let mut acc = bias;
                        for ky in 0..k {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let row_base = iy as usize * w;
                            let ix0 = ox * stride - pad;
                            for kx in 0..k {
                                acc += plane[row_base + ix0 + kx] * wrow[ky * k + kx];
                            }
                        }
                        out_row[ox] = acc;
                        ox += 1;
                    }
                    for ox in ox_hi..ow {
                        border(out_row, ox);
                    }
                }
            }
        }
        if train {
            self.cache_x = Some(input.clone());
        }
        Tensor::from_vec(vec![batch, c, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("DepthwiseConv2d::backward without training forward");
        let s = x.shape();
        let (batch, c, h, w) = (s[0], s[1], s[2], s[3]);
        let (oh, ow) = self.out_hw(h, w);
        let mut gx = Tensor::zeros(vec![batch, c, h, w]);
        let gxd = gx.data_mut();
        let xd = x.data();
        let gd = grad_out.data();
        let wdat = self.w.data();
        let gwd = self.gw.data_mut();
        let gbd = self.gb.data_mut();
        let (k, stride, pad) = (self.k, self.stride, self.pad);
        // The weight and bias gradients are reductions over every output
        // position, so the (oy, ox, ky, kx) accumulation order below must stay
        // identical to the naive loop for bit-reproducibility. The win here is
        // hoisting the per-channel slices out of the pixel loop instead of
        // re-borrowing the gradient tensors once per tap.
        for b in 0..batch {
            for ch in 0..c {
                let wrow = &wdat[ch * k * k..(ch + 1) * k * k];
                let gwrow = &mut gwd[ch * k * k..(ch + 1) * k * k];
                let xplane = &xd[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                let gxplane = &mut gxd[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                let gplane = &gd[(b * c + ch) * oh * ow..(b * c + ch + 1) * oh * ow];
                let mut gb_acc = gbd[ch];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = gplane[oy * ow + ox];
                        gb_acc += g;
                        for ky in 0..k {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let row_base = iy as usize * w;
                            for kx in 0..k {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi = row_base + ix as usize;
                                gwrow[ky * k + kx] += g * xplane[xi];
                                gxplane[xi] += g * wrow[ky * k + kx];
                            }
                        }
                    }
                }
                gbd[ch] = gb_acc;
            }
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (oh, ow) = self.out_hw(input_shape[1], input_shape[2]);
        vec![self.channels, oh, ow]
    }

    fn flops_per_sample(&self, input_shape: &[usize]) -> u64 {
        let (oh, ow) = self.out_hw(input_shape[1], input_shape[2]);
        ((2 * self.k * self.k + 1) * self.channels * oh * ow) as u64
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Conv
    }

    fn name(&self) -> String {
        format!(
            "dwconv({}ch,{}x{},s{},p{})",
            self.channels, self.k, self.k, self.stride, self.pad
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_layer_gradients;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_preserves_channels() {
        let mut rng = SmallRng::seed_from_u64(21);
        let mut dw = DepthwiseConv2d::new(3, 3, 1, 1, &mut rng);
        let y = dw.forward(&Tensor::zeros(vec![2, 3, 6, 6]), false);
        assert_eq!(y.shape(), &[2, 3, 6, 6]);
    }

    #[test]
    fn stride_two_downsamples() {
        let mut rng = SmallRng::seed_from_u64(22);
        let mut dw = DepthwiseConv2d::new(2, 3, 2, 1, &mut rng);
        let y = dw.forward(&Tensor::zeros(vec![1, 2, 8, 8]), false);
        assert_eq!(y.shape(), &[1, 2, 4, 4]);
    }

    #[test]
    fn gradients_match_numerical() {
        let mut rng = SmallRng::seed_from_u64(23);
        let layer = DepthwiseConv2d::new(2, 3, 1, 1, &mut rng);
        check_layer_gradients(layer, &[1, 2, 4, 4], 2e-2, &mut rng);
    }
}

//! Fully-connected layer.

use crate::init::xavier_uniform;
use crate::layers::{Layer, LayerKind};
use crate::tensor::Tensor;
use rand::Rng;
use wide::f32x8;

/// A fully-connected layer computing `y = x·W + b`.
///
/// Input `[batch, in_dim]`, output `[batch, out_dim]`.
///
/// # Examples
///
/// ```
/// use autofl_nn::layers::{Dense, Layer};
/// use autofl_nn::tensor::Tensor;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let mut fc = Dense::new(4, 2, &mut rng);
/// let x = Tensor::zeros(vec![3, 4]);
/// let y = fc.forward(&x, false);
/// assert_eq!(y.shape(), &[3, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    w: Tensor,
    b: Tensor,
    gw: Tensor,
    gb: Tensor,
    cache_x: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Xavier-uniform weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Dense {
            in_dim,
            out_dim,
            w: xavier_uniform(vec![in_dim, out_dim], in_dim, out_dim, rng),
            b: Tensor::zeros(vec![out_dim]),
            gw: Tensor::zeros(vec![in_dim, out_dim]),
            gb: Tensor::zeros(vec![out_dim]),
            cache_x: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.shape()[1], self.in_dim, "dense input dim mismatch");
        let mut y = input.matmul(&self.w);
        let out = self.out_dim;
        let rows = y.rows();
        let bdat = self.b.data();
        let ydat = y.data_mut();
        for r in 0..rows {
            let row = &mut ydat[r * out..(r + 1) * out];
            let mut c = 0;
            while c + f32x8::LANES <= out {
                let v = f32x8::from_slice(&row[c..]) + f32x8::from_slice(&bdat[c..]);
                v.write_to_slice(&mut row[c..]);
                c += f32x8::LANES;
            }
            for (slot, bias) in row.iter_mut().zip(bdat.iter()).skip(c) {
                *slot += *bias;
            }
        }
        if train {
            self.cache_x = Some(input.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("Dense::backward called without training forward");
        self.gw.add_assign(&x.matmul_tn(grad_out));
        // Each lane reduces its own column in ascending row order, so the
        // per-column addition sequence is identical to the scalar loop.
        let out = self.out_dim;
        let rows = grad_out.rows();
        let gd = grad_out.data();
        let gbd = self.gb.data_mut();
        let mut c = 0;
        while c + f32x8::LANES <= out {
            let mut acc = f32x8::from_slice(&gbd[c..]);
            for r in 0..rows {
                acc += f32x8::from_slice(&gd[r * out + c..]);
            }
            acc.write_to_slice(&mut gbd[c..]);
            c += f32x8::LANES;
        }
        for (cc, slot) in gbd.iter_mut().enumerate().skip(c) {
            for r in 0..rows {
                *slot += gd[r * out + cc];
            }
        }
        grad_out.matmul_nt(&self.w)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        assert_eq!(input_shape, [self.in_dim], "dense expects [in_dim] input");
        vec![self.out_dim]
    }

    fn flops_per_sample(&self, _input_shape: &[usize]) -> u64 {
        // One multiply + one add per weight, plus the bias add.
        (2 * self.in_dim * self.out_dim + self.out_dim) as u64
    }

    fn kind(&self) -> LayerKind {
        LayerKind::FullyConnected
    }

    fn name(&self) -> String {
        format!("dense({}->{})", self.in_dim, self.out_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_layer_gradients;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut fc = Dense::new(3, 2, &mut rng);
        fc.b.data_mut()[0] = 1.0;
        let x = Tensor::zeros(vec![4, 3]);
        let y = fc.forward(&x, false);
        assert_eq!(y.shape(), &[4, 2]);
        assert_eq!(y.at2(0, 0), 1.0);
        assert_eq!(y.at2(0, 1), 0.0);
    }

    #[test]
    fn gradients_match_numerical() {
        let mut rng = SmallRng::seed_from_u64(2);
        let layer = Dense::new(4, 3, &mut rng);
        check_layer_gradients(layer, &[2, 4], 1e-2, &mut rng);
    }

    #[test]
    fn param_count_counts_weights_and_bias() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut fc = Dense::new(5, 7, &mut rng);
        assert_eq!(fc.param_count(), 5 * 7 + 7);
    }

    #[test]
    fn flops_formula() {
        let mut rng = SmallRng::seed_from_u64(4);
        let fc = Dense::new(10, 4, &mut rng);
        assert_eq!(fc.flops_per_sample(&[10]), 2 * 10 * 4 + 4);
        assert_eq!(fc.output_shape(&[10]), vec![4]);
    }

    #[test]
    #[should_panic(expected = "without training forward")]
    fn backward_requires_training_forward() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut fc = Dense::new(2, 2, &mut rng);
        let x = Tensor::zeros(vec![1, 2]);
        let _ = fc.forward(&x, false);
        let _ = fc.backward(&Tensor::zeros(vec![1, 2]));
    }
}

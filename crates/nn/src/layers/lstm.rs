//! A single-layer LSTM with backpropagation through time.

use crate::init::xavier_uniform;
use crate::layers::{Layer, LayerKind};
use crate::tensor::Tensor;
use rand::Rng;
use wide::f32x8;

/// A single LSTM layer consuming `[batch, seq, input_dim]` sequences and
/// emitting the final hidden state `[batch, hidden]`.
///
/// The four gates (input, forget, output, cell-candidate) share one packed
/// weight matrix `[4*hidden, hidden + input_dim]` applied to the
/// concatenation `[h_{t-1}, x_t]`. The forget-gate bias is initialised to 1,
/// the standard trick to keep gradients flowing early in training.
#[derive(Debug, Clone)]
pub struct Lstm {
    input_dim: usize,
    hidden: usize,
    /// Packed gate weights `[4H, H + X]`, rows ordered i, f, o, g.
    w: Tensor,
    b: Tensor,
    gw: Tensor,
    gb: Tensor,
    cache: Option<BpttCache>,
}

#[derive(Debug, Clone)]
struct BpttCache {
    batch: usize,
    seq: usize,
    /// Per-step caches, each `[batch, ...]`.
    z: Vec<Tensor>,
    i: Vec<Vec<f32>>,
    f: Vec<Vec<f32>>,
    o: Vec<Vec<f32>>,
    g: Vec<Vec<f32>>,
    c_prev: Vec<Vec<f32>>,
    tanh_c: Vec<Vec<f32>>,
}

impl Lstm {
    /// Creates an LSTM layer.
    pub fn new(input_dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        let cols = hidden + input_dim;
        let mut b = Tensor::zeros(vec![4 * hidden]);
        // Forget gate bias = 1.
        for v in &mut b.data_mut()[hidden..2 * hidden] {
            *v = 1.0;
        }
        Lstm {
            input_dim,
            hidden,
            w: xavier_uniform(vec![4 * hidden, cols], cols, hidden, rng),
            b,
            gw: Tensor::zeros(vec![4 * hidden, cols]),
            gb: Tensor::zeros(vec![4 * hidden]),
            cache: None,
        }
    }

    /// Hidden-state width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Layer for Lstm {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 3, "lstm input must be [batch, seq, input_dim]");
        assert_eq!(s[2], self.input_dim, "lstm input dim mismatch");
        let (batch, seq, x_dim) = (s[0], s[1], s[2]);
        let hid = self.hidden;
        let cols = hid + x_dim;

        let mut h = vec![0.0f32; batch * hid];
        let mut c = vec![0.0f32; batch * hid];
        let mut cache = train.then(|| BpttCache {
            batch,
            seq,
            z: Vec::with_capacity(seq),
            i: Vec::with_capacity(seq),
            f: Vec::with_capacity(seq),
            o: Vec::with_capacity(seq),
            g: Vec::with_capacity(seq),
            c_prev: Vec::with_capacity(seq),
            tanh_c: Vec::with_capacity(seq),
        });

        let input_d = input.data();
        let bdat = self.b.data();
        // Scratch reused across timesteps. In eval mode `z` is also reused;
        // in training it is moved into the BPTT cache each step, so a fresh
        // buffer is unavoidable there.
        let mut z_reuse = Tensor::zeros(vec![0]);
        let mut a = Tensor::zeros(vec![0]);
        for t in 0..seq {
            // z = [h_{t-1}, x_t]
            let mut z = if train {
                Tensor::zeros(vec![batch, cols])
            } else {
                let mut zt = std::mem::replace(&mut z_reuse, Tensor::zeros(vec![0]));
                zt.reset_unfilled(vec![batch, cols]);
                zt
            };
            let zd = z.data_mut();
            for bi in 0..batch {
                zd[bi * cols..bi * cols + hid].copy_from_slice(&h[bi * hid..(bi + 1) * hid]);
                let xoff = (bi * seq + t) * x_dim;
                zd[bi * cols + hid..(bi + 1) * cols].copy_from_slice(&input_d[xoff..xoff + x_dim]);
            }
            z.matmul_nt_into(&self.w, &mut a); // [batch, 4H]
            let adat = a.data_mut();
            for bi in 0..batch {
                let arow = &mut adat[bi * 4 * hid..(bi + 1) * 4 * hid];
                let mut j = 0;
                while j + f32x8::LANES <= 4 * hid {
                    let v = f32x8::from_slice(&arow[j..]) + f32x8::from_slice(&bdat[j..]);
                    v.write_to_slice(&mut arow[j..]);
                    j += f32x8::LANES;
                }
                for (slot, bias) in arow.iter_mut().zip(bdat.iter()).skip(j) {
                    *slot += *bias;
                }
            }
            if let Some(cc) = cache.as_mut() {
                let mut gate_i = vec![0.0f32; batch * hid];
                let mut gate_f = vec![0.0f32; batch * hid];
                let mut gate_o = vec![0.0f32; batch * hid];
                let mut gate_g = vec![0.0f32; batch * hid];
                let c_prev = c.clone();
                let mut tanh_c = vec![0.0f32; batch * hid];
                for bi in 0..batch {
                    let arow = &adat[bi * 4 * hid..(bi + 1) * 4 * hid];
                    for j in 0..hid {
                        let iv = sigmoid(arow[j]);
                        let fv = sigmoid(arow[hid + j]);
                        let ov = sigmoid(arow[2 * hid + j]);
                        let gv = arow[3 * hid + j].tanh();
                        let idx = bi * hid + j;
                        let cv = fv * c_prev[idx] + iv * gv;
                        let tc = cv.tanh();
                        gate_i[idx] = iv;
                        gate_f[idx] = fv;
                        gate_o[idx] = ov;
                        gate_g[idx] = gv;
                        c[idx] = cv;
                        tanh_c[idx] = tc;
                        h[idx] = ov * tc;
                    }
                }
                cc.z.push(z);
                cc.i.push(gate_i);
                cc.f.push(gate_f);
                cc.o.push(gate_o);
                cc.g.push(gate_g);
                cc.c_prev.push(c_prev);
                cc.tanh_c.push(tanh_c);
            } else {
                // Inference keeps no per-gate state: each cell only needs its
                // own previous value, which is read before being overwritten.
                for bi in 0..batch {
                    let arow = &adat[bi * 4 * hid..(bi + 1) * 4 * hid];
                    for j in 0..hid {
                        let iv = sigmoid(arow[j]);
                        let fv = sigmoid(arow[hid + j]);
                        let ov = sigmoid(arow[2 * hid + j]);
                        let gv = arow[3 * hid + j].tanh();
                        let idx = bi * hid + j;
                        let cv = fv * c[idx] + iv * gv;
                        c[idx] = cv;
                        h[idx] = ov * cv.tanh();
                    }
                }
                z_reuse = z;
            }
        }
        self.cache = cache;
        Tensor::from_vec(vec![batch, hid], h)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("Lstm::backward called without training forward");
        let (batch, seq) = (cache.batch, cache.seq);
        let hid = self.hidden;
        let x_dim = self.input_dim;

        let mut dh: Vec<f32> = grad_out.data().to_vec();
        let mut dc = vec![0.0f32; batch * hid];
        let mut gx = Tensor::zeros(vec![batch, seq, x_dim]);
        let gxd = gx.data_mut();

        // Step-invariant scratch: reused for all `seq` iterations instead of
        // reallocating `da`, the weight-gradient product, and `dz` each step.
        let mut da = Tensor::zeros(vec![batch, 4 * hid]);
        let mut gw_step = Tensor::zeros(vec![0]);
        let mut dz = Tensor::zeros(vec![0]);

        for t in (0..seq).rev() {
            let dad = da.data_mut();
            for bi in 0..batch {
                let darow = &mut dad[bi * 4 * hid..(bi + 1) * 4 * hid];
                for j in 0..hid {
                    let idx = bi * hid + j;
                    let (iv, fv, ov, gv) = (
                        cache.i[t][idx],
                        cache.f[t][idx],
                        cache.o[t][idx],
                        cache.g[t][idx],
                    );
                    let tc = cache.tanh_c[t][idx];
                    let dct = dc[idx] + dh[idx] * ov * (1.0 - tc * tc);
                    let dov = dh[idx] * tc;
                    let div = dct * gv;
                    let dgv = dct * iv;
                    let dfv = dct * cache.c_prev[t][idx];
                    darow[j] = div * iv * (1.0 - iv);
                    darow[hid + j] = dfv * fv * (1.0 - fv);
                    darow[2 * hid + j] = dov * ov * (1.0 - ov);
                    darow[3 * hid + j] = dgv * (1.0 - gv * gv);
                    dc[idx] = dct * fv;
                }
            }
            da.matmul_tn_into(&cache.z[t], &mut gw_step);
            self.gw.add_assign(&gw_step);
            // Each lane reduces its own gate column in ascending batch order,
            // matching the scalar accumulation sequence bit-for-bit.
            let dad = da.data();
            let gbd = self.gb.data_mut();
            let mut j = 0;
            while j + f32x8::LANES <= 4 * hid {
                let mut acc = f32x8::from_slice(&gbd[j..]);
                for bi in 0..batch {
                    acc += f32x8::from_slice(&dad[bi * 4 * hid + j..]);
                }
                acc.write_to_slice(&mut gbd[j..]);
                j += f32x8::LANES;
            }
            for (jj, slot) in gbd.iter_mut().enumerate().skip(j) {
                for bi in 0..batch {
                    *slot += dad[bi * 4 * hid + jj];
                }
            }
            da.matmul_into(&self.w, &mut dz); // [batch, cols]
            let dzd = dz.data();
            let cols = hid + x_dim;
            for bi in 0..batch {
                let dzrow = &dzd[bi * cols..(bi + 1) * cols];
                dh[bi * hid..(bi + 1) * hid].copy_from_slice(&dzrow[..hid]);
                let xoff = (bi * seq + t) * x_dim;
                gxd[xoff..xoff + x_dim].copy_from_slice(&dzrow[hid..]);
            }
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        assert_eq!(input_shape.len(), 2, "lstm per-sample shape is [seq, x]");
        vec![self.hidden]
    }

    fn flops_per_sample(&self, input_shape: &[usize]) -> u64 {
        let seq = input_shape[0] as u64;
        let hid = self.hidden as u64;
        let cols = (self.hidden + self.input_dim) as u64;
        // Gate matmul + bias + ~10 pointwise ops per hidden unit per step.
        seq * (2 * 4 * hid * cols + 4 * hid + 10 * hid)
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Recurrent
    }

    fn name(&self) -> String {
        format!("lstm({}->{})", self.input_dim, self.hidden)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_layer_gradients;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_is_last_hidden() {
        let mut rng = SmallRng::seed_from_u64(41);
        let mut lstm = Lstm::new(3, 5, &mut rng);
        let x = Tensor::zeros(vec![2, 7, 3]);
        let y = lstm.forward(&x, false);
        assert_eq!(y.shape(), &[2, 5]);
    }

    #[test]
    fn zero_input_zero_state_gives_bounded_output() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut lstm = Lstm::new(2, 4, &mut rng);
        let y = lstm.forward(&Tensor::zeros(vec![1, 3, 2]), false);
        assert!(y.data().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn gradients_match_numerical() {
        let mut rng = SmallRng::seed_from_u64(43);
        let layer = Lstm::new(3, 4, &mut rng);
        check_layer_gradients(layer, &[2, 3, 3], 3e-2, &mut rng);
    }

    #[test]
    fn longer_sequences_cost_more_flops() {
        let mut rng = SmallRng::seed_from_u64(44);
        let lstm = Lstm::new(8, 16, &mut rng);
        assert!(lstm.flops_per_sample(&[20, 8]) > lstm.flops_per_sample(&[10, 8]));
    }
}

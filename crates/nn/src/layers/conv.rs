//! 2-D convolution via im2col.

use crate::init::xavier_uniform;
use crate::layers::{Layer, LayerKind};
use crate::tensor::Tensor;
use rand::Rng;
use wide::f32x8;

/// A 2-D convolution over `[batch, in_c, h, w]` inputs.
///
/// Implemented with im2col + matrix multiplication so the backward pass
/// reuses the tensor kernels. Stride and symmetric zero-padding are
/// supported.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    /// Weights laid out `[out_c, in_c*k*k]`.
    w: Tensor,
    b: Tensor,
    gw: Tensor,
    gb: Tensor,
    cache: Option<ConvCache>,
    /// im2col matrix of the last forward, `[batch*oh*ow, in_c*k*k]`.
    /// Persistent scratch: reused (not reallocated) across calls.
    cols: Tensor,
    /// Scratch for the forward product, backward grad permutation,
    /// weight-gradient product and column gradient, all reused across
    /// calls so steady-state training allocates only layer outputs.
    y2: Tensor,
    g2: Tensor,
    gw_acc: Tensor,
    gcols: Tensor,
}

#[derive(Debug, Clone, Copy)]
struct ConvCache {
    in_shape: [usize; 4],
    out_hw: (usize, usize),
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `stride == 0`.
    pub fn new(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(k > 0 && stride > 0, "kernel and stride must be positive");
        let fan_in = in_c * k * k;
        Conv2d {
            in_c,
            out_c,
            k,
            stride,
            pad,
            w: xavier_uniform(vec![out_c, fan_in], fan_in, out_c, rng),
            b: Tensor::zeros(vec![out_c]),
            gw: Tensor::zeros(vec![out_c, fan_in]),
            gb: Tensor::zeros(vec![out_c]),
            cache: None,
            cols: Tensor::zeros(vec![0]),
            y2: Tensor::zeros(vec![0]),
            g2: Tensor::zeros(vec![0]),
            gw_acc: Tensor::zeros(vec![0]),
            gcols: Tensor::zeros(vec![0]),
        }
    }

    /// Output spatial size for a given input spatial size.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.pad - self.k) / self.stride + 1,
            (w + 2 * self.pad - self.k) / self.stride + 1,
        )
    }

    /// Expands `input` into `self.cols` (reusing its allocation).
    ///
    /// Every cell of the column matrix is written — padding taps store an
    /// explicit `0.0` — so the scratch needs no up-front zeroing, and the
    /// all-taps-in-bounds interior (the bulk of every row at `pad ≤ 1`)
    /// takes a branch-free contiguous copy.
    fn im2col(&mut self, input: &Tensor) -> (usize, usize) {
        let s = input.shape();
        let (batch, in_c, h, w) = (s[0], s[1], s[2], s[3]);
        let (oh, ow) = self.out_hw(h, w);
        let kk = self.k;
        let stride = self.stride;
        let pad = self.pad;
        let fan_in = in_c * kk * kk;
        self.cols.reset_unfilled(vec![batch * oh * ow, fan_in]);
        let cols = self.cols.data_mut();
        let data = input.data();
        for b in 0..batch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((b * oh + oy) * ow + ox) * fan_in;
                    let x0 = ox * stride;
                    let interior = x0 >= pad && x0 + kk <= w + pad;
                    for c in 0..in_c {
                        let plane = ((b * in_c + c) * h) * w;
                        for ky in 0..kk {
                            let dst = row + (c * kk + ky) * kk;
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                cols[dst..dst + kk].fill(0.0);
                                continue;
                            }
                            let src = plane + iy as usize * w;
                            if interior {
                                let s0 = src + x0 - pad;
                                if kk == 3 {
                                    // Fixed-length copy the compiler inlines
                                    // (the dominant 3x3 kernel case).
                                    cols[dst..dst + 3].copy_from_slice(&data[s0..s0 + 3]);
                                } else {
                                    cols[dst..dst + kk].copy_from_slice(&data[s0..s0 + kk]);
                                }
                            } else {
                                for kx in 0..kk {
                                    let ix = (x0 + kx) as isize - pad as isize;
                                    cols[dst + kx] = if ix < 0 || ix >= w as isize {
                                        0.0
                                    } else {
                                        data[src + ix as usize]
                                    };
                                }
                            }
                        }
                    }
                }
            }
        }
        (oh, ow)
    }

    /// Scatters `self.gcols` back into an input-shaped gradient.
    fn col2im(&self, in_shape: [usize; 4], out_hw: (usize, usize)) -> Tensor {
        let [batch, in_c, h, w] = in_shape;
        let (oh, ow) = out_hw;
        let kk = self.k;
        let fan_in = in_c * kk * kk;
        let mut gx = Tensor::zeros(vec![batch, in_c, h, w]);
        let gdata = gx.data_mut();
        let cols = self.gcols.data();
        for b in 0..batch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((b * oh + oy) * ow + ox) * fan_in;
                    let x0 = ox * self.stride;
                    let interior = x0 >= self.pad && x0 + kk <= w + self.pad;
                    for c in 0..in_c {
                        let plane = ((b * in_c + c) * h) * w;
                        for ky in 0..kk {
                            let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let dst = plane + iy as usize * w;
                            let src = row + (c * kk + ky) * kk;
                            if interior {
                                let d0 = dst + x0 - self.pad;
                                if kk == 3 {
                                    gdata[d0] += cols[src];
                                    gdata[d0 + 1] += cols[src + 1];
                                    gdata[d0 + 2] += cols[src + 2];
                                } else {
                                    for (g, &cv) in
                                        gdata[d0..d0 + kk].iter_mut().zip(&cols[src..src + kk])
                                    {
                                        *g += cv;
                                    }
                                }
                            } else {
                                for kx in 0..kk {
                                    let ix = (x0 + kx) as isize - self.pad as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    gdata[dst + ix as usize] += cols[src + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
        gx
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 4, "conv input must be [batch, c, h, w]");
        assert_eq!(s[1], self.in_c, "conv input channel mismatch");
        let (batch, h, w) = (s[0], s[2], s[3]);
        let (oh, ow) = self.im2col(input);
        // [batch*oh*ow, fan_in] x [fan_in, out_c] -> rows are positions.
        self.cols.matmul_nt_into(&self.w, &mut self.y2);
        let y2 = &self.y2;
        // Permute rows (b, oy, ox) x out_c into [batch, out_c, oh, ow].
        // The (b, oc, position) sweep emits every output index exactly
        // once in ascending order, so the buffer is built by extension —
        // no up-front zero-fill of an output it fully overwrites.
        let mut out = Vec::with_capacity(batch * self.out_c * oh * ow);
        let bias = self.b.data();
        let y2d = y2.data();
        for b in 0..batch {
            for (oc, &bias_v) in bias.iter().enumerate().take(self.out_c) {
                let src0 = (b * oh * ow) * self.out_c + oc;
                out.extend((0..oh * ow).map(|p| y2d[src0 + p * self.out_c] + bias_v));
            }
        }
        // `self.cols` is shared scratch: any forward overwrites it, so a
        // non-training forward must invalidate the cache — backward after
        // it would otherwise silently use the wrong columns.
        self.cache = train.then_some(ConvCache {
            in_shape: [batch, self.in_c, h, w],
            out_hw: (oh, ow),
        });
        Tensor::from_vec(vec![batch, self.out_c, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("Conv2d::backward called without training forward");
        let [batch, _, _, _] = cache.in_shape;
        let (oh, ow) = cache.out_hw;
        let out_c = self.out_c;
        // Permute grad back to [batch*oh*ow, out_c] (reused scratch; every
        // cell is written, so no zero-fill).
        self.g2.reset_unfilled(vec![batch * oh * ow, out_c]);
        let g2 = self.g2.data_mut();
        let g = grad_out.data();
        for b in 0..batch {
            for oc in 0..out_c {
                let src0 = ((b * out_c + oc) * oh) * ow;
                let dst0 = (b * oh * ow) * out_c + oc;
                for p in 0..oh * ow {
                    g2[dst0 + p * out_c] = g[src0 + p];
                }
            }
        }
        self.g2.matmul_tn_into(&self.cols, &mut self.gw_acc);
        self.gw.add_assign(&self.gw_acc);
        // Bias gradient: column sums of g2, vectorised across output
        // channels. Each channel's sum accumulates in ascending row order
        // starting from the existing gb value — the exact addition
        // sequence of the scalar loop it replaces.
        {
            let g2 = self.g2.data();
            let rows = batch * oh * ow;
            let gb = self.gb.data_mut();
            let mut oc = 0;
            while oc + f32x8::LANES <= out_c {
                let mut acc = f32x8::from_slice(&gb[oc..]);
                for r in 0..rows {
                    acc += f32x8::from_slice(&g2[r * out_c + oc..]);
                }
                acc.write_to_slice(&mut gb[oc..]);
                oc += f32x8::LANES;
            }
            for (j, gbv) in gb.iter_mut().enumerate().skip(oc) {
                let mut acc = *gbv;
                for r in 0..rows {
                    acc += g2[r * out_c + j];
                }
                *gbv = acc;
            }
        }
        self.g2.matmul_into(&self.w, &mut self.gcols);
        self.col2im(cache.in_shape, cache.out_hw)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        assert_eq!(input_shape.len(), 3, "conv expects [c, h, w] input");
        assert_eq!(input_shape[0], self.in_c, "conv input channel mismatch");
        let (oh, ow) = self.out_hw(input_shape[1], input_shape[2]);
        vec![self.out_c, oh, ow]
    }

    fn flops_per_sample(&self, input_shape: &[usize]) -> u64 {
        let (oh, ow) = self.out_hw(input_shape[1], input_shape[2]);
        // Per output element: 2*fan_in FLOPs plus the bias add.
        ((2 * self.in_c * self.k * self.k + 1) * self.out_c * oh * ow) as u64
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Conv
    }

    fn name(&self) -> String {
        format!(
            "conv2d({}->{},{}x{},s{},p{})",
            self.in_c, self.out_c, self.k, self.k, self.stride, self.pad
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_layer_gradients;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_same_padding() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut conv = Conv2d::new(1, 4, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(vec![2, 1, 8, 8]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[2, 4, 8, 8]);
    }

    #[test]
    fn forward_shape_valid_stride2() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut conv = Conv2d::new(3, 2, 3, 2, 0, &mut rng);
        let x = Tensor::zeros(vec![1, 3, 9, 9]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 2, 4, 4]);
    }

    #[test]
    fn identity_kernel_passes_input_through() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        conv.w.data_mut()[0] = 1.0;
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn gradients_match_numerical_padded() {
        let mut rng = SmallRng::seed_from_u64(4);
        let layer = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        check_layer_gradients(layer, &[2, 2, 4, 4], 2e-2, &mut rng);
    }

    #[test]
    #[should_panic(expected = "without training forward")]
    fn inference_forward_invalidates_training_cache() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(vec![1, 1, 4, 4]);
        let y = conv.forward(&x, true);
        // The inference forward reuses the im2col scratch, so the pending
        // backward must refuse rather than use the wrong columns.
        let _ = conv.forward(&x, false);
        let _ = conv.backward(&y);
    }

    #[test]
    fn gradients_match_numerical_strided() {
        let mut rng = SmallRng::seed_from_u64(5);
        let layer = Conv2d::new(1, 2, 3, 2, 0, &mut rng);
        check_layer_gradients(layer, &[1, 1, 5, 5], 2e-2, &mut rng);
    }
}

//! Pooling layers.

use crate::layers::{Layer, LayerKind};
use crate::tensor::Tensor;

/// Max pooling with a square window and equal stride over
/// `[batch, c, h, w]` inputs.
///
/// # Examples
///
/// ```
/// use autofl_nn::layers::{Layer, MaxPool2d};
/// use autofl_nn::tensor::Tensor;
///
/// let mut pool = MaxPool2d::new(2);
/// let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]);
/// assert_eq!(pool.forward(&x, false).data(), &[5.0]);
/// ```
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    k: usize,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (argmax flat indices, in shape)
}

impl MaxPool2d {
    /// Creates a max-pool layer with window and stride `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "pool window must be positive");
        MaxPool2d { k, cache: None }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 4, "pool input must be [batch, c, h, w]");
        let (batch, c, h, w) = (s[0], s[1], s[2], s[3]);
        let (oh, ow) = (h / self.k, w / self.k);
        let mut out = vec![f32::NEG_INFINITY; batch * c * oh * ow];
        let mut arg = vec![0usize; out.len()];
        let data = input.data();
        for b in 0..batch {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let o = ((b * c + ch) * oh + oy) * ow + ox;
                        for ky in 0..self.k {
                            for kx in 0..self.k {
                                let i =
                                    ((b * c + ch) * h + oy * self.k + ky) * w + ox * self.k + kx;
                                if data[i] > out[o] {
                                    out[o] = data[i];
                                    arg[o] = i;
                                }
                            }
                        }
                    }
                }
            }
        }
        if train {
            self.cache = Some((arg, s.to_vec()));
        }
        Tensor::from_vec(vec![batch, c, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (arg, in_shape) = self
            .cache
            .take()
            .expect("MaxPool2d::backward without training forward");
        let mut gx = Tensor::zeros(in_shape);
        for (o, &i) in arg.iter().enumerate() {
            gx.data_mut()[i] += grad_out.data()[o];
        }
        gx
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![
            input_shape[0],
            input_shape[1] / self.k,
            input_shape[2] / self.k,
        ]
    }

    fn flops_per_sample(&self, input_shape: &[usize]) -> u64 {
        // One comparison per input element inside each window.
        input_shape.iter().product::<usize>() as u64
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Other
    }

    fn name(&self) -> String {
        format!("maxpool({})", self.k)
    }
}

/// Global average pooling: `[batch, c, h, w]` → `[batch, c]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    cache_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates the layer.
    pub fn new() -> Self {
        GlobalAvgPool { cache_shape: None }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 4, "global pool input must be [batch, c, h, w]");
        let (batch, c, hw) = (s[0], s[1], s[2] * s[3]);
        let mut out = vec![0.0f32; batch * c];
        for b in 0..batch {
            for ch in 0..c {
                let base = (b * c + ch) * hw;
                let sum: f32 = input.data()[base..base + hw].iter().sum();
                out[b * c + ch] = sum / hw as f32;
            }
        }
        if train {
            self.cache_shape = Some(s.to_vec());
        }
        Tensor::from_vec(vec![batch, c], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let s = self
            .cache_shape
            .take()
            .expect("GlobalAvgPool::backward without training forward");
        let (batch, c, hw) = (s[0], s[1], s[2] * s[3]);
        let mut gx = Tensor::zeros(s.clone());
        for b in 0..batch {
            for ch in 0..c {
                let g = grad_out.data()[b * c + ch] / hw as f32;
                let base = (b * c + ch) * hw;
                for x in &mut gx.data_mut()[base..base + hw] {
                    *x = g;
                }
            }
        }
        gx
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape[0]]
    }

    fn flops_per_sample(&self, input_shape: &[usize]) -> u64 {
        input_shape.iter().product::<usize>() as u64
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Other
    }

    fn name(&self) -> String {
        "globalavgpool".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_selects_maxima() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![1, 1, 4, 4],
            (0..16).map(|v| v as f32).collect::<Vec<_>>(),
        );
        let y = pool.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 9.0, 3.0, 2.0]);
        let _ = pool.forward(&x, true);
        let gx = pool.backward(&Tensor::from_vec(vec![1, 1, 1, 1], vec![2.0]));
        assert_eq!(gx.data(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn global_avg_pool_means() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1, 2, 1, 2], vec![1.0, 3.0, 10.0, 20.0]);
        let y = pool.forward(&x, false);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[2.0, 15.0]);
    }

    #[test]
    fn global_avg_pool_backward_spreads_evenly() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::zeros(vec![1, 1, 2, 2]);
        let _ = pool.forward(&x, true);
        let gx = pool.backward(&Tensor::from_vec(vec![1, 1], vec![4.0]));
        assert_eq!(gx.data(), &[1.0, 1.0, 1.0, 1.0]);
    }
}

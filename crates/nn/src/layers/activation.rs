//! Element-wise activation layers: ReLU, tanh, sigmoid.

use crate::layers::{Layer, LayerKind};
use crate::tensor::Tensor;

macro_rules! activation_layer {
    ($(#[$doc:meta])* $name:ident, $label:expr, $fwd:expr, $bwd:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Default)]
        pub struct $name {
            cache_y: Option<Tensor>,
        }

        impl $name {
            /// Creates the activation layer.
            pub fn new() -> Self {
                Self { cache_y: None }
            }
        }

        impl Layer for $name {
            fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
                let y = input.map($fwd);
                if train {
                    self.cache_y = Some(y.clone());
                }
                y
            }

            fn backward(&mut self, grad_out: &Tensor) -> Tensor {
                let y = self
                    .cache_y
                    .take()
                    .expect(concat!($label, "::backward without training forward"));
                let mut gx = grad_out.clone();
                let bwd: fn(f32) -> f32 = $bwd;
                for (g, &yv) in gx.data_mut().iter_mut().zip(y.data().iter()) {
                    *g *= bwd(yv);
                }
                gx
            }

            fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
                input_shape.to_vec()
            }

            fn flops_per_sample(&self, input_shape: &[usize]) -> u64 {
                input_shape.iter().product::<usize>() as u64
            }

            fn kind(&self) -> LayerKind {
                LayerKind::Other
            }

            fn name(&self) -> String {
                $label.to_string()
            }
        }
    };
}

activation_layer!(
    /// Rectified linear unit, `y = max(0, x)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use autofl_nn::layers::{Layer, Relu};
    /// use autofl_nn::tensor::Tensor;
    ///
    /// let mut relu = Relu::new();
    /// let y = relu.forward(&Tensor::from_vec(vec![2], vec![-1.0, 2.0]), false);
    /// assert_eq!(y.data(), &[0.0, 2.0]);
    /// ```
    Relu,
    "relu",
    |x| if x > 0.0 { x } else { 0.0 },
    |y| if y > 0.0 { 1.0 } else { 0.0 }
);

activation_layer!(
    /// Hyperbolic tangent activation.
    Tanh,
    "tanh",
    |x| x.tanh(),
    |y| 1.0 - y * y
);

activation_layer!(
    /// Logistic sigmoid activation.
    Sigmoid,
    "sigmoid",
    |x| 1.0 / (1.0 + (-x).exp()),
    |y| y * (1.0 - y)
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_layer_gradients;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn relu_zeroes_negatives() {
        let mut relu = Relu::new();
        let y = relu.forward(&Tensor::from_vec(vec![3], vec![-2.0, 0.0, 5.0]), false);
        assert_eq!(y.data(), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn tanh_gradient_check() {
        let mut rng = SmallRng::seed_from_u64(11);
        check_layer_gradients(Tanh::new(), &[2, 5], 1e-2, &mut rng);
    }

    #[test]
    fn sigmoid_gradient_check() {
        let mut rng = SmallRng::seed_from_u64(12);
        check_layer_gradients(Sigmoid::new(), &[2, 5], 1e-2, &mut rng);
    }

    #[test]
    fn sigmoid_range_is_unit_interval() {
        let mut s = Sigmoid::new();
        let y = s.forward(&Tensor::from_vec(vec![2], vec![-100.0, 100.0]), false);
        assert!(y.data()[0] >= 0.0 && y.data()[0] < 0.01);
        assert!(y.data()[1] > 0.99 && y.data()[1] <= 1.0);
    }
}

//! Token embedding lookup.

use crate::init::uniform;
use crate::layers::{Layer, LayerKind};
use crate::tensor::Tensor;
use rand::Rng;

/// Embedding lookup for token sequences.
///
/// The input is a `[batch, seq]` tensor whose `f32` values are integer token
/// ids; the output is `[batch, seq, dim]`. The backward pass accumulates
/// gradients into the looked-up rows and returns an all-zero input gradient
/// (token ids are not differentiable).
#[derive(Debug, Clone)]
pub struct Embedding {
    vocab: usize,
    dim: usize,
    w: Tensor,
    gw: Tensor,
    cache_ids: Option<Vec<usize>>,
}

impl Embedding {
    /// Creates an embedding table of `vocab` rows of width `dim`.
    pub fn new(vocab: usize, dim: usize, rng: &mut impl Rng) -> Self {
        Embedding {
            vocab,
            dim,
            w: uniform(vec![vocab, dim], 0.1, rng),
            gw: Tensor::zeros(vec![vocab, dim]),
            cache_ids: None,
        }
    }
}

impl Layer for Embedding {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 2, "embedding input must be [batch, seq]");
        let (batch, seq) = (s[0], s[1]);
        let ids: Vec<usize> = input
            .data()
            .iter()
            .map(|&x| {
                let id = x as usize;
                assert!(
                    id < self.vocab,
                    "token id {} out of vocab {}",
                    id,
                    self.vocab
                );
                id
            })
            .collect();
        let mut out = vec![0.0f32; batch * seq * self.dim];
        for (pos, &id) in ids.iter().enumerate() {
            out[pos * self.dim..(pos + 1) * self.dim]
                .copy_from_slice(&self.w.data()[id * self.dim..(id + 1) * self.dim]);
        }
        if train {
            self.cache_ids = Some(ids);
        }
        Tensor::from_vec(vec![batch, seq, self.dim], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let ids = self
            .cache_ids
            .take()
            .expect("Embedding::backward without training forward");
        for (pos, &id) in ids.iter().enumerate() {
            let src = &grad_out.data()[pos * self.dim..(pos + 1) * self.dim];
            let dst = &mut self.gw.data_mut()[id * self.dim..(id + 1) * self.dim];
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += s;
            }
        }
        // Token ids carry no gradient.
        Tensor::zeros(vec![grad_out.shape()[0], ids.len() / grad_out.shape()[0]])
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.w, &mut self.gw);
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape[0], self.dim]
    }

    fn flops_per_sample(&self, _input_shape: &[usize]) -> u64 {
        0 // Pure lookup.
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Other
    }

    fn name(&self) -> String {
        format!("embedding({}x{})", self.vocab, self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_returns_rows() {
        let mut rng = SmallRng::seed_from_u64(31);
        let mut emb = Embedding::new(5, 3, &mut rng);
        let x = Tensor::from_vec(vec![1, 2], vec![2.0, 4.0]);
        let y = emb.forward(&x, false);
        assert_eq!(y.shape(), &[1, 2, 3]);
        assert_eq!(&y.data()[0..3], &emb.w.data()[6..9]);
        assert_eq!(&y.data()[3..6], &emb.w.data()[12..15]);
    }

    #[test]
    fn backward_accumulates_into_rows() {
        let mut rng = SmallRng::seed_from_u64(32);
        let mut emb = Embedding::new(4, 2, &mut rng);
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]);
        let _ = emb.forward(&x, true);
        let g = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let _ = emb.backward(&g);
        assert_eq!(&emb.gw.data()[2..4], &[4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn rejects_out_of_vocab_ids() {
        let mut rng = SmallRng::seed_from_u64(33);
        let mut emb = Embedding::new(3, 2, &mut rng);
        let x = Tensor::from_vec(vec![1, 1], vec![7.0]);
        let _ = emb.forward(&x, false);
    }
}

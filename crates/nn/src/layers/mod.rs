//! Trainable layers with hand-written forward/backward passes.
//!
//! All layers implement [`Layer`], which couples the forward pass, the
//! backward pass (accumulating parameter gradients), a visitor over
//! `(parameter, gradient)` pairs used by the optimizer and by federated
//! aggregation, and per-sample FLOP accounting used by the device energy
//! model in `autofl-device`.

mod activation;
mod conv;
mod dense;
mod dwconv;
mod embedding;
mod flatten;
mod lstm;
mod pool;

pub use activation::{Relu, Sigmoid, Tanh};
pub use conv::Conv2d;
pub use dense::Dense;
pub use dwconv::DepthwiseConv2d;
pub use embedding::Embedding;
pub use flatten::Flatten;
pub use lstm::Lstm;
pub use pool::{GlobalAvgPool, MaxPool2d};

use crate::tensor::Tensor;

/// Coarse layer category used by the AutoFL reinforcement-learning state
/// (Table 1 of the paper distinguishes CONV, FC and RC layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Convolutional layers (regular and depthwise).
    Conv,
    /// Fully-connected (dense) layers.
    FullyConnected,
    /// Recurrent layers (LSTM).
    Recurrent,
    /// Everything else: activations, pooling, reshaping, embeddings.
    Other,
}

/// A differentiable layer.
///
/// The contract between `forward` and `backward` is stateful: `backward`
/// may only be called after `forward` was called with `train == true`, and
/// consumes the caches that call created. Parameter gradients accumulate
/// across `backward` calls until [`Layer::zero_grad`].
pub trait Layer {
    /// Runs the forward pass. When `train` is `true`, caches whatever the
    /// backward pass will need.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Propagates `grad_out` (gradient w.r.t. this layer's output) backward,
    /// accumulating parameter gradients and returning the gradient w.r.t.
    /// the layer input.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-mode `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every `(parameter, gradient)` pair.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        let _ = f;
    }

    /// Clears accumulated parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| {
            for x in g.data_mut() {
                *x = 0.0;
            }
        });
    }

    /// Number of trainable scalars in the layer.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }

    /// Output shape for a single sample with the given input shape
    /// (shapes exclude the batch dimension).
    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize>;

    /// Forward-pass floating-point operations for a single sample with the
    /// given input shape (excluding the batch dimension).
    fn flops_per_sample(&self, input_shape: &[usize]) -> u64;

    /// The coarse category of the layer.
    fn kind(&self) -> LayerKind;

    /// A short human-readable name, e.g. `"conv2d(8->16,3x3)"`.
    fn name(&self) -> String;
}

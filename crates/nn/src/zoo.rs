//! The three FL workloads evaluated in the paper, plus a tiny test model.
//!
//! Each [`Workload`] carries two views:
//!
//! * **Trainable model** ([`Workload::build_trainable`]) — a scaled-down but
//!   architecturally faithful network that this crate actually trains to
//!   produce real convergence dynamics.
//! * **Reference statistics** (`reference_*`) — layer counts, FLOPs and
//!   gradient sizes of the *paper-scale* models (McMahan's FedAvg CNN, the
//!   2-layer 256-unit Shakespeare LSTM, MobileNetV1). These drive the
//!   device latency/energy models so that simulated times and energies have
//!   the paper's magnitudes, independent of the scaled-down trainable model.

use crate::layers::{
    Conv2d, Dense, DepthwiseConv2d, Embedding, Flatten, GlobalAvgPool, Lstm, MaxPool2d, Relu,
};
use crate::model::{LayerCounts, Sequential};
use rand::{rngs::SmallRng, SeedableRng};

/// Character vocabulary size used by the synthetic Shakespeare workload.
pub const SHAKESPEARE_VOCAB: usize = 65;
/// Sequence length used by the synthetic Shakespeare workload.
pub const SHAKESPEARE_SEQ_LEN: usize = 20;

/// One of the paper's three FL use cases (Section 5.2), or a tiny test
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Workload {
    /// CNN trained on MNIST-like 10-class images.
    CnnMnist,
    /// LSTM trained on Shakespeare-like next-character prediction.
    LstmShakespeare,
    /// MobileNet trained on ImageNet-like images.
    MobileNetImageNet,
    /// A minimal CNN for fast unit/integration tests (not in the paper).
    TinyTest,
}

impl Workload {
    /// The three paper workloads, in the order the paper reports them.
    pub fn paper_workloads() -> [Workload; 3] {
        [
            Workload::CnnMnist,
            Workload::LstmShakespeare,
            Workload::MobileNetImageNet,
        ]
    }

    /// Short display name matching the paper's labels.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::CnnMnist => "CNN-MNIST",
            Workload::LstmShakespeare => "LSTM-Shakespeare",
            Workload::MobileNetImageNet => "MobileNet-ImageNet",
            Workload::TinyTest => "Tiny-Test",
        }
    }

    /// Number of output classes of the trainable model.
    pub fn num_classes(&self) -> usize {
        match self {
            Workload::CnnMnist => 10,
            Workload::LstmShakespeare => SHAKESPEARE_VOCAB,
            Workload::MobileNetImageNet => 10,
            Workload::TinyTest => 4,
        }
    }

    /// Per-sample input shape of the trainable model.
    pub fn input_shape(&self) -> Vec<usize> {
        match self {
            Workload::CnnMnist => vec![1, 14, 14],
            Workload::LstmShakespeare => vec![SHAKESPEARE_SEQ_LEN],
            Workload::MobileNetImageNet => vec![3, 16, 16],
            Workload::TinyTest => vec![1, 8, 8],
        }
    }

    /// Whether inputs are token-id sequences (true) or dense images (false).
    pub fn is_sequence(&self) -> bool {
        matches!(self, Workload::LstmShakespeare)
    }

    /// Builds the scaled-down trainable model, deterministically from `seed`.
    pub fn build_trainable(&self, seed: u64) -> Sequential {
        let mut rng = SmallRng::seed_from_u64(seed);
        match self {
            Workload::CnnMnist => {
                let mut m = Sequential::new(self.input_shape());
                m.push(Conv2d::new(1, 6, 3, 1, 1, &mut rng));
                m.push(Relu::new());
                m.push(MaxPool2d::new(2));
                m.push(Conv2d::new(6, 12, 3, 1, 1, &mut rng));
                m.push(Relu::new());
                m.push(MaxPool2d::new(2));
                m.push(Flatten::new());
                m.push(Dense::new(12 * 3 * 3, 32, &mut rng));
                m.push(Relu::new());
                m.push(Dense::new(32, 10, &mut rng));
                m
            }
            Workload::LstmShakespeare => {
                let mut m = Sequential::new(self.input_shape());
                m.push(Embedding::new(SHAKESPEARE_VOCAB, 8, &mut rng));
                m.push(Lstm::new(8, 32, &mut rng));
                m.push(Dense::new(32, SHAKESPEARE_VOCAB, &mut rng));
                m
            }
            Workload::MobileNetImageNet => {
                let mut m = Sequential::new(self.input_shape());
                m.push(Conv2d::new(3, 8, 3, 1, 1, &mut rng));
                m.push(Relu::new());
                // Two depthwise-separable blocks, MobileNet style.
                m.push(DepthwiseConv2d::new(8, 3, 1, 1, &mut rng));
                m.push(Conv2d::new(8, 16, 1, 1, 0, &mut rng));
                m.push(Relu::new());
                m.push(MaxPool2d::new(2));
                m.push(DepthwiseConv2d::new(16, 3, 1, 1, &mut rng));
                m.push(Conv2d::new(16, 32, 1, 1, 0, &mut rng));
                m.push(Relu::new());
                m.push(MaxPool2d::new(2));
                m.push(GlobalAvgPool::new());
                m.push(Dense::new(32, 10, &mut rng));
                m
            }
            Workload::TinyTest => {
                let mut m = Sequential::new(self.input_shape());
                m.push(Conv2d::new(1, 4, 3, 1, 1, &mut rng));
                m.push(Relu::new());
                m.push(MaxPool2d::new(2));
                m.push(Flatten::new());
                m.push(Dense::new(4 * 4 * 4, 4, &mut rng));
                m
            }
        }
    }

    /// CONV/FC/RC layer counts of the *paper-scale* model, used by the
    /// AutoFL state features (Table 1).
    pub fn reference_layer_counts(&self) -> LayerCounts {
        match self {
            // McMahan's FedAvg CNN: 2 conv + 2 fc.
            Workload::CnnMnist => LayerCounts {
                conv: 2,
                fc: 2,
                rc: 0,
            },
            // 2-layer LSTM + output projection.
            Workload::LstmShakespeare => LayerCounts {
                conv: 0,
                fc: 1,
                rc: 2,
            },
            // MobileNetV1: 13 depthwise + 13 pointwise + 1 stem = 27 conv.
            Workload::MobileNetImageNet => LayerCounts {
                conv: 27,
                fc: 1,
                rc: 0,
            },
            Workload::TinyTest => LayerCounts {
                conv: 1,
                fc: 1,
                rc: 0,
            },
        }
    }

    /// Forward FLOPs per sample of the paper-scale model.
    pub fn reference_flops_per_sample(&self) -> u64 {
        match self {
            // conv1 (5x5x32 @28x28) + conv2 (5x5x32x64 @14x14) + fc layers.
            Workload::CnnMnist => 24_600_000,
            // 80 steps x 2 LSTM layers of 256 units.
            Workload::LstmShakespeare => 127_000_000,
            // MobileNetV1 @224: 569M MACs.
            Workload::MobileNetImageNet => 1_138_000_000,
            Workload::TinyTest => 1_000_000,
        }
    }

    /// Training FLOPs per sample (3x forward).
    pub fn reference_training_flops_per_sample(&self) -> u64 {
        3 * self.reference_flops_per_sample()
    }

    /// Size in bytes of one gradient/model upload of the paper-scale model
    /// (f32 parameters).
    pub fn reference_model_bytes(&self) -> u64 {
        match self {
            Workload::CnnMnist => 1_663_370 * 4,
            Workload::LstmShakespeare => 819_462 * 4,
            Workload::MobileNetImageNet => 4_200_000 * 4,
            Workload::TinyTest => 1_000 * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn trainable_models_have_consistent_shapes() {
        for w in [
            Workload::CnnMnist,
            Workload::MobileNetImageNet,
            Workload::TinyTest,
        ] {
            let mut m = w.build_trainable(1);
            let mut shape = vec![2];
            shape.extend(w.input_shape());
            let y = m.forward(&Tensor::zeros(shape), false);
            assert_eq!(
                y.shape(),
                &[2, w.num_classes()],
                "bad output shape for {}",
                w.name()
            );
        }
    }

    #[test]
    fn lstm_workload_consumes_token_ids() {
        let w = Workload::LstmShakespeare;
        let mut m = w.build_trainable(2);
        let x = Tensor::from_vec(
            vec![2, SHAKESPEARE_SEQ_LEN],
            vec![3.0; 2 * SHAKESPEARE_SEQ_LEN],
        );
        let y = m.forward(&x, false);
        assert_eq!(y.shape(), &[2, SHAKESPEARE_VOCAB]);
    }

    #[test]
    fn builds_are_deterministic_per_seed() {
        let mut a = Workload::CnnMnist.build_trainable(9);
        let mut b = Workload::CnnMnist.build_trainable(9);
        assert_eq!(a.param_vector(), b.param_vector());
        let mut c = Workload::CnnMnist.build_trainable(10);
        assert_ne!(a.param_vector(), c.param_vector());
    }

    #[test]
    fn reference_counts_match_paper_models() {
        let c = Workload::MobileNetImageNet.reference_layer_counts();
        assert_eq!(c.conv, 27);
        let l = Workload::LstmShakespeare.reference_layer_counts();
        assert_eq!(l.rc, 2);
    }

    #[test]
    fn reference_flops_ordering_matches_paper() {
        // MobileNet > LSTM > CNN in per-sample compute.
        let f = |w: Workload| w.reference_flops_per_sample();
        assert!(f(Workload::MobileNetImageNet) > f(Workload::LstmShakespeare));
        assert!(f(Workload::LstmShakespeare) > f(Workload::CnnMnist));
    }

    #[test]
    fn trainable_layer_counts_have_expected_kinds() {
        let c = Workload::CnnMnist.build_trainable(3).layer_counts();
        assert_eq!((c.conv, c.fc, c.rc), (2, 2, 0));
        let l = Workload::LstmShakespeare.build_trainable(3).layer_counts();
        assert_eq!((l.conv, l.fc, l.rc), (0, 1, 1));
    }
}

//! Stochastic gradient descent.

use crate::model::Sequential;

/// Plain SGD with optional momentum and global gradient-norm clipping.
///
/// The paper's FedAvg baseline trains each client with mini-batch SGD; this
/// is that optimizer.
///
/// # Examples
///
/// ```
/// use autofl_nn::optim::Sgd;
///
/// let sgd = Sgd::new(0.05).with_momentum(0.9).with_clip_norm(5.0);
/// assert_eq!(sgd.lr(), 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    clip_norm: Option<f32>,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            clip_norm: None,
            velocity: Vec::new(),
        }
    }

    /// Enables classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Enables global L2 gradient-norm clipping (useful for the LSTM).
    pub fn with_clip_norm(mut self, max_norm: f32) -> Self {
        self.clip_norm = Some(max_norm);
        self
    }

    /// The learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Applies one SGD step to the model's parameters using its accumulated
    /// gradients, then leaves the gradients untouched (call
    /// [`Sequential::zero_grad`] between batches).
    pub fn step(&mut self, model: &mut Sequential) {
        let scale = match self.clip_norm {
            Some(max_norm) => {
                let mut sq = 0.0f64;
                model.visit_params(&mut |_, g| {
                    for &x in g.data() {
                        sq += (x as f64) * (x as f64);
                    }
                });
                let norm = sq.sqrt() as f32;
                if norm > max_norm {
                    max_norm / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        let lr = self.lr;
        let momentum = self.momentum;
        if momentum == 0.0 {
            model.visit_params(&mut |p, g| {
                for (pv, gv) in p.data_mut().iter_mut().zip(g.data().iter()) {
                    *pv -= lr * scale * gv;
                }
            });
            return;
        }
        // Lazily size velocity buffers on first use.
        if self.velocity.is_empty() {
            model.visit_params(&mut |p, _| self.velocity.push(vec![0.0; p.len()]));
        }
        let velocity = &mut self.velocity;
        let mut idx = 0;
        model.visit_params(&mut |p, g| {
            let v = &mut velocity[idx];
            idx += 1;
            for ((pv, gv), vv) in p
                .data_mut()
                .iter_mut()
                .zip(g.data().iter())
                .zip(v.iter_mut())
            {
                *vv = momentum * *vv + lr * scale * gv;
                *pv -= *vv;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use crate::model::Sequential;
    use crate::tensor::Tensor;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn one_param_model() -> Sequential {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut m = Sequential::new(vec![1]);
        m.push(Dense::new(1, 1, &mut rng));
        m
    }

    #[test]
    fn step_moves_against_gradient() {
        let mut m = one_param_model();
        let before = m.param_vector();
        // Run a training forward/backward to populate gradients.
        let x = Tensor::from_vec(vec![1, 1], vec![1.0]);
        let y = m.forward(&x, true);
        let _ = m.backward(&Tensor::from_vec(y.shape().to_vec(), vec![1.0]));
        let mut sgd = Sgd::new(0.1);
        sgd.step(&mut m);
        let after = m.param_vector();
        // Gradient of (w*x + b) w.r.t. w is x = 1, w.r.t. b is 1.
        assert!((after[0] - (before[0] - 0.1)).abs() < 1e-6);
        assert!((after[1] - (before[1] - 0.1)).abs() < 1e-6);
    }

    #[test]
    fn clip_norm_bounds_the_update() {
        let mut m = one_param_model();
        let x = Tensor::from_vec(vec![1, 1], vec![100.0]);
        let y = m.forward(&x, true);
        let _ = m.backward(&Tensor::from_vec(y.shape().to_vec(), vec![1.0]));
        let before = m.param_vector();
        let mut sgd = Sgd::new(1.0).with_clip_norm(1.0);
        sgd.step(&mut m);
        let after = m.param_vector();
        let step: f32 = before
            .iter()
            .zip(after.iter())
            .map(|(b, a)| (b - a) * (b - a))
            .sum::<f32>()
            .sqrt();
        assert!(step <= 1.0 + 1e-4, "clipped step was {}", step);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut m = one_param_model();
        let x = Tensor::from_vec(vec![1, 1], vec![1.0]);
        let mut sgd = Sgd::new(0.1).with_momentum(0.9);
        let start = m.param_vector()[0];
        for _ in 0..2 {
            let y = m.forward(&x, true);
            m.zero_grad();
            let _ = m.backward(&Tensor::from_vec(y.shape().to_vec(), vec![1.0]));
            sgd.step(&mut m);
        }
        // Two steps with momentum: 0.1 + (0.1 + 0.09) = 0.29 total.
        let total = start - m.param_vector()[0];
        assert!((total - 0.29).abs() < 1e-5, "total movement {}", total);
    }
}

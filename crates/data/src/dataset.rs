//! In-memory labelled datasets.

use autofl_nn::tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled dataset of fixed-shape samples.
///
/// Samples are stored flattened; [`Dataset::batch`] materialises a batched
/// [`Tensor`] in the layout the `autofl-nn` layers expect.
#[derive(Debug, Clone)]
pub struct Dataset {
    xs: Vec<f32>,
    labels: Vec<usize>,
    sample_shape: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from flattened samples.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len()` is not `labels.len() * product(sample_shape)`,
    /// or any label is `>= num_classes`.
    pub fn new(
        xs: Vec<f32>,
        labels: Vec<usize>,
        sample_shape: Vec<usize>,
        num_classes: usize,
    ) -> Self {
        let per: usize = sample_shape.iter().product();
        assert_eq!(
            xs.len(),
            labels.len() * per,
            "sample buffer length mismatch"
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        Dataset {
            xs,
            labels,
            sample_shape,
            num_classes,
        }
    }

    /// Creates a dataset that stores only labels — no sample features.
    ///
    /// This is the storage mode behind surrogate-fidelity simulations:
    /// partitioning and every cohort-skew statistic depend only on the
    /// labels, so a million-device fleet does not need gigabytes of
    /// synthetic pixels it will never read. Calling [`Dataset::batch`] or
    /// [`Dataset::minibatches`] on a labels-only dataset panics.
    pub fn labels_only(labels: Vec<usize>, sample_shape: Vec<usize>, num_classes: usize) -> Self {
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        Dataset {
            xs: Vec::new(),
            labels,
            sample_shape,
            num_classes,
        }
    }

    /// Whether the dataset stores sample features (false for
    /// [`Dataset::labels_only`] stores).
    pub fn has_features(&self) -> bool {
        !self.xs.is_empty() || self.labels.is_empty()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Per-sample shape (no batch dimension).
    pub fn sample_shape(&self) -> &[usize] {
        &self.sample_shape
    }

    /// Number of label classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Builds a batched tensor + label vector from sample indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        assert!(
            self.has_features(),
            "labels-only dataset holds no sample features to batch"
        );
        let per: usize = self.sample_shape.iter().product();
        let mut buf = Vec::with_capacity(indices.len() * per);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            buf.extend_from_slice(&self.xs[i * per..(i + 1) * per]);
            labels.push(self.labels[i]);
        }
        let mut shape = vec![indices.len()];
        shape.extend_from_slice(&self.sample_shape);
        (Tensor::from_vec(shape, buf), labels)
    }

    /// Splits `indices` into shuffled mini-batches of at most `batch_size`.
    pub fn minibatches(
        &self,
        indices: &[usize],
        batch_size: usize,
        rng: &mut impl Rng,
    ) -> Vec<(Tensor, Vec<usize>)> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order = indices.to_vec();
        order.shuffle(rng);
        order
            .chunks(batch_size)
            .map(|chunk| self.batch(chunk))
            .collect()
    }

    /// Histogram of labels over a subset of samples.
    pub fn class_histogram(&self, indices: &[usize]) -> Vec<usize> {
        let mut h = vec![0usize; self.num_classes];
        for &i in indices {
            h[self.labels[i]] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        Dataset::new(
            (0..12).map(|v| v as f32).collect(),
            vec![0, 1, 2, 0],
            vec![3],
            3,
        )
    }

    #[test]
    fn batch_gathers_rows() {
        let d = toy();
        let (x, y) = d.batch(&[1, 3]);
        assert_eq!(x.shape(), &[2, 3]);
        assert_eq!(x.data(), &[3.0, 4.0, 5.0, 9.0, 10.0, 11.0]);
        assert_eq!(y, vec![1, 0]);
    }

    #[test]
    fn minibatches_cover_all_indices() {
        let d = toy();
        let mut rng = SmallRng::seed_from_u64(1);
        let batches = d.minibatches(&[0, 1, 2, 3], 3, &mut rng);
        assert_eq!(batches.len(), 2);
        let total: usize = batches.iter().map(|(_, y)| y.len()).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn class_histogram_counts() {
        let d = toy();
        assert_eq!(d.class_histogram(&[0, 1, 2, 3]), vec![2, 1, 1]);
        assert_eq!(d.class_histogram(&[1]), vec![0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let _ = Dataset::new(vec![0.0; 3], vec![5], vec![3], 3);
    }
}

//! Procedural dataset generators standing in for MNIST, Shakespeare and
//! ImageNet.
//!
//! The substitution rationale (see DESIGN.md): the reproduction needs
//! datasets whose *label structure* matches the originals — 10-class
//! images, 65-symbol character prediction, many-class images — so that IID
//! vs Dirichlet non-IID partitioning produces the paper's convergence
//! dynamics. Class-conditional generators with smooth per-class prototypes
//! plus noise give linearly-nontrivial but learnable tasks.

use crate::dataset::Dataset;
use autofl_nn::zoo::{Workload, SHAKESPEARE_SEQ_LEN, SHAKESPEARE_VOCAB};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates `n` samples of the given workload's input distribution
/// (sample stream 0).
///
/// Deterministic in `seed`. Labels are balanced across classes.
pub fn generate(workload: Workload, n: usize, seed: u64) -> Dataset {
    generate_stream(workload, n, seed, 0)
}

/// Generates `n` samples from an independent sample `stream` while keeping
/// the class structure (image prototypes / Markov chain) tied to `seed`.
///
/// Train and test sets must share `seed` but use different streams so they
/// are disjoint draws from the *same* underlying task.
pub fn generate_stream(workload: Workload, n: usize, seed: u64, stream: u64) -> Dataset {
    let sample_seed = stream_seed(seed, stream);
    match workload {
        Workload::LstmShakespeare => generate_chars(n, seed, sample_seed, true),
        _ => generate_images(workload, n, seed, sample_seed),
    }
}

/// Generates only the *labels* of [`generate`]'s samples — bit-identical
/// to `generate(workload, n, seed).labels()` — as a labels-only
/// [`Dataset`] holding no feature storage.
///
/// Surrogate-fidelity simulations run on partition statistics alone;
/// this entry point gives them the exact same label sequence (image
/// labels are balanced round-robin, character labels replay the Markov
/// chain) without synthesising a single pixel, which is what makes
/// million-device fleets fit in memory.
pub fn generate_labels(workload: Workload, n: usize, seed: u64) -> Dataset {
    generate_stream_labels(workload, n, seed, 0)
}

/// Labels-only counterpart of [`generate_stream`].
pub fn generate_stream_labels(workload: Workload, n: usize, seed: u64, stream: u64) -> Dataset {
    let sample_seed = stream_seed(seed, stream);
    match workload {
        Workload::LstmShakespeare => generate_chars(n, seed, sample_seed, false),
        _ => {
            let classes = workload.num_classes();
            Dataset::labels_only(
                (0..n).map(|i| i % classes).collect(),
                workload.input_shape(),
                classes,
            )
        }
    }
}

fn stream_seed(seed: u64, stream: u64) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(stream.wrapping_mul(0xd1b5_4a32_d192_ed03))
}

/// Class-conditional image generator for the CNN / MobileNet / tiny
/// workloads.
///
/// Each class has a smooth random prototype image; samples are the
/// prototype plus Gaussian pixel noise and a random ±1-pixel translation,
/// mimicking the intra-class variation of handwritten digits.
fn generate_images(workload: Workload, n: usize, seed: u64, sample_seed: u64) -> Dataset {
    let shape = workload.input_shape();
    let classes = workload.num_classes();
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    let per = c * h * w;
    // Prototype RNG is keyed on `seed` only, so every stream (train, test)
    // of the same task shares class prototypes.
    let mut proto_rng = SmallRng::seed_from_u64(seed ^ 0x5eed_0fc1_a55e_50aa);
    let prototypes: Vec<Vec<f32>> = (0..classes)
        .map(|_| smooth_pattern(c, h, w, &mut proto_rng))
        .collect();

    let mut rng = SmallRng::seed_from_u64(sample_seed);
    let mut xs = Vec::with_capacity(n * per);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % classes;
        let (dy, dx) = (rng.gen_range(-1i32..=1), rng.gen_range(-1i32..=1));
        for ch in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let sy = (y as i32 + dy).clamp(0, h as i32 - 1) as usize;
                    let sx = (x as i32 + dx).clamp(0, w as i32 - 1) as usize;
                    let base = prototypes[label][(ch * h + sy) * w + sx];
                    xs.push(base + rng.gen_range(-0.25..0.25));
                }
            }
        }
        labels.push(label);
    }
    Dataset::new(xs, labels, shape, classes)
}

/// A smooth random pattern in `[-1, 1]`: a sum of a few random 2-D cosine
/// waves per channel, which keeps nearby pixels correlated (like strokes).
fn smooth_pattern(c: usize, h: usize, w: usize, rng: &mut impl Rng) -> Vec<f32> {
    let mut img = vec![0.0f32; c * h * w];
    for ch in 0..c {
        let waves: Vec<(f32, f32, f32, f32)> = (0..4)
            .map(|_| {
                (
                    rng.gen_range(0.5..3.0),
                    rng.gen_range(0.5..3.0),
                    rng.gen_range(0.0..std::f32::consts::TAU),
                    rng.gen_range(0.4..1.0),
                )
            })
            .collect();
        for y in 0..h {
            for x in 0..w {
                let mut v = 0.0;
                for &(fy, fx, phase, amp) in &waves {
                    v += amp
                        * ((fy * y as f32 / h as f32 + fx * x as f32 / w as f32)
                            * std::f32::consts::TAU
                            + phase)
                            .cos();
                }
                img[(ch * h + y) * w + x] = (v / 2.0).clamp(-1.0, 1.0);
            }
        }
    }
    img
}

/// Character-sequence generator standing in for Shakespeare.
///
/// Text is drawn from a seeded order-1 Markov chain over
/// [`SHAKESPEARE_VOCAB`] symbols whose transition rows are sparse (each
/// symbol has a handful of likely successors), which is what makes
/// next-character prediction learnable. The *label* of a sample is the
/// character following the sequence, so label-based non-IID partitioning
/// maps onto "different devices see different character distributions" —
/// the Shakespeare-by-speaker effect.
///
/// `want_xs = false` replays the identical chain (same RNG draws, same
/// labels) without storing the token sequences, producing a labels-only
/// dataset.
fn generate_chars(n: usize, seed: u64, sample_seed: u64, want_xs: bool) -> Dataset {
    let vocab = SHAKESPEARE_VOCAB;
    let seq = SHAKESPEARE_SEQ_LEN;
    // The Markov chain (the "language") is keyed on `seed` only.
    let mut chain_rng = SmallRng::seed_from_u64(seed ^ 0xC0FFEE);
    // Sparse stochastic transition matrix.
    let mut trans = vec![vec![0.0f32; vocab]; vocab];
    for row in trans.iter_mut() {
        let successors = 4;
        let mut weights = vec![0.01f32; vocab];
        for _ in 0..successors {
            weights[chain_rng.gen_range(0..vocab)] += 1.0;
        }
        let z: f32 = weights.iter().sum();
        for w in weights.iter_mut() {
            *w /= z;
        }
        *row = weights;
    }

    let mut rng = SmallRng::seed_from_u64(sample_seed);
    let mut xs = Vec::with_capacity(if want_xs { n * seq } else { 0 });
    let mut labels = Vec::with_capacity(n);
    let mut state = rng.gen_range(0..vocab);
    let sample_next = |state: usize, rng: &mut SmallRng, trans: &Vec<Vec<f32>>| -> usize {
        let r: f32 = rng.gen();
        let mut acc = 0.0;
        for (j, &p) in trans[state].iter().enumerate() {
            acc += p;
            if r <= acc {
                return j;
            }
        }
        vocab - 1
    };
    for _ in 0..n {
        for _ in 0..seq {
            if want_xs {
                xs.push(state as f32);
            }
            state = sample_next(state, &mut rng, &trans);
        }
        labels.push(state); // the next character is the label
        state = sample_next(state, &mut rng, &trans);
    }
    if want_xs {
        Dataset::new(xs, labels, vec![seq], vocab)
    } else {
        Dataset::labels_only(labels, vec![seq], vocab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_datasets_have_expected_shape_and_balance() {
        let d = generate(Workload::CnnMnist, 100, 3);
        assert_eq!(d.len(), 100);
        assert_eq!(d.sample_shape(), &[1, 14, 14]);
        let h = d.class_histogram(&(0..100).collect::<Vec<_>>());
        assert!(h.iter().all(|&c| c == 10), "histogram {:?}", h);
    }

    #[test]
    fn char_dataset_tokens_in_vocab() {
        let d = generate(Workload::LstmShakespeare, 50, 4);
        assert_eq!(d.sample_shape(), &[SHAKESPEARE_SEQ_LEN]);
        let (x, y) = d.batch(&(0..50).collect::<Vec<_>>());
        assert!(x
            .data()
            .iter()
            .all(|&t| t >= 0.0 && (t as usize) < SHAKESPEARE_VOCAB));
        assert!(y.iter().all(|&l| l < SHAKESPEARE_VOCAB));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(Workload::TinyTest, 20, 7);
        let b = generate(Workload::TinyTest, 20, 7);
        let (xa, _) = a.batch(&[0, 5]);
        let (xb, _) = b.batch(&[0, 5]);
        assert_eq!(xa.data(), xb.data());
    }

    #[test]
    fn different_classes_have_different_prototypes() {
        let d = generate(Workload::TinyTest, 8, 9);
        let (x0, _) = d.batch(&[0]);
        let (x1, _) = d.batch(&[1]);
        let dist: f32 = x0
            .data()
            .iter()
            .zip(x1.data().iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(dist > 1.0, "classes look identical, L1 = {}", dist);
    }
}

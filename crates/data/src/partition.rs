//! Distributing training samples across devices: IID and Dirichlet non-IID.
//!
//! Section 5.2 of the paper defines four distribution scenarios: *Ideal
//! IID* (every device sees every class) and *Non-IID (M%)* where M% of the
//! devices receive data allocated per class by a Dirichlet distribution
//! with concentration 0.1, while the remaining devices hold IID samples.

use crate::dataset::Dataset;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Gamma};
use serde::{Deserialize, Serialize};

/// The paper's Dirichlet concentration parameter for non-IID devices.
pub const PAPER_DIRICHLET_ALPHA: f64 = 0.1;

/// How training data is spread across the device fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DataDistribution {
    /// All classes evenly distributed to every device.
    IidIdeal,
    /// `fraction_non_iid` of the devices receive Dirichlet-concentrated
    /// data (per-class proportions drawn from `Dir(alpha)`); the rest are
    /// IID.
    NonIid {
        /// Fraction of devices with non-IID data, in `[0, 1]`.
        fraction_non_iid: f64,
        /// Dirichlet concentration; the paper uses 0.1.
        alpha: f64,
    },
}

impl DataDistribution {
    /// The paper's `Non-IID (M%)` scenario with the default α = 0.1.
    pub fn non_iid_percent(percent: u32) -> Self {
        DataDistribution::NonIid {
            fraction_non_iid: percent as f64 / 100.0,
            alpha: PAPER_DIRICHLET_ALPHA,
        }
    }

    /// Display label matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            DataDistribution::IidIdeal => "Ideal IID".to_string(),
            DataDistribution::NonIid {
                fraction_non_iid, ..
            } => format!("Non-IID ({:.0}%)", fraction_non_iid * 100.0),
        }
    }
}

/// The assignment of training-sample indices to devices.
///
/// Stored flattened (CSR-style offsets into one index array, one
/// row-major class-count matrix) rather than as nested `Vec`s: at a
/// million devices the nested layout costs a million separate heap
/// allocations and pointer-chasing on every cohort-statistics walk,
/// while the flat layout is two contiguous arrays.
#[derive(Debug, Clone)]
pub struct Partition {
    /// `offsets[d]..offsets[d + 1]` is device `d`'s slice of `indices`.
    offsets: Vec<usize>,
    /// Flattened per-device training-sample indices.
    indices: Vec<usize>,
    non_iid_devices: Vec<bool>,
    num_classes: usize,
    /// Row-major `num_devices × num_classes` label histogram.
    counts: Vec<usize>,
}

impl Partition {
    /// Splits `dataset` across `num_devices` devices.
    ///
    /// Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_devices == 0` or the non-IID fraction is outside
    /// `[0, 1]`.
    pub fn new(
        dataset: &Dataset,
        num_devices: usize,
        distribution: DataDistribution,
        seed: u64,
    ) -> Self {
        assert!(num_devices > 0, "need at least one device");
        let mut rng = SmallRng::seed_from_u64(seed);
        let classes = dataset.num_classes();

        // Group sample indices by class, shuffled.
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); classes];
        for (i, &label) in dataset.labels().iter().enumerate() {
            by_class[label].push(i);
        }
        for c in by_class.iter_mut() {
            c.shuffle(&mut rng);
        }

        // Decide which devices are non-IID.
        let (fraction, alpha) = match distribution {
            DataDistribution::IidIdeal => (0.0, PAPER_DIRICHLET_ALPHA),
            DataDistribution::NonIid {
                fraction_non_iid,
                alpha,
            } => {
                assert!(
                    (0.0..=1.0).contains(&fraction_non_iid),
                    "non-IID fraction must be in [0, 1]"
                );
                (fraction_non_iid, alpha)
            }
        };
        let n_non_iid = (num_devices as f64 * fraction).round() as usize;
        let mut order: Vec<usize> = (0..num_devices).collect();
        order.shuffle(&mut rng);
        let mut non_iid_devices = vec![false; num_devices];
        for &d in order.iter().take(n_non_iid) {
            non_iid_devices[d] = true;
        }
        let iid_devices: Vec<usize> = (0..num_devices).filter(|&d| !non_iid_devices[d]).collect();
        let noniid_devices: Vec<usize> = (0..num_devices).filter(|&d| non_iid_devices[d]).collect();

        // Every device receives the same number of samples; what differs is
        // the *label mix*. IID devices draw their quota stratified across
        // classes; each non-IID device draws its quota according to its own
        // Dirichlet(α) class distribution (the paper's "a proportion of the
        // samples of each data class is distributed following Dirichlet
        // distribution").
        let total = dataset.len();
        let quota = total / num_devices;
        let mut per_device: Vec<Vec<usize>> = vec![Vec::new(); num_devices];
        let mut cursors = vec![0usize; classes];

        // IID devices first: round-robin over classes.
        for &device in &iid_devices {
            let mut class = device % classes.max(1);
            while per_device[device].len() < quota {
                let mut scanned = 0;
                while cursors[class] >= by_class[class].len() && scanned < classes {
                    class = (class + 1) % classes;
                    scanned += 1;
                }
                if cursors[class] >= by_class[class].len() {
                    break; // everything exhausted
                }
                per_device[device].push(by_class[class][cursors[class]]);
                cursors[class] += 1;
                class = (class + 1) % classes;
            }
        }
        // Non-IID devices: per-device Dirichlet class mix over what's left.
        for &device in &noniid_devices {
            let props = dirichlet(classes, alpha, &mut rng);
            while per_device[device].len() < quota {
                // Sample a class, falling back to the fullest remaining
                // pool when the drawn class is exhausted.
                let draw: f64 = rng.gen();
                let mut acc = 0.0;
                let mut class = classes - 1;
                for (c, &p) in props.iter().enumerate() {
                    acc += p;
                    if draw <= acc {
                        class = c;
                        break;
                    }
                }
                if cursors[class] >= by_class[class].len() {
                    match (0..classes)
                        .filter(|&c| cursors[c] < by_class[c].len())
                        .max_by_key(|&c| by_class[c].len() - cursors[c])
                    {
                        Some(c) => class = c,
                        None => break,
                    }
                }
                per_device[device].push(by_class[class][cursors[class]]);
                cursors[class] += 1;
            }
        }
        // Distribute any remainder (from integer division) round-robin.
        let mut leftovers: Vec<usize> = Vec::new();
        for (c, pool) in by_class.iter().enumerate() {
            leftovers.extend_from_slice(&pool[cursors[c]..]);
        }
        for (j, sample) in leftovers.into_iter().enumerate() {
            per_device[j % num_devices].push(sample);
        }

        // Flatten into the CSR layout: one offsets array, one index
        // array, one row-major histogram matrix.
        let mut offsets = Vec::with_capacity(num_devices + 1);
        let mut indices = Vec::with_capacity(total);
        let mut counts = Vec::with_capacity(num_devices * classes);
        offsets.push(0);
        for idx in &per_device {
            indices.extend_from_slice(idx);
            offsets.push(indices.len());
            counts.extend_from_slice(&dataset.class_histogram(idx));
        }
        Partition {
            offsets,
            indices,
            non_iid_devices,
            num_classes: classes,
            counts,
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Training-sample indices owned by `device`.
    pub fn device_indices(&self, device: usize) -> &[usize] {
        &self.indices[self.offsets[device]..self.offsets[device + 1]]
    }

    /// Number of training samples owned by `device` (no slice
    /// materialisation — the count the round engine reads per participant).
    pub fn device_sample_count(&self, device: usize) -> usize {
        self.offsets[device + 1] - self.offsets[device]
    }

    /// Whether `device` was assigned Dirichlet-concentrated data.
    pub fn is_non_iid(&self, device: usize) -> bool {
        self.non_iid_devices[device]
    }

    /// Per-class sample counts held by `device`.
    pub fn class_counts(&self, device: usize) -> &[usize] {
        let stride = self.num_classes.max(1);
        &self.counts[device * stride..(device + 1) * stride]
    }

    /// Number of classes *meaningfully represented* on `device` — the
    /// paper's `S_Data` state feature. A class counts as present when the
    /// device holds at least 10% of an even per-class share; trace
    /// allocations (a couple of stray samples of a class) do not make a
    /// device's data representative of that class.
    pub fn num_classes_present(&self, device: usize) -> usize {
        let counts = self.class_counts(device);
        let total: usize = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let threshold = ((total as f64 / self.num_classes as f64) * 0.1).ceil() as usize;
        counts.iter().filter(|&&c| c >= threshold.max(1)).count()
    }

    /// Total number of label classes in the dataset.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// L1 distance between one device's label distribution and the uniform
    /// global distribution, in `[0, 2]`. High values mean the device's
    /// local gradients pull the global model toward a few classes (client
    /// drift).
    pub fn device_divergence(&self, device: usize) -> f64 {
        let counts = self.class_counts(device);
        let total: usize = counts.iter().sum();
        if total == 0 {
            return 2.0;
        }
        let uniform = 1.0 / self.num_classes as f64;
        counts
            .iter()
            .map(|&k| (k as f64 / total as f64 - uniform).abs())
            .sum()
    }

    /// L1 distance between the label distribution of a selected cohort and
    /// the uniform global distribution, in `[0, 2]`. This is the
    /// "cohort skew" input of the surrogate accuracy engine.
    pub fn cohort_divergence(&self, devices: &[usize]) -> f64 {
        let mut counts = vec![0usize; self.num_classes];
        for &d in devices {
            for (c, &k) in self.class_counts(d).iter().enumerate() {
                counts[c] += k;
            }
        }
        let total: usize = counts.iter().sum();
        if total == 0 {
            return 2.0;
        }
        let uniform = 1.0 / self.num_classes as f64;
        counts
            .iter()
            .map(|&k| (k as f64 / total as f64 - uniform).abs())
            .sum()
    }

    /// Fraction of all classes covered by a selected cohort, in `[0, 1]`.
    pub fn cohort_class_coverage(&self, devices: &[usize]) -> f64 {
        let mut present = vec![false; self.num_classes];
        for &d in devices {
            for (c, &k) in self.class_counts(d).iter().enumerate() {
                if k > 0 {
                    present[c] = true;
                }
            }
        }
        present.iter().filter(|&&p| p).count() as f64 / self.num_classes as f64
    }
}

/// Samples a Dirichlet(alpha, ..., alpha) vector of length `n` via
/// normalised Gamma draws (the textbook construction), which is numerically
/// robust for the tiny α = 0.1 the paper uses.
fn dirichlet(n: usize, alpha: f64, rng: &mut impl Rng) -> Vec<f64> {
    let gamma = Gamma::new(alpha, 1.0).expect("alpha must be positive");
    let mut draws: Vec<f64> = (0..n).map(|_| gamma.sample(rng).max(1e-300)).collect();
    let z: f64 = draws.iter().sum();
    for d in draws.iter_mut() {
        *d /= z;
    }
    draws
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;
    use autofl_nn::zoo::Workload;

    fn dataset(n: usize) -> Dataset {
        synth::generate(Workload::TinyTest, n, 11)
    }

    #[test]
    fn iid_partition_covers_all_samples_once() {
        let d = dataset(120);
        let p = Partition::new(&d, 10, DataDistribution::IidIdeal, 1);
        let mut seen = vec![false; d.len()];
        for dev in 0..10 {
            for &i in p.device_indices(dev) {
                assert!(!seen[i], "sample {} assigned twice", i);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some samples unassigned");
    }

    #[test]
    fn iid_devices_see_every_class() {
        let d = dataset(160);
        let p = Partition::new(&d, 8, DataDistribution::IidIdeal, 2);
        for dev in 0..8 {
            assert_eq!(p.num_classes_present(dev), d.num_classes());
            assert!(!p.is_non_iid(dev));
        }
    }

    #[test]
    fn non_iid_devices_are_concentrated() {
        let d = dataset(4000);
        let p = Partition::new(&d, 20, DataDistribution::non_iid_percent(100), 3);
        // With alpha = 0.1, most devices should miss at least one class.
        let missing = (0..20)
            .filter(|&dev| p.num_classes_present(dev) < d.num_classes())
            .count();
        assert!(missing >= 15, "only {} of 20 devices concentrated", missing);
    }

    #[test]
    fn non_iid_percent_marks_expected_count() {
        let d = dataset(400);
        let p = Partition::new(&d, 40, DataDistribution::non_iid_percent(50), 4);
        let marked = (0..40).filter(|&dev| p.is_non_iid(dev)).count();
        assert_eq!(marked, 20);
    }

    #[test]
    fn cohort_divergence_zero_for_uniform() {
        let d = dataset(400);
        let p = Partition::new(&d, 10, DataDistribution::IidIdeal, 5);
        let all: Vec<usize> = (0..10).collect();
        assert!(p.cohort_divergence(&all) < 0.05);
        assert!((p.cohort_class_coverage(&all) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cohort_divergence_high_for_concentrated_cohort() {
        let d = dataset(4000);
        let p = Partition::new(&d, 20, DataDistribution::non_iid_percent(100), 6);
        // Pick the single most skewed device.
        let worst = (0..20)
            .min_by_key(|&dev| p.num_classes_present(dev))
            .unwrap();
        assert!(p.cohort_divergence(&[worst]) > 0.5);
    }

    #[test]
    fn partition_is_deterministic() {
        let d = dataset(200);
        let a = Partition::new(&d, 10, DataDistribution::non_iid_percent(75), 7);
        let b = Partition::new(&d, 10, DataDistribution::non_iid_percent(75), 7);
        for dev in 0..10 {
            assert_eq!(a.device_indices(dev), b.device_indices(dev));
        }
    }
}

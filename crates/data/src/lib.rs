//! # autofl-data
//!
//! Synthetic federated datasets and partitioning for the AutoFL
//! reproduction:
//!
//! * [`dataset::Dataset`] — in-memory labelled samples with batching,
//! * [`synth`] — procedural stand-ins for MNIST, Shakespeare and ImageNet
//!   (see DESIGN.md for the substitution rationale),
//! * [`partition`] — Ideal-IID and Dirichlet(0.1) Non-IID(M%) splits across
//!   a device fleet, plus the cohort-skew statistics consumed by the
//!   surrogate accuracy model in `autofl-fed`.
//!
//! # Examples
//!
//! ```
//! use autofl_data::{FlData, partition::DataDistribution};
//! use autofl_nn::zoo::Workload;
//!
//! let fl = FlData::generate(Workload::TinyTest, 8, 16, 32,
//!                           DataDistribution::IidIdeal, 42);
//! assert_eq!(fl.partition.num_devices(), 8);
//! assert!(fl.test.len() >= 32);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dataset;
pub mod partition;
pub mod synth;

pub use dataset::Dataset;
pub use partition::{DataDistribution, Partition};

use autofl_nn::zoo::Workload;

/// A complete federated dataset: a partitioned training set plus a held-out
/// test set used for the global accuracy measurement.
#[derive(Debug, Clone)]
pub struct FlData {
    /// The pooled training samples (indexed by [`FlData::partition`]).
    pub train: Dataset,
    /// The held-out test set evaluated on the server.
    pub test: Dataset,
    /// Assignment of training samples to devices.
    pub partition: Partition,
}

impl FlData {
    /// Generates train/test data for `workload` and partitions the training
    /// set across `num_devices` devices with roughly `samples_per_device`
    /// samples each.
    ///
    /// Deterministic in `seed`.
    pub fn generate(
        workload: Workload,
        num_devices: usize,
        samples_per_device: usize,
        test_samples: usize,
        distribution: DataDistribution,
        seed: u64,
    ) -> Self {
        let train = synth::generate(workload, num_devices * samples_per_device, seed);
        // Test data comes from stream 1: disjoint draws, same class prototypes.
        let test = synth::generate_stream(workload, test_samples, seed, 1);
        let partition = Partition::new(&train, num_devices, distribution, seed ^ 0x9a27);
        FlData {
            train,
            test,
            partition,
        }
    }

    /// Like [`FlData::generate`], but stores only labels — the partition
    /// and every cohort-skew statistic are **bit-identical** to the full
    /// generator's (they depend only on labels, and the label streams
    /// match), while no sample features are synthesised or held.
    ///
    /// This is what surrogate-fidelity simulations build: it turns the
    /// memory footprint of a million-device fleet from gigabytes of
    /// pixels into two flat index arrays. Attempting to batch training
    /// data from it panics — real-training fidelity must use
    /// [`FlData::generate`].
    pub fn generate_stats_only(
        workload: Workload,
        num_devices: usize,
        samples_per_device: usize,
        test_samples: usize,
        distribution: DataDistribution,
        seed: u64,
    ) -> Self {
        let train = synth::generate_labels(workload, num_devices * samples_per_device, seed);
        let test = synth::generate_stream_labels(workload, test_samples, seed, 1);
        let partition = Partition::new(&train, num_devices, distribution, seed ^ 0x9a27);
        FlData {
            train,
            test,
            partition,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_wires_partition_to_train_set() {
        let fl = FlData::generate(Workload::TinyTest, 5, 20, 40, DataDistribution::IidIdeal, 1);
        let total: usize = (0..5).map(|d| fl.partition.device_indices(d).len()).sum();
        assert_eq!(total, fl.train.len());
    }

    #[test]
    fn train_and_test_differ() {
        let fl = FlData::generate(Workload::TinyTest, 2, 10, 20, DataDistribution::IidIdeal, 2);
        let (xtr, _) = fl.train.batch(&[0]);
        let (xte, _) = fl.test.batch(&[0]);
        assert_ne!(xtr.data(), xte.data());
    }
}

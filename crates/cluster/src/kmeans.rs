//! Lloyd's k-means with k-means++ seeding.
//!
//! Section 4 of the paper: "additional clustering algorithm can be used
//! along with the AutoFL for binding similar category of devices" to share
//! Q-tables at scale. This module provides that algorithm: devices are
//! embedded by their performance/behaviour features and clustered into
//! Q-table groups.

use rand::Rng;

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
    assignments: Vec<usize>,
    inertia: f64,
}

impl KMeans {
    /// Clusters `points` (row-major, `dim` columns) into `k` groups.
    ///
    /// Runs k-means++ initialisation followed by Lloyd iterations until the
    /// assignment is stable or `max_iter` is reached. Deterministic given
    /// the `rng` state.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `dim == 0`, or there are fewer points than `k`.
    pub fn fit(points: &[f64], dim: usize, k: usize, max_iter: usize, rng: &mut impl Rng) -> Self {
        assert!(dim > 0 && k > 0, "k and dim must be positive");
        assert_eq!(points.len() % dim, 0, "points not a multiple of dim");
        let n = points.len() / dim;
        assert!(n >= k, "need at least k points");
        let point = |i: usize| &points[i * dim..(i + 1) * dim];
        let dist2 = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
        };

        // k-means++ seeding.
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(point(rng.gen_range(0..n)).to_vec());
        while centroids.len() < k {
            let weights: Vec<f64> = (0..n)
                .map(|i| {
                    centroids
                        .iter()
                        .map(|c| dist2(point(i), c))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = weights.iter().sum();
            if total <= 0.0 {
                // All remaining points coincide with a centroid.
                centroids.push(point(rng.gen_range(0..n)).to_vec());
                continue;
            }
            let mut draw = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, w) in weights.iter().enumerate() {
                if draw < *w {
                    chosen = i;
                    break;
                }
                draw -= w;
            }
            centroids.push(point(chosen).to_vec());
        }

        let mut assignments = vec![0usize; n];
        for _ in 0..max_iter {
            let mut changed = false;
            for (i, slot) in assignments.iter_mut().enumerate() {
                let best = (0..k)
                    .min_by(|&a, &b| {
                        dist2(point(i), &centroids[a])
                            .partial_cmp(&dist2(point(i), &centroids[b]))
                            .expect("finite distances")
                    })
                    .expect("k > 0");
                if *slot != best {
                    *slot = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            for (c, centroid) in centroids.iter_mut().enumerate() {
                let members: Vec<usize> = (0..n).filter(|&i| assignments[i] == c).collect();
                if members.is_empty() {
                    continue;
                }
                for (d, coord) in centroid.iter_mut().enumerate() {
                    *coord =
                        members.iter().map(|&i| point(i)[d]).sum::<f64>() / members.len() as f64;
                }
            }
        }
        let inertia = (0..n)
            .map(|i| dist2(point(i), &centroids[assignments[i]]))
            .sum();
        KMeans {
            centroids,
            assignments,
            inertia,
        }
    }

    /// Cluster index of each input point.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// The fitted centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Sum of squared distances of points to their centroid.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Assigns a new point to the nearest fitted centroid.
    pub fn predict(&self, point: &[f64]) -> usize {
        self.centroids
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da: f64 = a.iter().zip(point).map(|(x, y)| (x - y) * (x - y)).sum();
                let db: f64 = b.iter().zip(point).map(|(x, y)| (x - y) * (x - y)).sum();
                da.partial_cmp(&db).expect("finite distances")
            })
            .map(|(i, _)| i)
            .expect("at least one centroid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_three_well_separated_blobs() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut pts = Vec::new();
        for center in [0.0, 10.0, 20.0] {
            for i in 0..20 {
                pts.push(center + (i % 5) as f64 * 0.01);
                pts.push(center - (i % 3) as f64 * 0.01);
            }
        }
        let km = KMeans::fit(&pts, 2, 3, 50, &mut rng);
        // Points within a blob share a cluster.
        let a = km.assignments();
        for blob in 0..3 {
            let first = a[blob * 20];
            assert!(a[blob * 20..(blob + 1) * 20].iter().all(|&x| x == first));
        }
        assert!(km.inertia() < 1.0);
    }

    #[test]
    fn predict_matches_training_assignment() {
        let mut rng = SmallRng::seed_from_u64(2);
        let pts = vec![0.0, 0.1, 0.2, 9.0, 9.1, 9.2];
        let km = KMeans::fit(&pts, 1, 2, 50, &mut rng);
        assert_eq!(km.predict(&[0.05]), km.assignments()[0]);
        assert_eq!(km.predict(&[9.05]), km.assignments()[3]);
    }

    #[test]
    #[should_panic(expected = "at least k points")]
    fn rejects_more_clusters_than_points() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = KMeans::fit(&[1.0, 2.0], 1, 3, 10, &mut rng);
    }
}

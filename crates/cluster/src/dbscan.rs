//! DBSCAN density-based clustering.
//!
//! The paper (Section 4.1) converts continuous state features into the
//! discrete bins of Table 1 by running DBSCAN on observed feature values:
//! "DBSCAN determines the optimal number of clusters for the given data".
//! [`Discretizer`] wraps exactly that workflow for 1-D features.

/// Cluster assignment of one point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// Point belongs to the cluster with this index.
    Cluster(usize),
    /// Density noise — not within `eps` of `min_pts` neighbours.
    Noise,
}

/// Runs DBSCAN over `points` (row-major, `dim` columns) with radius `eps`
/// and core threshold `min_pts`.
///
/// Returns one [`Assignment`] per point; cluster indices are dense starting
/// at 0, in discovery order.
///
/// # Panics
///
/// Panics if `dim == 0`, `points.len()` is not a multiple of `dim`, or
/// `eps` is not positive.
pub fn dbscan(points: &[f64], dim: usize, eps: f64, min_pts: usize) -> Vec<Assignment> {
    assert!(dim > 0, "dimension must be positive");
    assert!(eps > 0.0, "eps must be positive");
    assert_eq!(points.len() % dim, 0, "points not a multiple of dim");
    let n = points.len() / dim;
    let dist2 = |a: usize, b: usize| -> f64 {
        (0..dim)
            .map(|k| {
                let d = points[a * dim + k] - points[b * dim + k];
                d * d
            })
            .sum()
    };
    let eps2 = eps * eps;
    let neighbours = |i: usize| -> Vec<usize> { (0..n).filter(|&j| dist2(i, j) <= eps2).collect() };

    let mut labels: Vec<Option<Assignment>> = vec![None; n];
    let mut next_cluster = 0usize;
    for i in 0..n {
        if labels[i].is_some() {
            continue;
        }
        let nb = neighbours(i);
        if nb.len() < min_pts {
            labels[i] = Some(Assignment::Noise);
            continue;
        }
        let cluster = next_cluster;
        next_cluster += 1;
        labels[i] = Some(Assignment::Cluster(cluster));
        let mut frontier = nb;
        while let Some(j) = frontier.pop() {
            match labels[j] {
                Some(Assignment::Cluster(_)) => continue,
                Some(Assignment::Noise) | None => {
                    let was_unvisited = labels[j].is_none();
                    labels[j] = Some(Assignment::Cluster(cluster));
                    if was_unvisited {
                        let nb_j = neighbours(j);
                        if nb_j.len() >= min_pts {
                            frontier.extend(nb_j);
                        }
                    }
                }
            }
        }
    }
    labels
        .into_iter()
        .map(|l| l.expect("all visited"))
        .collect()
}

/// Discretizes a continuous 1-D feature into bins derived from DBSCAN
/// clusters, mirroring the paper's Table 1 procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct Discretizer {
    /// Sorted upper boundaries between adjacent bins.
    boundaries: Vec<f64>,
}

impl Discretizer {
    /// Learns bin boundaries by clustering `values` with DBSCAN and placing
    /// boundaries at the midpoints between adjacent clusters' extents.
    /// Noise points are absorbed into the nearest cluster interval.
    ///
    /// Falls back to a single bin if DBSCAN finds fewer than two clusters.
    pub fn fit(values: &[f64], eps: f64, min_pts: usize) -> Self {
        let assignments = dbscan(values, 1, eps, min_pts);
        let num_clusters = assignments
            .iter()
            .filter_map(|a| match a {
                Assignment::Cluster(c) => Some(c + 1),
                Assignment::Noise => None,
            })
            .max()
            .unwrap_or(0);
        if num_clusters < 2 {
            return Discretizer {
                boundaries: Vec::new(),
            };
        }
        // Extent (min, max) of each cluster.
        let mut extents = vec![(f64::INFINITY, f64::NEG_INFINITY); num_clusters];
        for (v, a) in values.iter().zip(assignments.iter()) {
            if let Assignment::Cluster(c) = a {
                extents[*c].0 = extents[*c].0.min(*v);
                extents[*c].1 = extents[*c].1.max(*v);
            }
        }
        extents.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite extents"));
        let boundaries = extents
            .windows(2)
            .map(|w| (w[0].1 + w[1].0) / 2.0)
            .collect();
        Discretizer { boundaries }
    }

    /// Creates a discretizer from explicit boundaries (the published
    /// Table 1 bins).
    ///
    /// # Panics
    ///
    /// Panics if the boundaries are not strictly increasing.
    pub fn from_boundaries(boundaries: Vec<f64>) -> Self {
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundaries must be strictly increasing"
        );
        Discretizer { boundaries }
    }

    /// Number of bins (`boundaries + 1`).
    pub fn num_bins(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// Maps a value to its bin index in `0..num_bins()`.
    pub fn bin(&self, value: f64) -> usize {
        self.boundaries.iter().take_while(|&&b| value >= b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_blobs() {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(i as f64 * 0.1); // blob at 0..1
            pts.push(10.0 + i as f64 * 0.1); // blob at 10..11
        }
        let labels = dbscan(&pts, 1, 0.5, 3);
        let c0 = labels[0];
        let c1 = labels[1];
        assert_ne!(c0, c1);
        assert!(matches!(c0, Assignment::Cluster(_)));
        // All even indices share c0, all odd share c1.
        for (i, l) in labels.iter().enumerate() {
            assert_eq!(*l, if i % 2 == 0 { c0 } else { c1 });
        }
    }

    #[test]
    fn isolated_point_is_noise() {
        let pts = vec![0.0, 0.1, 0.2, 0.3, 50.0];
        let labels = dbscan(&pts, 1, 0.5, 3);
        assert_eq!(labels[4], Assignment::Noise);
    }

    #[test]
    fn two_dim_clustering_uses_euclidean_distance() {
        // Two clusters along the diagonal.
        let pts = vec![0.0, 0.0, 0.1, 0.1, 0.2, 0.0, 5.0, 5.0, 5.1, 5.1, 5.0, 5.2];
        let labels = dbscan(&pts, 2, 0.5, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn discretizer_learns_boundary_between_modes() {
        let mut values = Vec::new();
        for i in 0..20 {
            values.push(i as f64 * 0.01); // mode near 0
            values.push(1.0 + i as f64 * 0.01); // mode near 1
        }
        let d = Discretizer::fit(&values, 0.05, 3);
        assert_eq!(d.num_bins(), 2);
        assert_eq!(d.bin(0.1), 0);
        assert_eq!(d.bin(0.9), 1);
    }

    #[test]
    fn discretizer_single_mode_is_one_bin() {
        let values: Vec<f64> = (0..50).map(|i| i as f64 * 0.01).collect();
        let d = Discretizer::fit(&values, 0.05, 3);
        assert_eq!(d.num_bins(), 1);
        assert_eq!(d.bin(-10.0), 0);
        assert_eq!(d.bin(10.0), 0);
    }

    #[test]
    fn explicit_boundaries_match_table1_semantics() {
        // S_B bins: small (<8), medium (<32), large (>=32).
        let d = Discretizer::from_boundaries(vec![8.0, 32.0]);
        assert_eq!(d.bin(4.0), 0);
        assert_eq!(d.bin(16.0), 1);
        assert_eq!(d.bin(32.0), 2);
        assert_eq!(d.bin(64.0), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_boundaries() {
        let _ = Discretizer::from_boundaries(vec![5.0, 2.0]);
    }
}

//! # autofl-cluster
//!
//! Clustering substrate for the AutoFL reproduction:
//!
//! * [`mod@dbscan`] — density-based clustering, used by the paper to convert
//!   continuous state features into the discrete bins of Table 1
//!   ([`dbscan::Discretizer`]).
//! * [`kmeans`] — k-means++ clustering, used to bind similar devices to a
//!   shared Q-table when scaling AutoFL to large fleets (Section 6.4).
//!
//! # Examples
//!
//! ```
//! use autofl_cluster::dbscan::Discretizer;
//!
//! // The paper's published S_B bins: small (<8), medium (<32), large (>=32).
//! let bins = Discretizer::from_boundaries(vec![8.0, 32.0]);
//! assert_eq!(bins.bin(16.0), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dbscan;
pub mod kmeans;

pub use dbscan::{dbscan, Assignment, Discretizer};
pub use kmeans::KMeans;

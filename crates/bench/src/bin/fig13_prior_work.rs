//! Figure 13: AutoFL vs the prior-work comparators FedNova and FEDL
//! (random selection, partial straggler updates) on the three workloads.

use autofl_bench::{run_policy, standard_registry};
use autofl_data::partition::DataDistribution;
use autofl_device::scenario::VarianceScenario;
use autofl_fed::algorithms::AggregationAlgorithm;
use autofl_fed::engine::Simulation;
use autofl_nn::zoo::Workload;

fn main() {
    let registry = standard_registry();
    let random = registry.expect("FedAvg-Random");
    let autofl_policy = registry.expect("AutoFL");
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "workload", "FedNova", "FEDL", "AutoFL"
    );
    for workload in Workload::paper_workloads() {
        let builder = Simulation::builder(workload)
            .scenario(VarianceScenario::realistic())
            .distribution(DataDistribution::non_iid_percent(50))
            .max_rounds(800);
        let cfg = builder
            .clone()
            .build_config()
            .expect("valid figure configuration");
        // FedAvg-Random is the common denominator.
        let base = run_policy(&cfg, random).ppw_global().max(1e-300);
        let nova_cfg = builder
            .clone()
            .algorithm(AggregationAlgorithm::FedNova)
            .build_config()
            .expect("valid figure configuration");
        let nova = run_policy(&nova_cfg, random).ppw_global() / base;
        let fedl_cfg = builder
            .algorithm(AggregationAlgorithm::Fedl { eta: 0.1 })
            .build_config()
            .expect("valid figure configuration");
        let fedl = run_policy(&fedl_cfg, random).ppw_global() / base;
        let autofl = run_policy(&cfg, autofl_policy).ppw_global() / base;
        println!(
            "{:<22} {:>9.2}x {:>9.2}x {:>9.2}x",
            workload.name(),
            nova,
            fedl,
            autofl
        );
    }
    println!("\npaper: AutoFL achieves 49.8% / 39.3% higher PPW than FedNova / FEDL.");
}

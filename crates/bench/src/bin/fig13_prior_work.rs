//! Figure 13: AutoFL vs the prior-work comparators FedNova and FEDL
//! (random selection, partial straggler updates) on the three workloads.

use autofl_bench::{run_policy, Policy};
use autofl_data::partition::DataDistribution;
use autofl_device::scenario::VarianceScenario;
use autofl_fed::algorithms::AggregationAlgorithm;
use autofl_fed::engine::SimConfig;
use autofl_nn::zoo::Workload;

fn main() {
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "workload", "FedNova", "FEDL", "AutoFL"
    );
    for workload in Workload::paper_workloads() {
        let mut cfg = SimConfig::paper_default(workload);
        cfg.scenario = VarianceScenario::realistic();
        cfg.distribution = DataDistribution::non_iid_percent(50);
        cfg.max_rounds = 800;
        // FedAvg-Random is the common denominator.
        let base = run_policy(&cfg, Policy::Random).ppw_global().max(1e-300);
        let mut nova_cfg = cfg.clone();
        nova_cfg.algorithm = AggregationAlgorithm::FedNova;
        let nova = run_policy(&nova_cfg, Policy::Random).ppw_global() / base;
        let mut fedl_cfg = cfg.clone();
        fedl_cfg.algorithm = AggregationAlgorithm::Fedl { eta: 0.1 };
        let fedl = run_policy(&fedl_cfg, Policy::Random).ppw_global() / base;
        let autofl = run_policy(&cfg, Policy::AutoFl).ppw_global() / base;
        println!(
            "{:<22} {:>9.2}x {:>9.2}x {:>9.2}x",
            workload.name(),
            nova,
            fedl,
            autofl
        );
    }
    println!("\npaper: AutoFL achieves 49.8% / 39.3% higher PPW than FedNova / FEDL.");
}

//! Async-runtime study: buffered staleness-weighted aggregation versus
//! the full barrier, swept over buffer size × staleness exponent.
//!
//! For every grid cell the binary runs the event-driven runtime
//! (`autofl_fed::runtime`) on a fleet with full dynamics enabled and
//! reports accuracy, mean staleness, the logical clock the simulated
//! federation consumed, and throughput in **simulated hours per
//! wall-clock second** — the figure of merit for a discrete-event
//! scheduler (how much fleet time one second of simulation buys).
//!
//! The `barrier` row is the control: the event scheduler with a full
//! barrier is bit-identical to the lockstep engine (see
//! `docs/async-runtime.md`), so every difference in the buffered rows is
//! attributable to the buffer/staleness knobs, not to the scheduler.
//!
//! ```sh
//! cargo run --release -p autofl-bench --bin fig_async              # 10k devices
//! cargo run --release -p autofl-bench --bin fig_async -- --smoke   # CI: 40 devices
//! ```
//!
//! Runs are deterministic in the seed; only the wall-clock columns vary.

use autofl_fed::engine::{SimConfig, Simulation};
use autofl_fed::fleet::FleetDynamics;
use autofl_fed::runtime::AsyncRuntime;
use autofl_fed::selection::RandomSelector;
use autofl_nn::zoo::Workload;
use std::time::Instant;

/// How many model versions ahead the dispatcher may run in buffered
/// mode. Two concurrent cohorts already produce cross-cohort staleness;
/// deeper pipelines mostly add noise at this scale.
const COHORTS: usize = 2;

fn base_config(smoke: bool) -> SimConfig {
    if smoke {
        let mut cfg = SimConfig::smoke(42);
        cfg.scenario = autofl_device::scenario::VarianceScenario::realistic();
        cfg.max_rounds = 40;
        cfg.target_accuracy = Some(1.1); // fixed horizon: aligned rows
        cfg.fleet = Some(FleetDynamics::realistic());
        cfg
    } else {
        Simulation::builder(Workload::CnnMnist)
            .devices(10_000)
            .shards(16)
            .scenario(autofl_device::scenario::VarianceScenario::realistic())
            .samples_per_device(8)
            .test_samples(64)
            .max_rounds(40)
            .target_accuracy(1.1)
            .fleet_dynamics(FleetDynamics::realistic())
            .seed(42)
            .build_config()
            .expect("async sweep config is valid")
    }
}

struct Cell {
    label: String,
    exponent: f64,
    rounds: usize,
    accuracy: f64,
    mean_staleness: f64,
    logical_hours: f64,
    wall_s: f64,
}

fn run_cell(base: &SimConfig, runtime: AsyncRuntime, label: &str) -> Cell {
    let mut cfg = base.clone();
    cfg.runtime = Some(runtime);
    let mut sim = Simulation::new(cfg);
    let t = Instant::now();
    let result = sim.run(&mut RandomSelector::new());
    let wall_s = t.elapsed().as_secs_f64();
    let last = result.records.last().expect("sweep runs at least a round");
    let mean_staleness =
        result.records.iter().map(|r| r.mean_staleness).sum::<f64>() / result.records.len() as f64;
    Cell {
        label: label.to_string(),
        exponent: runtime.staleness_exponent,
        rounds: result.records.len(),
        accuracy: result.final_accuracy(),
        mean_staleness,
        logical_hours: last.logical_time_s / 3600.0,
        wall_s,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let base = base_config(smoke);
    let k = base.params.num_participants;
    // Buffer sizes as fractions of the cohort size K: flushing every K/4
    // uploads is the "very async" end, flushing at K approaches (but does
    // not reach) the barrier because cohorts still overlap.
    let buffers: Vec<usize> = if smoke {
        vec![(k / 4).max(1)]
    } else {
        vec![(k / 4).max(1), (k / 2).max(1), k.max(1)]
    };
    let exponents: &[f64] = if smoke { &[0.0, 1.0] } else { &[0.0, 0.5, 1.0] };

    println!(
        "== fig_async ({}, {} devices, K={k}, {} rounds, dynamics on) ==",
        if smoke { "smoke" } else { "full" },
        base.num_devices,
        base.max_rounds,
    );
    println!(
        "{:<14} {:>5} {:>7} {:>9} {:>11} {:>11} {:>8} {:>12}",
        "runtime", "exp", "rounds", "accuracy", "staleness", "sim-hours", "wall-s", "sim-h/s"
    );

    let mut cells = vec![run_cell(&base, AsyncRuntime::barrier(), "barrier")];
    for &m in &buffers {
        for &a in exponents {
            let rt = AsyncRuntime::buffered(m, a).concurrent_cohorts(COHORTS);
            cells.push(run_cell(&base, rt, &format!("buffered M={m}")));
        }
    }

    for cell in &cells {
        let sim_hours_per_s = cell.logical_hours / cell.wall_s.max(1e-9);
        println!(
            "{:<14} {:>5.1} {:>7} {:>8.1}% {:>11.2} {:>11.2} {:>8.2} {:>12.1}",
            cell.label,
            cell.exponent,
            cell.rounds,
            cell.accuracy * 100.0,
            cell.mean_staleness,
            cell.logical_hours,
            cell.wall_s,
            sim_hours_per_s,
        );
        assert!(
            cell.accuracy.is_finite() && cell.accuracy > 0.0,
            "degenerate run in cell {}",
            cell.label
        );
    }

    println!(
        "\nSmaller buffers aggregate sooner (higher round throughput, more \
         staleness); the exponent discounts stale updates back toward the \
         barrier trajectory."
    );
}

//! Figure 12: how closely AutoFL tracks the oracle's decisions —
//! participant-selection overlap and execution-target agreement, after the
//! Q-tables converge.

use autofl_core::AutoFl;
use autofl_data::partition::DataDistribution;
use autofl_device::scenario::VarianceScenario;
use autofl_fed::engine::{SimConfig, Simulation};
use autofl_fed::oracle::OracleSelector;
use autofl_nn::zoo::Workload;

/// Runs AutoFL with a shadow oracle and returns (participant overlap,
/// target agreement) averaged over the post-warmup rounds.
fn prediction_accuracy(cfg: &SimConfig, warmup: usize, rounds: usize) -> (f64, f64) {
    let mut sim = Simulation::new(cfg.clone());
    let mut agent = AutoFl::paper_default();
    let mut oracle = OracleSelector::full();
    let (mut overlap_sum, mut target_sum, mut measured) = (0.0, 0.0, 0usize);
    for round in 0..rounds {
        let (record, shadow) = sim.run_round_shadowed(&mut agent, round, Some(&mut oracle));
        let Some(shadow) = shadow else { continue };
        if round < warmup {
            continue;
        }
        let hits = record
            .participants
            .iter()
            .filter(|id| shadow.participants.contains(id))
            .count();
        overlap_sum += hits as f64 / record.participants.len().max(1) as f64;
        // Target agreement over the devices both policies picked.
        let mut agree = 0usize;
        let mut both = 0usize;
        for (id, plan) in record.participants.iter().zip(&record.plans) {
            if let Some(pos) = shadow.participants.iter().position(|s| s == id) {
                both += 1;
                if shadow.plans[pos].target == plan.target {
                    agree += 1;
                }
            }
        }
        target_sum += if both > 0 {
            agree as f64 / both as f64
        } else {
            1.0
        };
        measured += 1;
    }
    (
        overlap_sum / measured.max(1) as f64,
        target_sum / measured.max(1) as f64,
    )
}

fn main() {
    println!("=== Figure 12(a): per-workload tracking of O_FL ===");
    for workload in Workload::paper_workloads() {
        let cfg = Simulation::builder(workload)
            .max_rounds(300)
            .build_config()
            .expect("valid figure configuration");
        let (sel, tgt) = prediction_accuracy(&cfg, 100, 300);
        println!(
            "{:<20} participant overlap {:>5.1}%  target agreement {:>5.1}%",
            workload.name(),
            sel * 100.0,
            tgt * 100.0
        );
    }
    println!("\n=== Figure 12(b): tracking under variance / data heterogeneity ===");
    let interference = Simulation::builder(Workload::CnnMnist)
        .scenario(VarianceScenario::with_interference())
        .max_rounds(300)
        .build_config()
        .expect("valid figure configuration");
    let noniid = Simulation::builder(Workload::CnnMnist)
        .distribution(DataDistribution::non_iid_percent(50))
        .max_rounds(300)
        .build_config()
        .expect("valid figure configuration");
    for (label, cfg) in [("interference", interference), ("non-IID 50%", noniid)] {
        let (sel, tgt) = prediction_accuracy(&cfg, 100, 300);
        println!(
            "{:<20} participant overlap {:>5.1}%  target agreement {:>5.1}%",
            label,
            sel * 100.0,
            tgt * 100.0
        );
    }
    println!("\npaper: ~94% participant- and ~92.9% target-prediction accuracy.");
}

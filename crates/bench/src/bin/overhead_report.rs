//! Section 6.4: AutoFL's own runtime cost — per-phase microseconds per
//! round, Q-table memory for 200 devices, and the misprediction overhead
//! relative to the oracle after reward convergence.

use autofl_bench::{run_policy, standard_registry};
use autofl_core::AutoFl;
use autofl_fed::engine::Simulation;
use autofl_nn::zoo::Workload;

fn main() {
    let cfg = Simulation::builder(Workload::CnnMnist)
        .max_rounds(300)
        .build_config()
        .expect("valid configuration");
    let mut agent = AutoFl::paper_default();
    let result = Simulation::new(cfg.clone()).run(&mut agent);

    let (observe, select, reward, update) = agent.overhead().per_round_us();
    println!("=== Section 6.4: controller overhead (200 devices) ===");
    println!("observe states : {observe:>9.1} us/round   (paper: 496.8)");
    println!("select         : {select:>9.1} us/round   (paper: 10.5)");
    println!("compute reward : {reward:>9.1} us/round   (paper: 2.1)");
    println!("update Q-tables: {update:>9.1} us/round   (paper: 22.1)");
    println!(
        "total          : {:>9.1} us/round   (paper: 531.5, 0.8% of a round)",
        agent.overhead().total_per_round_us()
    );
    println!(
        "Q-table memory : {:>9.1} KiB        (paper: 80 MB dense tables; ours are lazy)",
        agent.memory_bytes() as f64 / 1024.0
    );

    // Misprediction overhead: AutoFL vs O_FL on time and energy.
    let oracle = run_policy(&cfg, standard_registry().expect("O_FL"));
    let time_over = result.time_to_target_s() / oracle.time_to_target_s() - 1.0;
    let energy_over = result.energy_to_target_j() / oracle.energy_to_target_j() - 1.0;
    println!(
        "\nvs O_FL: +{:.1}% time, +{:.1}% energy (paper: 5.6% timing, 8.8% energy overhead)",
        time_over * 100.0,
        energy_over * 100.0
    );
}

//! Figure 15 + Section 5.3: Q-table reward convergence (per-device vs
//! shared per-tier tables) and the gamma/mu hyper-parameter sensitivity.

use autofl_core::{AutoFl, AutoFlConfig, QSharing};
use autofl_fed::engine::Simulation;
use autofl_nn::zoo::Workload;

fn reward_trace(sharing: QSharing) -> (Vec<f64>, Option<usize>) {
    let mut sim = Simulation::builder(Workload::CnnMnist)
        .max_rounds(200)
        .target_accuracy(1.1) // run the full horizon
        .build()
        .expect("valid figure configuration");
    let mut agent = AutoFl::new(AutoFlConfig {
        sharing,
        ..Default::default()
    });
    let _ = sim.run(&mut agent);
    let converged = agent.reward_converged_round(20, 12.0);
    (agent.reward_history().to_vec(), converged)
}

fn main() {
    println!("=== Figure 15: mean reward per round ===");
    let (per_device, conv_per) = reward_trace(QSharing::PerDevice);
    let (shared, conv_shared) = reward_trace(QSharing::SharedPerTier);
    println!("{:<8} {:>12} {:>12}", "round", "per-device", "shared-tier");
    for r in (0..per_device.len().min(shared.len())).step_by(20) {
        println!("{:<8} {:>12.1} {:>12.1}", r, per_device[r], shared[r]);
    }
    println!(
        "reward converged: per-device {:?}, shared {:?} (paper: 50-80 rounds; sharing ~29% faster)",
        conv_per, conv_shared
    );

    println!("\n=== Section 5.3: hyper-parameter sensitivity (final PPW, normalised) ===");
    let cfg = Simulation::builder(Workload::CnnMnist)
        .max_rounds(400)
        .build_config()
        .expect("valid figure configuration");
    let mut results = Vec::new();
    for gamma in [0.1, 0.5, 0.9] {
        for mu in [0.1, 0.5, 0.9] {
            let ac = AutoFlConfig {
                learning_rate: gamma,
                discount: mu,
                ..Default::default()
            };
            let r = Simulation::new(cfg.clone()).run(&mut AutoFl::new(ac));
            results.push((gamma, mu, r.ppw_global()));
        }
    }
    let best = results
        .iter()
        .map(|r| r.2)
        .fold(0.0f64, f64::max)
        .max(1e-300);
    for (gamma, mu, ppw) in results {
        println!(
            "gamma={:.1} mu={:.1}: {:>5.1}% of best",
            gamma,
            mu,
            ppw / best * 100.0
        );
    }
    println!("\npaper: gamma=0.9 and mu=0.1 maximise prediction accuracy.");
}

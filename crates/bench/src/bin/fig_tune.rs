//! Convergence-control study: an
//! [`autofl_fed::serve::ConvergenceController`] driving the
//! [`autofl_fed::policy::Policy::tune`] hook every round, steering the
//! cohort size `K` toward a per-round energy budget.
//!
//! The binary first runs the uncontrolled baseline to measure its mean
//! per-round energy `E0`, then repeats the run under energy budgets at
//! fixed fractions of `E0`. For each budget it reports the mean round
//! energy of the first and last thirds of the run and the `K` the
//! controller settled on — the tail third sits close to the budget
//! (within the resolution a discrete `K` allows) while the head third
//! still carries the transient, which is the convergence the controller
//! exists to produce.
//!
//! ```sh
//! cargo run --release -p autofl-bench --bin fig_tune              # 1k devices
//! cargo run --release -p autofl-bench --bin fig_tune -- --smoke   # CI: 40 devices
//! ```
//!
//! Deterministic in the seed: the controller is plain arithmetic on the
//! round records, so controlled runs replay bit-identically (and
//! checkpoint/resume cleanly — see `docs/serving.md`).

use autofl_fed::engine::{SimConfig, Simulation};
use autofl_fed::policy::{Policy, RandomPolicy};
use autofl_fed::serve::{ConvergeTarget, ExperimentRun};
use autofl_nn::zoo::Workload;

fn base_config(smoke: bool) -> SimConfig {
    let mut cfg = if smoke {
        SimConfig::smoke(42)
    } else {
        Simulation::builder(Workload::CnnMnist)
            .devices(1_000)
            .shards(4)
            .samples_per_device(8)
            .test_samples(64)
            .seed(42)
            .build_config()
            .expect("tune sweep config is valid")
    };
    cfg.max_rounds = if smoke { 60 } else { 120 };
    cfg.target_accuracy = Some(1.1); // fixed horizon: aligned rows
    cfg
}

struct Row {
    label: String,
    budget: Option<f64>,
    rounds: usize,
    accuracy: f64,
    head_energy: f64,
    tail_energy: f64,
    final_k: usize,
}

fn run_row(config: &SimConfig, control: Option<ConvergeTarget>, label: &str) -> Row {
    let mut run =
        ExperimentRun::new(config, &RandomPolicy, control).expect("tune sweep config validates");
    while run.step().expect("no observers attached").is_some() {}
    let final_k = run.params().num_participants;
    let result = run.into_result();
    let energies: Vec<f64> = result.records.iter().map(|r| r.total_energy_j()).collect();
    let third = (energies.len() / 3).max(1);
    let mean = |w: &[f64]| w.iter().sum::<f64>() / w.len() as f64;
    Row {
        label: label.to_string(),
        budget: control.map(|t| match t {
            ConvergeTarget::EnergyBudget { joules_per_round } => joules_per_round,
            ConvergeTarget::AccuracyFloor { accuracy } => accuracy,
        }),
        rounds: energies.len(),
        accuracy: result.final_accuracy(),
        head_energy: mean(&energies[..third]),
        tail_energy: mean(&energies[energies.len() - third..]),
        final_k,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let base = base_config(smoke);
    println!(
        "== fig_tune ({}, {} devices, base K={}, {} rounds, policy {}) ==",
        if smoke { "smoke" } else { "full" },
        base.num_devices,
        base.params.num_participants,
        base.max_rounds,
        RandomPolicy.name(),
    );

    let baseline = run_row(&base, None, "uncontrolled");
    let e0 = baseline.tail_energy;
    let fractions: &[f64] = if smoke {
        &[0.5, 1.5]
    } else {
        &[0.5, 0.75, 1.25, 1.5]
    };

    let mut rows = vec![baseline];
    for &f in fractions {
        let target = ConvergeTarget::EnergyBudget {
            joules_per_round: f * e0,
        };
        rows.push(run_row(&base, Some(target), &format!("budget {f:.2}x")));
    }

    println!(
        "{:<14} {:>12} {:>7} {:>9} {:>12} {:>12} {:>8} {:>10}",
        "run", "budget J/rd", "rounds", "accuracy", "head J/rd", "tail J/rd", "final K", "tail/tgt"
    );
    for row in &rows {
        let budget = row
            .budget
            .map(|b| format!("{b:.3}"))
            .unwrap_or_else(|| "-".into());
        let ratio = row
            .budget
            .map(|b| format!("{:.2}", row.tail_energy / b))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<14} {:>12} {:>7} {:>8.1}% {:>12.3} {:>12.3} {:>8} {:>10}",
            row.label,
            budget,
            row.rounds,
            row.accuracy * 100.0,
            row.head_energy,
            row.tail_energy,
            row.final_k,
            ratio,
        );
    }

    // The demonstrable claim: under a halved budget the controller ends
    // the run spending less than the uncontrolled baseline, and it got
    // there by shrinking K through Policy::tune (never by invalidating
    // the config — K stays >= 1).
    let base_tail = rows[0].tail_energy;
    let halved = &rows[1];
    assert!(
        halved.tail_energy < base_tail,
        "a halved budget must reduce tail energy: {} vs {base_tail}",
        halved.tail_energy
    );
    assert!(
        halved.final_k < rows[0].final_k,
        "the energy cut must come from a smaller cohort"
    );
    let over = rows.last().expect("at least one controlled row");
    assert!(
        over.final_k >= rows[0].final_k,
        "a generous budget must not shrink the cohort"
    );

    println!(
        "\nEach controlled run retunes K every round via Policy::tune; the \
         tail third sits at the budget to the resolution a discrete K \
         allows, while the head third still carries the transient."
    );
}

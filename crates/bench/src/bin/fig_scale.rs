//! Fleet-size scaling benchmark: how fast (and how big) the simulator is
//! at N ∈ {1k, 10k, 100k, 1M} devices.
//!
//! The ROADMAP's north star is "heavy traffic from millions of users";
//! this binary is the proof and the regression guard. For every fleet
//! size it builds a Surrogate-fidelity simulation (sharded
//! structure-of-arrays stores, labels-only data), runs a fixed number of
//! FedAvg-Random rounds, and reports setup time, rounds/second and a
//! peak-RSS proxy — once on a static fleet and once with full fleet
//! dynamics (battery / thermal / churn) enabled. Rows merge into
//! `BENCH_autofl.json` next to `perf_report`'s kernel timings.
//!
//! ```sh
//! cargo run --release -p autofl-bench --bin fig_scale              # up to 1M devices
//! cargo run --release -p autofl-bench --bin fig_scale -- --smoke   # CI: up to 10k
//! cargo run --release -p autofl-bench --bin fig_scale -- --out /tmp/bench.json
//! ```
//!
//! Every run is deterministic in the seed and bit-identical at any
//! `AUTOFL_THREADS` / shard setting (the workspace contract); only the
//! wall-clock columns vary.

use autofl_bench::{merge_bench_rows, peak_rss_kb, read_bench_rows, BenchRow};
use autofl_fed::engine::Simulation;
use autofl_fed::fleet::FleetDynamics;
use autofl_fed::selection::RandomSelector;
use autofl_nn::zoo::Workload;
use std::time::Instant;

const ROUNDS: usize = 5;
/// A few samples per device keep the partition honest (non-trivial label
/// mixes) without drowning a million-device run in label storage.
const SAMPLES_PER_DEVICE: usize = 8;
/// Shard count of the sweep: enough shards that store parallelism and
/// the hierarchical aggregation tree are genuinely exercised at scale.
const SHARDS: usize = 16;

struct ScaleRow {
    bench: String,
    devices: usize,
    dynamics: bool,
    setup_ms: f64,
    rounds_ms: f64,
    rounds_per_s: f64,
    rss_kb: f64,
    final_accuracy: f64,
}

fn run_scale(devices: usize, dynamics: bool) -> ScaleRow {
    let t_setup = Instant::now();
    let mut builder = Simulation::builder(Workload::CnnMnist)
        .devices(devices)
        .shards(SHARDS)
        .samples_per_device(SAMPLES_PER_DEVICE)
        .test_samples(64)
        .max_rounds(ROUNDS)
        .target_accuracy(1.1) // never converge: fixed round count
        .seed(42);
    if dynamics {
        builder = builder.fleet_dynamics(FleetDynamics::realistic());
    }
    let mut sim = builder.build().expect("scale config is valid");
    let setup_ms = t_setup.elapsed().as_secs_f64() * 1e3;

    let mut selector = RandomSelector::new();
    let t_rounds = Instant::now();
    let mut accuracy = 0.0;
    for round in 0..ROUNDS {
        let record = sim.run_round(&mut selector, round);
        let k = sim.config().params.num_participants.min(devices);
        assert!(
            !record.participants.is_empty() && record.participants.len() <= k,
            "selection must stay bounded at scale"
        );
        accuracy = record.accuracy;
    }
    let rounds_ms = t_rounds.elapsed().as_secs_f64() * 1e3;
    assert!(accuracy.is_finite() && accuracy > 0.0, "degenerate run");

    ScaleRow {
        bench: format!(
            "fleet_scale{}_n{devices}",
            if dynamics { "_dyn" } else { "" }
        ),
        devices,
        dynamics,
        setup_ms,
        rounds_ms,
        rounds_per_s: ROUNDS as f64 / (rounds_ms / 1e3).max(1e-9),
        // VmHWM is a process high-water mark: with fleet sizes swept in
        // ascending order it tracks the largest simulation so far, i.e.
        // the current one. Where /proc is unavailable, fall back to the
        // simulation's tracked per-device store bytes.
        rss_kb: peak_rss_kb().unwrap_or_else(|| sim.store_bytes() as f64 / 1024.0),
        final_accuracy: accuracy,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_autofl.json")
        .to_string();
    let sizes: &[usize] = if smoke {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let threads = rayon::current_num_threads();

    println!(
        "== fig_scale ({}, {ROUNDS} rounds, K=20, shards={SHARDS}, {threads} threads) ==",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:>10} {:>9} {:>10} {:>11} {:>10} {:>12} {:>9}",
        "devices", "dynamics", "setup_ms", "rounds_ms", "rounds/s", "peakRSS_kB", "accuracy"
    );

    // A multi-threaded sweep reports measured speedup against the
    // single-thread rows already merged into the out file (the
    // computation is bit-identical, so the ratio is pure scheduling).
    let baseline = read_bench_rows(&out_path);
    let mut rows = Vec::new();
    for &n in sizes {
        for dynamics in [false, true] {
            let row = run_scale(n, dynamics);
            println!(
                "{:>10} {:>9} {:>10.1} {:>11.1} {:>10.2} {:>12.0} {:>8.1}%",
                row.devices,
                if row.dynamics { "on" } else { "off" },
                row.setup_ms,
                row.rounds_ms,
                row.rounds_per_s,
                row.rss_kb,
                row.final_accuracy * 100.0
            );
            let speedup = baseline
                .iter()
                .find(|r| r.bench == row.bench && r.threads == 1 && threads > 1)
                .map(|base| base.wall_ms / row.rounds_ms.max(1e-9))
                .unwrap_or(1.0);
            rows.push(BenchRow {
                bench: row.bench,
                threads,
                wall_ms: row.rounds_ms,
                speedup,
                rounds_per_s: row.rounds_per_s,
                peak_rss_kb: row.rss_kb,
            });
        }
    }

    merge_bench_rows(&out_path, rows).expect("write bench json");
    println!("\nmerged rows into {out_path}");
}

//! Perf regression guard over `BENCH_autofl.json`.
//!
//! Compares a freshly measured bench file against the committed baseline
//! and exits non-zero when throughput regressed beyond the allowed drop:
//!
//! ```sh
//! cargo run --release -p autofl-bench --bin perf_guard -- \
//!     --baseline BENCH_autofl.json --current /tmp/BENCH_autofl.json \
//!     --bench fleet_scale_10k_rounds --max-drop 0.30
//! ```
//!
//! Only rows whose name matches `--bench` (prefix match, so
//! `fleet_scale` covers the whole `fig_scale` sweep) *and* that carry a
//! real `rounds_per_s` in **both** files are compared, per `threads`
//! value; kernel rows (`rounds_per_s == 0`) and rows present on only one
//! side (different machine parallelism) are skipped. The threshold is
//! deliberately loose — 30% by default — because CI runners are noisy;
//! the guard exists to catch structural regressions (an accidental O(N)
//! reintroduction), not scheduling jitter.
//!
//! Exit codes: `0` within threshold, `1` regression beyond `--max-drop`,
//! `2` unusable inputs (missing baseline/current file or no comparable
//! rows) — run `perf_report` to produce the files.

use autofl_bench::read_bench_rows;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path =
        arg_value(&args, "--baseline").unwrap_or_else(|| "BENCH_autofl.json".into());
    let current_path =
        arg_value(&args, "--current").unwrap_or_else(|| "/tmp/BENCH_autofl.json".into());
    let bench = arg_value(&args, "--bench").unwrap_or_else(|| "fleet_scale_10k_rounds".into());
    let max_drop: f64 = arg_value(&args, "--max-drop")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.30);

    let baseline = read_bench_rows(&baseline_path);
    let current = read_bench_rows(&current_path);
    // Missing inputs are a setup problem, not a perf regression: exit 2
    // so CI can tell "fix your pipeline" apart from "you got slower"
    // (exit 1) without parsing stderr.
    if baseline.is_empty() {
        eprintln!("perf_guard: no baseline rows at {baseline_path}; run perf_report to create one");
        std::process::exit(2);
    }
    if current.is_empty() {
        eprintln!("perf_guard: no fresh rows at {current_path}; run perf_report to create one");
        std::process::exit(2);
    }

    let mut compared = 0usize;
    let mut failures = Vec::new();
    for base in baseline
        .iter()
        .filter(|r| r.bench.starts_with(&bench) && r.rounds_per_s > 0.0)
    {
        let Some(now) = current
            .iter()
            .find(|r| r.bench == base.bench && r.threads == base.threads && r.rounds_per_s > 0.0)
        else {
            continue;
        };
        compared += 1;
        let floor = base.rounds_per_s * (1.0 - max_drop);
        let verdict = if now.rounds_per_s < floor {
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "{:<28} t{} baseline {:>10.1} r/s, now {:>10.1} r/s (floor {:>10.1}) {}",
            base.bench, base.threads, base.rounds_per_s, now.rounds_per_s, floor, verdict
        );
        if now.rounds_per_s < floor {
            failures.push(base.bench.clone());
        }
    }
    if compared == 0 {
        eprintln!(
            "perf_guard: no comparable rows matched --bench {bench}: baseline and current \
             must both carry rounds_per_s for at least one (bench, threads) pair"
        );
        std::process::exit(2);
    }
    if !failures.is_empty() {
        eprintln!(
            "perf_guard: {} bench(es) regressed more than {:.0}%: {}",
            failures.len(),
            max_drop * 100.0,
            failures.join(", ")
        );
        std::process::exit(1);
    }
    println!(
        "perf_guard: {compared} row(s) within {:.0}% of baseline",
        max_drop * 100.0
    );
}

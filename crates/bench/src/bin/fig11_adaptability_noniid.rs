//! Figure 11: AutoFL under data heterogeneity — Ideal IID through
//! Non-IID(100%). Data-blind baselines degrade or stall; AutoFL composes
//! balanced cohorts.

use autofl_bench::{comparison, print_rows, standard_registry, PAPER_POLICIES};
use autofl_data::partition::DataDistribution;
use autofl_fed::engine::Simulation;
use autofl_nn::zoo::Workload;

fn main() {
    let regimes = [
        ("(a) Ideal IID", DataDistribution::IidIdeal),
        ("(b) Non-IID (50%)", DataDistribution::non_iid_percent(50)),
        ("(c) Non-IID (75%)", DataDistribution::non_iid_percent(75)),
        ("(d) Non-IID (100%)", DataDistribution::non_iid_percent(100)),
    ];
    let registry = standard_registry();
    for (label, dist) in regimes {
        let cfg = Simulation::builder(Workload::CnnMnist)
            .distribution(dist)
            .max_rounds(1000)
            .build_config()
            .expect("valid figure configuration");
        let rows = comparison(&cfg, &registry, &PAPER_POLICIES);
        print_rows(&format!("Figure 11 {label}"), &rows);
    }
    println!("\npaper: AutoFL achieves 4.0x/5.5x/9.3x/7.3x PPW over FedAvg-Random across");
    println!("(a)-(d); at 75/100% the data-blind baselines fail to converge in 1000 rounds.");
}

//! Dropout study (extension figure 16): straggler-tolerant aggregation
//! under increasing mid-round dropout.
//!
//! Sweeps the fleet-dynamics churn rate and compares the engine's
//! straggler policies — `Drop` (cut at the deadline), `WaitBounded`
//! (bounded grace period) and `OverSelect` (provision `K + δ`
//! participants) — on best accuracy, convergence and global PPW.
//! `OverSelect` should recover the accuracy `Drop` loses at high dropout
//! rates, at the price of extra active energy.
//!
//! ```sh
//! cargo run --release -p autofl-bench --bin fig16_dropout
//! cargo run --release -p autofl-bench --bin fig16_dropout -- --smoke
//! ```

use autofl_bench::{par_sweep, standard_registry, Policy};
use autofl_device::scenario::VarianceScenario;
use autofl_fed::engine::SimConfig;
use autofl_fed::fleet::{FleetDynamics, StragglerPolicy};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rates: &[f64] = if smoke {
        &[0.0, 0.3]
    } else {
        &[0.0, 0.1, 0.25, 0.45]
    };
    let policy_names: &[&str] = if smoke {
        &["FedAvg-Random"]
    } else {
        &["FedAvg-Random", "AutoFL"]
    };
    let base = {
        let mut cfg = SimConfig::smoke(42);
        // Field-realistic runtime variance so the deadline actually
        // bites: WaitBounded and Drop only differ when stragglers exist.
        cfg.scenario = VarianceScenario::realistic();
        cfg.straggler_deadline_factor = 1.5;
        if smoke {
            cfg.max_rounds = 60;
            cfg.target_accuracy = Some(1.1); // fixed horizon: aligned rows
        }
        cfg
    };
    let stragglers = [
        StragglerPolicy::Drop,
        StragglerPolicy::WaitBounded { grace: 1.5 },
        StragglerPolicy::OverSelect {
            extra: base.params.num_participants / 4,
        },
    ];

    let registry = standard_registry();
    for name in policy_names {
        let policy = registry.expect(name);
        println!("\n== {name} under increasing mid-round dropout ==");
        println!(
            "{:<18} {:>6} {:>9} {:>10} {:>9} {:>9} {:>11}",
            "straggler", "rate", "best-acc", "converged", "dropouts", "misses", "PPW"
        );
        let mut runs: Vec<(SimConfig, &dyn Policy)> = Vec::new();
        let mut labels = Vec::new();
        for &rate in rates {
            for sp in stragglers {
                let mut cfg = base.clone();
                cfg.fleet = Some(FleetDynamics::with_dropout_rate(rate).straggler(sp));
                runs.push((cfg, policy));
                labels.push((rate, sp));
            }
        }
        let results = par_sweep(&runs);
        for ((rate, sp), result) in labels.iter().zip(&results) {
            let dropouts: usize = result.records.iter().map(|r| r.dropouts.len()).sum();
            let misses: usize = result.records.iter().map(|r| r.dropped.len()).sum();
            println!(
                "{:<18} {:>6.2} {:>8.1}% {:>10} {:>9} {:>9} {:>11.3e}",
                sp.name(),
                rate,
                result.best_accuracy() * 100.0,
                result
                    .converged_round()
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "no".into()),
                dropouts,
                misses,
                result.ppw_global(),
            );
        }
    }
    println!(
        "\nOverSelect provisions K+d so the surviving cohort stays near K as churn \
         grows; Drop shrinks the cohort and loses accuracy."
    );
}

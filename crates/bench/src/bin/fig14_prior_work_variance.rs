//! Figure 14: AutoFL vs FedNova/FEDL under (a) interference, (b) network
//! variance and (c) data heterogeneity.

use autofl_bench::{run_policy, standard_registry};
use autofl_data::partition::DataDistribution;
use autofl_device::scenario::VarianceScenario;
use autofl_fed::algorithms::AggregationAlgorithm;
use autofl_fed::engine::Simulation;
use autofl_nn::zoo::Workload;

fn main() {
    let regimes: [(&str, VarianceScenario, DataDistribution); 3] = [
        (
            "(a) interference",
            VarianceScenario::with_interference(),
            DataDistribution::IidIdeal,
        ),
        (
            "(b) network variance",
            VarianceScenario::weak_network(),
            DataDistribution::IidIdeal,
        ),
        (
            "(c) non-IID (75%)",
            VarianceScenario::calm(),
            DataDistribution::non_iid_percent(75),
        ),
    ];
    let registry = standard_registry();
    let random = registry.expect("FedAvg-Random");
    let autofl_policy = registry.expect("AutoFL");
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "regime", "FedNova", "FEDL", "AutoFL"
    );
    for (label, scenario, dist) in regimes {
        let builder = Simulation::builder(Workload::CnnMnist)
            .scenario(scenario)
            .distribution(dist)
            .max_rounds(800);
        let cfg = builder
            .clone()
            .build_config()
            .expect("valid figure configuration");
        let base = run_policy(&cfg, random).ppw_global().max(1e-300);
        let nova_cfg = builder
            .clone()
            .algorithm(AggregationAlgorithm::FedNova)
            .build_config()
            .expect("valid figure configuration");
        let nova = run_policy(&nova_cfg, random).ppw_global() / base;
        let fedl_cfg = builder
            .algorithm(AggregationAlgorithm::Fedl { eta: 0.1 })
            .build_config()
            .expect("valid figure configuration");
        let fedl = run_policy(&fedl_cfg, random).ppw_global() / base;
        let autofl = run_policy(&cfg, autofl_policy).ppw_global() / base;
        println!(
            "{:<22} {:>9.2}x {:>9.2}x {:>9.2}x",
            label, nova, fedl, autofl
        );
    }
    println!("\npaper: AutoFL outperforms FedNova/FEDL by 62.7%/48.8% under variance and");
    println!("stays near-optimal under data heterogeneity.");
}

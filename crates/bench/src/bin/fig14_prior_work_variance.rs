//! Figure 14: AutoFL vs FedNova/FEDL under (a) interference, (b) network
//! variance and (c) data heterogeneity.

use autofl_bench::{run_policy, Policy};
use autofl_data::partition::DataDistribution;
use autofl_device::scenario::VarianceScenario;
use autofl_fed::algorithms::AggregationAlgorithm;
use autofl_fed::engine::SimConfig;
use autofl_nn::zoo::Workload;

fn main() {
    let regimes: [(&str, VarianceScenario, DataDistribution); 3] = [
        (
            "(a) interference",
            VarianceScenario::with_interference(),
            DataDistribution::IidIdeal,
        ),
        (
            "(b) network variance",
            VarianceScenario::weak_network(),
            DataDistribution::IidIdeal,
        ),
        (
            "(c) non-IID (75%)",
            VarianceScenario::calm(),
            DataDistribution::non_iid_percent(75),
        ),
    ];
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "regime", "FedNova", "FEDL", "AutoFL"
    );
    for (label, scenario, dist) in regimes {
        let mut cfg = SimConfig::paper_default(Workload::CnnMnist);
        cfg.scenario = scenario;
        cfg.distribution = dist;
        cfg.max_rounds = 800;
        let base = run_policy(&cfg, Policy::Random).ppw_global().max(1e-300);
        let mut nova_cfg = cfg.clone();
        nova_cfg.algorithm = AggregationAlgorithm::FedNova;
        let nova = run_policy(&nova_cfg, Policy::Random).ppw_global() / base;
        let mut fedl_cfg = cfg.clone();
        fedl_cfg.algorithm = AggregationAlgorithm::Fedl { eta: 0.1 };
        let fedl = run_policy(&fedl_cfg, Policy::Random).ppw_global() / base;
        let autofl = run_policy(&cfg, Policy::AutoFl).ppw_global() / base;
        println!(
            "{:<22} {:>9.2}x {:>9.2}x {:>9.2}x",
            label, nova, fedl, autofl
        );
    }
    println!("\npaper: AutoFL outperforms FedNova/FEDL by 62.7%/48.8% under variance and");
    println!("stays near-optimal under data heterogeneity.");
}

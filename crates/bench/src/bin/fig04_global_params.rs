//! Figure 4: the optimal cluster of participants (Table 4's C1–C7) shifts
//! with the FL global parameters S1–S4, and differs between CNN-MNIST and
//! LSTM-Shakespeare.

use autofl_bench::run_policy;
use autofl_bench::Policy;
use autofl_fed::clusters::CharacterizationCluster;
use autofl_fed::engine::{SimConfig, Simulation};
use autofl_fed::selection::ClusterSelector;
use autofl_fed::GlobalParams;
use autofl_nn::zoo::Workload;

fn main() {
    for workload in [Workload::CnnMnist, Workload::LstmShakespeare] {
        println!("\n=== Figure 4: {} ===", workload.name());
        println!(
            "{:<8} {}",
            "setting",
            CharacterizationCluster::fixed()
                .iter()
                .map(|c| format!("{:>7}", c.name()))
                .collect::<String>()
        );
        for (label, params) in GlobalParams::paper_settings() {
            let mut cfg = SimConfig::paper_default(workload);
            cfg.params = params;
            cfg.max_rounds = 400;
            let base = run_policy(&cfg, Policy::Random).ppw_global().max(1e-300);
            let mut line = format!("{:<8}", label);
            let mut best = ("C?", 0.0f64);
            for cluster in CharacterizationCluster::fixed() {
                let r = Simulation::new(cfg.clone()).run(&mut ClusterSelector::new(cluster));
                let gain = r.ppw_global() / base;
                if gain > best.1 {
                    best = (cluster.name(), gain);
                }
                line += &format!("{:>6.2}x", gain);
            }
            println!("{line}   <- optimal: {}", best.0);
        }
    }
    println!("\npaper: CNN-MNIST optimal shifts C1->C2->C3->C4 over S1->S4;");
    println!("LSTM-Shakespeare prefers C3/C4/C5 (mid/low-end viable when memory-bound).");
}

//! Figure 4: the optimal cluster of participants (Table 4's C1–C7) shifts
//! with the FL global parameters S1–S4, and differs between CNN-MNIST and
//! LSTM-Shakespeare.

use autofl_bench::run_policy;
use autofl_bench::Policy;
use autofl_fed::clusters::CharacterizationCluster;
use autofl_fed::engine::{SimConfig, Simulation};
use autofl_fed::selection::ClusterSelector;
use autofl_fed::GlobalParams;
use autofl_nn::zoo::Workload;
use rayon::prelude::*;

fn main() {
    for workload in [Workload::CnnMnist, Workload::LstmShakespeare] {
        println!("\n=== Figure 4: {} ===", workload.name());
        println!(
            "{:<8} {}",
            "setting",
            CharacterizationCluster::fixed()
                .iter()
                .map(|c| format!("{:>7}", c.name()))
                .collect::<String>()
        );
        for (label, params) in GlobalParams::paper_settings() {
            let mut cfg = SimConfig::paper_default(workload);
            cfg.params = params;
            cfg.max_rounds = 400;
            // The baseline and every cluster run are independent
            // simulations: fan the whole row out across the pool and
            // reduce in cluster order afterwards.
            let clusters = CharacterizationCluster::fixed();
            let base_and_gains: Vec<f64> = (0..clusters.len() + 1)
                .into_par_iter()
                .map(|i| {
                    if i == 0 {
                        run_policy(&cfg, Policy::Random).ppw_global().max(1e-300)
                    } else {
                        Simulation::new(cfg.clone())
                            .run(&mut ClusterSelector::new(clusters[i - 1]))
                            .ppw_global()
                    }
                })
                .collect();
            let base = base_and_gains[0];
            let mut line = format!("{:<8}", label);
            let mut best = ("C?", 0.0f64);
            for (cluster, ppw) in clusters.iter().zip(&base_and_gains[1..]) {
                let gain = ppw / base;
                if gain > best.1 {
                    best = (cluster.name(), gain);
                }
                line += &format!("{:>6.2}x", gain);
            }
            println!("{line}   <- optimal: {}", best.0);
        }
    }
    println!("\npaper: CNN-MNIST optimal shifts C1->C2->C3->C4 over S1->S4;");
    println!("LSTM-Shakespeare prefers C3/C4/C5 (mid/low-end viable when memory-bound).");
}

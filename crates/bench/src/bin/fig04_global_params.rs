//! Figure 4: the optimal cluster of participants (Table 4's C1–C7) shifts
//! with the FL global parameters S1–S4, and differs between CNN-MNIST and
//! LSTM-Shakespeare.
//!
//! The whole figure is also expressible as spec files (one per S-setting)
//! listing `["FedAvg-Random", "C1", …, "C7"]` — see
//! `tests/specs/fig04_s3_cnn.json` and the `spec_run` binary.

use autofl_bench::{par_sweep, standard_registry, Policy};
use autofl_fed::clusters::CharacterizationCluster;
use autofl_fed::engine::{SimConfig, Simulation};
use autofl_fed::GlobalParams;
use autofl_nn::zoo::Workload;

fn main() {
    let registry = standard_registry();
    let clusters = CharacterizationCluster::fixed();
    for workload in [Workload::CnnMnist, Workload::LstmShakespeare] {
        println!("\n=== Figure 4: {} ===", workload.name());
        println!(
            "{:<8} {}",
            "setting",
            clusters
                .iter()
                .map(|c| format!("{:>7}", c.name()))
                .collect::<String>()
        );
        for (label, params) in GlobalParams::paper_settings() {
            let cfg = Simulation::builder(workload)
                .params(params)
                .max_rounds(400)
                .build_config()
                .expect("valid figure configuration");
            // The baseline and every cluster run are independent
            // simulations: fan the whole row out across the pool and
            // reduce in cluster order afterwards.
            let runs: Vec<(SimConfig, &dyn Policy)> =
                std::iter::once(registry.expect("FedAvg-Random"))
                    .chain(clusters.iter().map(|c| registry.expect(c.name())))
                    .map(|p| (cfg.clone(), p))
                    .collect();
            let ppws: Vec<f64> = par_sweep(&runs).iter().map(|r| r.ppw_global()).collect();
            let base = ppws[0].max(1e-300);
            let mut line = format!("{:<8}", label);
            let mut best = ("C?", 0.0f64);
            for (cluster, ppw) in clusters.iter().zip(&ppws[1..]) {
                let gain = ppw / base;
                if gain > best.1 {
                    best = (cluster.name(), gain);
                }
                line += &format!("{:>6.2}x", gain);
            }
            println!("{line}   <- optimal: {}", best.0);
        }
    }
    println!("\npaper: CNN-MNIST optimal shifts C1->C2->C3->C4 over S1->S4;");
    println!("LSTM-Shakespeare prefers C3/C4/C5 (mid/low-end viable when memory-bound).");
}

//! Executes a declarative [`ExperimentSpec`] JSON file against the
//! standard policy registry and prints the normalised comparison rows the
//! figure binaries report — every figure row is reproducible from a
//! checked-in file instead of code.
//!
//! ```sh
//! cargo run --release -p autofl-bench --bin spec_run -- tests/specs/fig04_s3_cnn.json
//! cargo run --release -p autofl-bench --bin spec_run -- spec.json --trace rounds.jsonl
//! ```
//!
//! `--trace FILE` additionally re-runs the spec's *first* policy at the
//! first repeat's seed with a JSONL round sink attached, writing one JSON
//! object per round for offline analysis.

use autofl_bench::{print_rows, standard_registry, Row};
use autofl_fed::observe::JsonlSink;
use autofl_fed::policy::run_policy_observed;
use autofl_fed::spec::ExperimentSpec;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: spec_run <spec.json> [--trace <rounds.jsonl>]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(spec_path) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage();
    };
    let trace_path = match args.iter().position(|a| a == "--trace") {
        Some(i) => match args.get(i + 1) {
            Some(p) => Some(p.clone()),
            None => return usage(),
        },
        None => None,
    };

    let text = match std::fs::read_to_string(spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("spec_run: cannot read {spec_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match ExperimentSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("spec_run: {spec_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "== spec `{}`: {} on {} devices, {} polic{}, {} repeat{} ==",
        spec.name,
        spec.config.workload.name(),
        spec.config.num_devices,
        spec.policies.len(),
        if spec.policies.len() == 1 { "y" } else { "ies" },
        spec.repeats,
        if spec.repeats == 1 { "" } else { "s" },
    );

    let registry = standard_registry();
    let runs = match spec.run(&registry) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("spec_run: {spec_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // `ExperimentSpec::run` returns repeat-major groups in policy order;
    // normalise each repeat against its own first policy, like the figure
    // binaries do.
    for (repeat, chunk) in runs.chunks(spec.policies.len()).enumerate() {
        let results: Vec<_> = chunk.iter().map(|r| &r.result).collect();
        let rows = Row::normalised(&results);
        print_rows(
            &format!("{} (repeat {repeat}, seed {})", spec.name, chunk[0].seed),
            &rows,
        );
    }

    if let Some(path) = trace_path {
        // `spec.run` already resolved every policy name, so a miss here
        // is unreachable in practice — but a registry change between the
        // two lookups should fail cleanly, not panic.
        let Some(policy) = registry.get(&spec.policies[0]) else {
            eprintln!(
                "spec_run: policy `{}` vanished from the registry",
                spec.policies[0]
            );
            return ExitCode::FAILURE;
        };
        let file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("spec_run: cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut sink = JsonlSink::new(std::io::BufWriter::new(file));
        let result = match run_policy_observed(&spec.config, policy, &mut [&mut sink]) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("spec_run: trace write to {path} failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "\ntraced {} rounds of {} into {path}",
            result.records.len(),
            result.policy
        );
    }
    ExitCode::SUCCESS
}

//! Communication-efficiency study: the accuracy-vs-bytes-uplinked Pareto
//! front per update codec × selection policy.
//!
//! Every cell attaches a network fabric (`autofl_fed::fabric`) with an
//! ideal link (zero latency, zero loss) so differences are attributable
//! to the codec alone, on the paper's weak-network scenario — where
//! communication energy is a visible share of the Eq. 3 budget and
//! compression savings surface in PPW. Reported per cell: final
//! accuracy, total megabytes uplinked, the uplink reduction versus the
//! uncompressed control, and global/local PPW.
//!
//! The `identity` row is the control: a fabric whose codec uploads the
//! full f32 payload is bit-identical to no fabric at all (pinned by
//! `tests/network_fabric.rs`), so its accuracy IS the uncompressed
//! baseline's.
//!
//! ```sh
//! cargo run --release -p autofl-bench --bin fig_comm             # full sweep
//! cargo run --release -p autofl-bench --bin fig_comm -- --smoke  # CI scale
//! ```
//!
//! Deterministic in the seed; `--smoke` additionally asserts the
//! acceptance envelope (≥ 5x uplink reduction for the sparsifying codecs
//! at ≤ 2pp accuracy loss, PPW no worse).

use autofl_core::AutoFl;
use autofl_fed::engine::{SimConfig, Simulation};
use autofl_fed::fabric::{CodecSpec, LinkModel, NetworkFabric};
use autofl_fed::selection::{RandomSelector, Selector};
use autofl_nn::zoo::Workload;

fn base_config(smoke: bool) -> SimConfig {
    let mut cfg = if smoke {
        SimConfig::smoke(42)
    } else {
        let mut cfg = SimConfig::paper_default(Workload::CnnMnist);
        cfg.num_devices = 200;
        cfg.samples_per_device = 120;
        cfg.test_samples = 256;
        cfg
    };
    cfg.scenario = autofl_device::scenario::VarianceScenario::weak_network();
    cfg.max_rounds = if smoke { 150 } else { 250 };
    cfg.target_accuracy = Some(1.1); // fixed horizon: aligned Pareto points
    cfg
}

/// The codec sweep: `None` is the periodic-full-sync cadence.
fn codecs(smoke: bool) -> Vec<(&'static str, CodecSpec, Option<usize>)> {
    let mut all = vec![
        ("identity", CodecSpec::Identity, None),
        ("top-k 10%", CodecSpec::TopK { k_frac: 0.1 }, None),
        ("int8", CodecSpec::Int8Quant, None),
        ("top-k+int8 10%", CodecSpec::TopKInt8 { k_frac: 0.1 }, None),
    ];
    if !smoke {
        all.push((
            "top-k 10% sync/10",
            CodecSpec::TopK { k_frac: 0.1 },
            Some(10),
        ));
    }
    all
}

struct Cell {
    codec: &'static str,
    policy: &'static str,
    accuracy: f64,
    uplink_bytes: u64,
    ppw_global: f64,
    ppw_local: f64,
}

impl Cell {
    fn uplink_mb(&self) -> f64 {
        self.uplink_bytes as f64 / 1e6
    }
}

fn run_cell(
    base: &SimConfig,
    codec: CodecSpec,
    full_sync: Option<usize>,
    codec_label: &'static str,
    policy: &'static str,
) -> Cell {
    let mut fabric = NetworkFabric::new(LinkModel::ideal()).with_codec(codec);
    if let Some(every) = full_sync {
        fabric = fabric.with_full_sync(every);
    }
    let mut cfg = base.clone();
    cfg.network = Some(fabric);
    let mut sim = Simulation::new(cfg);
    let mut selector: Box<dyn Selector> = match policy {
        "random" => Box::new(RandomSelector::new()),
        _ => Box::new(AutoFl::paper_default()),
    };
    let result = sim.run(selector.as_mut());
    let uplink_bytes: u64 = result
        .records
        .iter()
        .map(|r| r.net.expect("fabric attached").bytes_uplinked)
        .sum();
    Cell {
        codec: codec_label,
        policy,
        accuracy: result.final_accuracy(),
        uplink_bytes,
        ppw_global: result.ppw_global(),
        ppw_local: result.ppw_local(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let base = base_config(smoke);
    println!(
        "== fig_comm ({}, {} devices, K={}, {} rounds, weak-network scenario) ==",
        if smoke { "smoke" } else { "full" },
        base.num_devices,
        base.params.num_participants,
        base.max_rounds,
    );
    println!(
        "{:<20} {:<8} {:>9} {:>11} {:>10} {:>11} {:>11}",
        "codec", "policy", "accuracy", "uplink-MB", "reduction", "ppw-G/MJ", "ppw-L/MJ"
    );

    let policies: &[&'static str] = if smoke {
        &["random"]
    } else {
        &["random", "autofl"]
    };
    for &policy in policies {
        let mut cells = Vec::new();
        for (label, codec, full_sync) in codecs(smoke) {
            cells.push(run_cell(&base, codec, full_sync, label, policy));
        }
        let control = &cells[0];
        let (base_acc, base_bytes, base_ppw_l, base_ppw_g) = (
            control.accuracy,
            control.uplink_bytes,
            control.ppw_local,
            control.ppw_global,
        );
        let reduction_of = |cell: &Cell| base_bytes as f64 / (cell.uplink_bytes.max(1) as f64);
        for cell in &cells {
            let reduction = reduction_of(cell);
            println!(
                "{:<20} {:<8} {:>8.1}% {:>11.1} {:>9.1}x {:>11.4} {:>11.4}",
                cell.codec,
                cell.policy,
                cell.accuracy * 100.0,
                cell.uplink_mb(),
                reduction,
                cell.ppw_global * 1e6,
                cell.ppw_local * 1e6,
            );
            assert!(
                cell.accuracy.is_finite() && cell.accuracy > 0.0,
                "degenerate run in cell {}/{}",
                cell.codec,
                cell.policy
            );
        }

        if smoke && policy == "random" {
            // The acceptance envelope, pinned in CI at smoke scale.
            let by_name = |name: &str| {
                cells
                    .iter()
                    .find(|c| c.codec == name)
                    .expect("codec in sweep")
            };
            for name in ["top-k 10%", "top-k+int8 10%"] {
                let cell = by_name(name);
                let reduction = reduction_of(cell);
                assert!(
                    reduction >= 5.0,
                    "{name}: uplink reduction {reduction:.2}x < 5x"
                );
                let loss_pp = (base_acc - cell.accuracy) * 100.0;
                assert!(loss_pp <= 2.0, "{name}: accuracy loss {loss_pp:.2}pp > 2pp");
                assert!(
                    cell.ppw_local >= base_ppw_l && cell.ppw_global >= base_ppw_g * 0.999,
                    "{name}: compression must not cost PPW \
                     (local {:.4} vs {:.4}, global {:.4} vs {:.4})",
                    cell.ppw_local,
                    base_ppw_l,
                    cell.ppw_global,
                    base_ppw_g
                );
            }
            let int8 = by_name("int8");
            assert!(
                reduction_of(int8) >= 3.9,
                "int8: uplink reduction {:.2}x below its 4x design ratio",
                reduction_of(int8)
            );
            assert!(
                (base_acc - int8.accuracy) * 100.0 <= 2.0,
                "int8: accuracy loss above 2pp"
            );
            println!("smoke acceptance checks passed");
        }
    }

    println!(
        "\nSparsifying codecs trade a calibrated sliver of update quality \
         for 5-8x less uplink; on weak-signal fleets the saved Eq. 3 \
         communication energy lifts performance-per-watt at matched accuracy."
    );
}

//! Figure 5: runtime variance moves the optimal cluster — C3-ish when
//! calm, toward high-end (C1) under interference, toward low-power (C5)
//! under weak network signal.

use autofl_bench::{par_sweep, standard_registry, Policy};
use autofl_device::scenario::VarianceScenario;
use autofl_fed::clusters::CharacterizationCluster;
use autofl_fed::engine::{SimConfig, Simulation};
use autofl_nn::zoo::Workload;

fn main() {
    let regimes = [
        ("(a) no variance", VarianceScenario::calm()),
        ("(b) interference", VarianceScenario::with_interference()),
        ("(c) weak network", VarianceScenario::weak_network()),
    ];
    let registry = standard_registry();
    let clusters = CharacterizationCluster::fixed();
    println!(
        "{:<18} {}",
        "regime",
        clusters
            .iter()
            .map(|c| format!("{:>7}", c.name()))
            .collect::<String>()
    );
    for (label, scenario) in regimes {
        let cfg = Simulation::builder(Workload::CnnMnist)
            .scenario(scenario)
            .max_rounds(400)
            .build_config()
            .expect("valid figure configuration");
        // Baseline + all clusters are independent runs: fan the row out
        // across the pool and reduce in cluster order.
        let runs: Vec<(SimConfig, &dyn Policy)> = std::iter::once(registry.expect("FedAvg-Random"))
            .chain(clusters.iter().map(|c| registry.expect(c.name())))
            .map(|p| (cfg.clone(), p))
            .collect();
        let ppws: Vec<f64> = par_sweep(&runs).iter().map(|r| r.ppw_global()).collect();
        let base = ppws[0].max(1e-300);
        let mut line = format!("{:<18}", label);
        let mut best = ("C?", 0.0f64);
        for (cluster, ppw) in clusters.iter().zip(&ppws[1..]) {
            let gain = ppw / base;
            if gain > best.1 {
                best = (cluster.name(), gain);
            }
            line += &format!("{:>6.2}x", gain);
        }
        println!("{line}   <- optimal: {}", best.0);
    }
    println!("\npaper: optimal shifts C3 (calm) -> C1 (interference) -> C5 (weak network).");
}

//! Figure 5: runtime variance moves the optimal cluster — C3-ish when
//! calm, toward high-end (C1) under interference, toward low-power (C5)
//! under weak network signal.

use autofl_bench::{run_policy, Policy};
use autofl_device::scenario::VarianceScenario;
use autofl_fed::clusters::CharacterizationCluster;
use autofl_fed::engine::{SimConfig, Simulation};
use autofl_fed::selection::ClusterSelector;
use autofl_nn::zoo::Workload;
use rayon::prelude::*;

fn main() {
    let regimes = [
        ("(a) no variance", VarianceScenario::calm()),
        ("(b) interference", VarianceScenario::with_interference()),
        ("(c) weak network", VarianceScenario::weak_network()),
    ];
    println!(
        "{:<18} {}",
        "regime",
        CharacterizationCluster::fixed()
            .iter()
            .map(|c| format!("{:>7}", c.name()))
            .collect::<String>()
    );
    for (label, scenario) in regimes {
        let mut cfg = SimConfig::paper_default(Workload::CnnMnist);
        cfg.scenario = scenario;
        cfg.max_rounds = 400;
        // Baseline + all clusters are independent runs: fan the row out
        // across the pool and reduce in cluster order.
        let clusters = CharacterizationCluster::fixed();
        let ppws: Vec<f64> = (0..clusters.len() + 1)
            .into_par_iter()
            .map(|i| {
                if i == 0 {
                    run_policy(&cfg, Policy::Random).ppw_global().max(1e-300)
                } else {
                    Simulation::new(cfg.clone())
                        .run(&mut ClusterSelector::new(clusters[i - 1]))
                        .ppw_global()
                }
            })
            .collect();
        let base = ppws[0];
        let mut line = format!("{:<18}", label);
        let mut best = ("C?", 0.0f64);
        for (cluster, ppw) in clusters.iter().zip(&ppws[1..]) {
            let gain = ppw / base;
            if gain > best.1 {
                best = (cluster.name(), gain);
            }
            line += &format!("{:>6.2}x", gain);
        }
        println!("{line}   <- optimal: {}", best.0);
    }
    println!("\npaper: optimal shifts C3 (calm) -> C1 (interference) -> C5 (weak network).");
}

//! Figure 6: (a) convergence curves under increasing data heterogeneity;
//! (b) the >85% energy-efficiency gap between ideal and data-blind
//! selection under non-IID data.

use autofl_bench::{par_sweep, standard_registry, Policy};
use autofl_data::partition::DataDistribution;
use autofl_fed::engine::{SimConfig, Simulation};
use autofl_nn::zoo::Workload;

fn main() {
    let regimes = [
        DataDistribution::IidIdeal,
        DataDistribution::non_iid_percent(50),
        DataDistribution::non_iid_percent(75),
        DataDistribution::non_iid_percent(100),
    ];
    let registry = standard_registry();
    let random = registry.expect("FedAvg-Random");
    let oracle = registry.expect("O_FL");
    // Three independent runs per regime (full curve, random PPW, oracle
    // PPW): build the whole sweep up front and fan it out across the
    // pool; results come back in input order.
    let mut runs: Vec<(SimConfig, &dyn Policy)> = Vec::new();
    for dist in regimes {
        let base = Simulation::builder(Workload::CnnMnist)
            .distribution(dist)
            .max_rounds(600);
        let curve_cfg = base
            .clone()
            .target_accuracy(1.1) // never stop early: record full curve
            .build_config()
            .expect("valid figure configuration");
        let cfg = base.build_config().expect("valid figure configuration");
        runs.push((curve_cfg, random));
        runs.push((cfg.clone(), random));
        runs.push((cfg, oracle));
    }
    let results = par_sweep(&runs);

    println!("=== Figure 6(a): accuracy over rounds, FedAvg-Random ===");
    println!(
        "{:<16} {}",
        "distribution",
        (0..=6)
            .map(|i| format!("r{:<6}", i * 100))
            .collect::<String>()
    );
    let mut ppw = Vec::new();
    for (dist, chunk) in regimes.iter().zip(results.chunks(3)) {
        let (curve, rand, oracle) = (&chunk[0], &chunk[1], &chunk[2]);
        let mut line = format!("{:<16}", dist.label());
        for i in 0..=6 {
            let round = (i * 100).min(curve.records.len() - 1);
            line += &format!("{:>5.1}% ", curve.records[round].accuracy * 100.0);
        }
        println!("{line}");
        // (b): PPW of random vs oracle selection under this distribution.
        ppw.push((
            dist.label(),
            rand.ppw_global() / oracle.ppw_global().max(1e-300),
        ));
    }
    println!("\n=== Figure 6(b): FedAvg-Random PPW as a fraction of ideal selection ===");
    for (label, frac) in ppw {
        println!("{:<16} {:>5.1}% of ideal", label, frac * 100.0);
    }
    println!("\npaper: non-IID defers convergence; random selection leaves >85% of the");
    println!("energy efficiency of ideal selection on the table under heavy non-IID.");
}

//! Adversarial-robustness study: accuracy and PPW per aggregation rule ×
//! adversarial fraction.
//!
//! Every cell seeds the fleet with a mixed adversary
//! (`autofl_fed::adversary`): half label-flipping poisoners, half
//! scaled-gradient attackers, driven on dedicated tagged RNG streams so
//! the sweep is bit-reproducible at any thread or shard count. The
//! linear FedAvg baseline averages the poisoned mass straight into the
//! global model; the order-statistics rules (coordinate-wise median,
//! trimmed mean, Krum) discard it and should hold their clean-fleet
//! accuracy.
//!
//! The `0%` column is the control: with an adversarial fraction of zero
//! every role lands on Honest and each rule reports its clean accuracy.
//!
//! ```sh
//! cargo run --release -p autofl-bench --bin fig_adv             # full sweep
//! cargo run --release -p autofl-bench --bin fig_adv -- --smoke  # CI scale
//! ```
//!
//! Deterministic in the seed; `--smoke` additionally asserts the
//! acceptance envelope (at a 30% adversarial fraction at least one
//! robust rule beats FedAvg by ≥ 2pp and recovers to within 5pp of its
//! own clean accuracy).

use autofl_fed::adversary::AdversaryConfig;
use autofl_fed::algorithms::AggregationAlgorithm;
use autofl_fed::engine::{SimConfig, Simulation};
use autofl_fed::selection::{RandomSelector, Selector};
use autofl_nn::zoo::Workload;

fn base_config(smoke: bool) -> SimConfig {
    let mut cfg = if smoke {
        SimConfig::smoke(42)
    } else {
        let mut cfg = SimConfig::paper_default(Workload::CnnMnist);
        cfg.num_devices = 200;
        cfg.samples_per_device = 120;
        cfg.test_samples = 256;
        cfg
    };
    cfg.max_rounds = if smoke { 150 } else { 250 };
    cfg.target_accuracy = Some(1.1); // fixed horizon: aligned comparisons
    cfg
}

fn rules() -> Vec<(&'static str, AggregationAlgorithm)> {
    vec![
        ("fedavg", AggregationAlgorithm::FedAvg),
        ("median", AggregationAlgorithm::Median),
        (
            "trimmed 20%",
            AggregationAlgorithm::TrimmedMean { trim: 0.2 },
        ),
        ("krum", AggregationAlgorithm::Krum),
    ]
}

struct Cell {
    rule: &'static str,
    fraction: f64,
    accuracy: f64,
    ppw_global: f64,
    flagged: usize,
}

fn run_cell(base: &SimConfig, rule: AggregationAlgorithm, label: &'static str, frac: f64) -> Cell {
    let mut cfg = base.clone();
    cfg.algorithm = rule;
    cfg.adversary = (frac > 0.0).then(|| AdversaryConfig::mixed(frac));
    let mut sim = Simulation::new(cfg);
    let mut selector = RandomSelector::new();
    let result = sim.run(&mut selector as &mut dyn Selector);
    let flagged = result
        .records
        .iter()
        .map(|r| r.flagged.unwrap_or(0))
        .sum::<usize>();
    Cell {
        rule: label,
        fraction: frac,
        accuracy: result.final_accuracy(),
        ppw_global: result.ppw_global(),
        flagged,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let base = base_config(smoke);
    println!(
        "== fig_adv ({}, {} devices, K={}, {} rounds, mixed poisoner/scaler fleet) ==",
        if smoke { "smoke" } else { "full" },
        base.num_devices,
        base.params.num_participants,
        base.max_rounds,
    );
    println!(
        "{:<14} {:>9} {:>9} {:>11} {:>9}",
        "rule", "adv-frac", "accuracy", "ppw-G/MJ", "flagged"
    );

    let fractions: &[f64] = if smoke { &[0.0, 0.3] } else { &[0.0, 0.1, 0.3] };
    let mut cells: Vec<Cell> = Vec::new();
    for (label, rule) in rules() {
        for &frac in fractions {
            let cell = run_cell(&base, rule, label, frac);
            println!(
                "{:<14} {:>8.0}% {:>8.1}% {:>11.4} {:>9}",
                cell.rule,
                cell.fraction * 100.0,
                cell.accuracy * 100.0,
                cell.ppw_global * 1e6,
                cell.flagged,
            );
            assert!(
                cell.accuracy.is_finite() && cell.accuracy > 0.0,
                "degenerate run in cell {}/{}",
                cell.rule,
                cell.fraction
            );
            cells.push(cell);
        }
    }

    if smoke {
        // The acceptance envelope, pinned in CI at smoke scale.
        let at = |rule: &str, frac: f64| {
            cells
                .iter()
                .find(|c| c.rule == rule && c.fraction == frac)
                .expect("cell in sweep")
        };
        let fedavg_poisoned = at("fedavg", 0.3).accuracy;
        let fedavg_drop_pp = (at("fedavg", 0.0).accuracy - fedavg_poisoned) * 100.0;
        assert!(
            fedavg_drop_pp >= 2.0,
            "FedAvg must visibly degrade under a 30% mixed adversary, \
             dropped only {fedavg_drop_pp:.2}pp"
        );
        let mut recovered = 0usize;
        for rule in ["median", "trimmed 20%", "krum"] {
            let clean = at(rule, 0.0).accuracy;
            let poisoned = at(rule, 0.3).accuracy;
            let margin_pp = (poisoned - fedavg_poisoned) * 100.0;
            let self_drop_pp = (clean - poisoned) * 100.0;
            if margin_pp >= 2.0 && self_drop_pp <= 5.0 {
                recovered += 1;
            }
            println!(
                "{rule}: +{margin_pp:.2}pp over poisoned FedAvg, \
                 {self_drop_pp:.2}pp below own clean run"
            );
        }
        assert!(
            recovered >= 1,
            "no robust rule beat poisoned FedAvg by >= 2pp while staying \
             within 5pp of its clean accuracy"
        );
        println!("smoke acceptance checks passed");
    }

    println!(
        "\nLinear averaging folds every poisoned or scaled update straight \
         into the global model; the order-statistics rules pay a small \
         clean-fleet accuracy premium to cap the damage any minority of \
         compromised devices can do."
    );
}

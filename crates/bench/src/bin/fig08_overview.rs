//! Figure 8: the headline result — PPW, convergence time and accuracy of
//! AutoFL vs all baselines on the three FL use cases, in a realistic
//! edge environment (mixed runtime variance, Non-IID(50%) data).

use autofl_bench::{comparison, print_rows, standard_registry, PAPER_POLICIES};
use autofl_data::partition::DataDistribution;
use autofl_device::scenario::VarianceScenario;
use autofl_fed::engine::Simulation;
use autofl_nn::zoo::Workload;

fn main() {
    let registry = standard_registry();
    for workload in Workload::paper_workloads() {
        let cfg = Simulation::builder(workload)
            .scenario(VarianceScenario::realistic())
            .distribution(DataDistribution::non_iid_percent(50))
            .max_rounds(800)
            .build_config()
            .expect("valid figure configuration");
        let rows = comparison(&cfg, &registry, &PAPER_POLICIES);
        print_rows(&format!("Figure 8: {}", workload.name()), &rows);
    }
    println!("\npaper: AutoFL reaches 4.0x / 3.7x / 5.1x PPW over FedAvg-Random on");
    println!("CNN-MNIST / LSTM-Shakespeare / MobileNet-ImageNet, close to O_FL.");
}

//! Figure 1: judicious participant/target selection improves PPW by up to
//! ~5x over random selection (CNN-MNIST, S3, realistic edge conditions).

use autofl_bench::{comparison, print_rows, Policy};
use autofl_data::partition::DataDistribution;
use autofl_device::scenario::VarianceScenario;
use autofl_fed::engine::SimConfig;
use autofl_nn::zoo::Workload;

fn main() {
    let mut cfg = SimConfig::paper_default(Workload::CnnMnist);
    // The motivation figure measures an in-the-field deployment: mixed
    // interference/network variance and partially non-IID data.
    cfg.scenario = VarianceScenario::realistic();
    cfg.distribution = DataDistribution::non_iid_percent(50);
    cfg.max_rounds = 700;
    let rows = comparison(
        &cfg,
        &[Policy::Random, Policy::Performance, Policy::OracleFull],
    );
    print_rows(
        "Figure 1: PPW of judicious selection vs FedAvg-Random",
        &rows,
    );
    println!(
        "\npaper: Performance and O_FL reach up to 5.4x PPW and 4.2x convergence over random."
    );
}

//! Figure 1: judicious participant/target selection improves PPW by up to
//! ~5x over random selection (CNN-MNIST, S3, realistic edge conditions).

use autofl_bench::{comparison, print_rows, standard_registry};
use autofl_data::partition::DataDistribution;
use autofl_device::scenario::VarianceScenario;
use autofl_fed::engine::Simulation;
use autofl_nn::zoo::Workload;

fn main() {
    // The motivation figure measures an in-the-field deployment: mixed
    // interference/network variance and partially non-IID data.
    let cfg = Simulation::builder(Workload::CnnMnist)
        .scenario(VarianceScenario::realistic())
        .distribution(DataDistribution::non_iid_percent(50))
        .max_rounds(700)
        .build_config()
        .expect("valid figure configuration");
    let registry = standard_registry();
    let rows = comparison(&cfg, &registry, &["FedAvg-Random", "Performance", "O_FL"]);
    print_rows(
        "Figure 1: PPW of judicious selection vs FedAvg-Random",
        &rows,
    );
    println!(
        "\npaper: Performance and O_FL reach up to 5.4x PPW and 4.2x convergence over random."
    );
}

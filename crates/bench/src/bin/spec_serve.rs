//! The checkpoint/resume experiment daemon over a queue directory of
//! [`autofl_fed::spec::ExperimentSpec`] JSON files.
//!
//! ```sh
//! cargo run --release -p autofl-bench --bin spec_serve -- --root runs --once
//! cp tests/specs/smoke.json runs/queue/   # then: watch runs/done/
//! ```
//!
//! Jobs move `queue/<job>.json` → `active/<job>/` → `done/<job>/`; each
//! `(policy, repeat)` unit streams `traces/<policy>-r<i>.jsonl` and
//! checkpoints `state/<policy>-r<i>.ckpt.json` every `--checkpoint-every`
//! rounds. Killing the daemon at any point is safe: restarting it resumes
//! every interrupted unit from its checkpoint and the finished trace is
//! byte-for-byte the trace of an uninterrupted run (see
//! `docs/serving.md`).
//!
//! `--crash-after-rounds N` is the CI hook that makes "killing it" a
//! deterministic test: the process hard-aborts after N rounds have been
//! emitted across all units, exactly like a SIGKILL.

use autofl_bench::standard_registry;
use autofl_fed::serve::{serve, ServeOptions};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: spec_serve --root <dir> [--once] [--poll-ms <ms>] \
         [--checkpoint-every <rounds>] [--crash-after-rounds <n>]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let Some(root) = value_of("--root") else {
        return usage();
    };
    let mut opts = ServeOptions::new(root);
    opts.once = args.iter().any(|a| a == "--once");
    if let Some(ms) = value_of("--poll-ms") {
        match ms.parse() {
            Ok(ms) => opts.poll_ms = ms,
            Err(_) => return usage(),
        }
    }
    if let Some(every) = value_of("--checkpoint-every") {
        match every.parse() {
            Ok(every) if every > 0 => opts.checkpoint_every = every,
            _ => return usage(),
        }
    }
    if let Some(n) = value_of("--crash-after-rounds") {
        match n.parse() {
            Ok(n) => opts.crash_after_records = Some(n),
            Err(_) => return usage(),
        }
    }

    match serve(&standard_registry(), &opts) {
        Ok(report) => {
            println!(
                "spec_serve: drained {} job(s), {} unit(s), under {}",
                report.jobs,
                report.units,
                opts.root.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("spec_serve: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Figure 10: AutoFL under runtime variance — no variance, co-running
//! app interference, and network variance.

use autofl_bench::{comparison, print_rows, standard_registry, PAPER_POLICIES};
use autofl_device::scenario::VarianceScenario;
use autofl_fed::engine::Simulation;
use autofl_nn::zoo::Workload;

fn main() {
    let regimes = [
        ("(a) no variance", VarianceScenario::calm()),
        (
            "(b) on-device interference",
            VarianceScenario::with_interference(),
        ),
        ("(c) network variance", VarianceScenario::weak_network()),
    ];
    let registry = standard_registry();
    for (label, scenario) in regimes {
        let cfg = Simulation::builder(Workload::CnnMnist)
            .scenario(scenario)
            .max_rounds(500)
            .build_config()
            .expect("valid figure configuration");
        let rows = comparison(&cfg, &registry, &PAPER_POLICIES);
        print_rows(&format!("Figure 10 {label}"), &rows);
    }
    println!("\npaper: under variance AutoFL improves PPW 5.1x/6.9x/2.6x over");
    println!("Random/Power/Performance and converges 3.4x/3.3x/2.3x faster.");
}

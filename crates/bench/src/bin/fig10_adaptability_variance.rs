//! Figure 10: AutoFL under runtime variance — no variance, co-running
//! app interference, and network variance.

use autofl_bench::{comparison, print_rows, Policy};
use autofl_device::scenario::VarianceScenario;
use autofl_fed::engine::SimConfig;
use autofl_nn::zoo::Workload;

fn main() {
    let regimes = [
        ("(a) no variance", VarianceScenario::calm()),
        (
            "(b) on-device interference",
            VarianceScenario::with_interference(),
        ),
        ("(c) network variance", VarianceScenario::weak_network()),
    ];
    for (label, scenario) in regimes {
        let mut cfg = SimConfig::paper_default(Workload::CnnMnist);
        cfg.scenario = scenario;
        cfg.max_rounds = 500;
        let rows = comparison(&cfg, &Policy::all());
        print_rows(&format!("Figure 10 {label}"), &rows);
    }
    println!("\npaper: under variance AutoFL improves PPW 5.1x/6.9x/2.6x over");
    println!("Random/Power/Performance and converges 3.4x/3.3x/2.3x faster.");
}

//! Figure 9: AutoFL adapts to every (B, E, K) setting S1–S4, beating the
//! fixed baselines and approaching O_participant/O_FL.

use autofl_bench::{comparison, print_rows, Policy};
use autofl_fed::engine::SimConfig;
use autofl_fed::GlobalParams;
use autofl_nn::zoo::Workload;

fn main() {
    for (label, params) in GlobalParams::paper_settings() {
        let mut cfg = SimConfig::paper_default(Workload::CnnMnist);
        cfg.params = params;
        cfg.max_rounds = 500;
        let rows = comparison(&cfg, &Policy::all());
        print_rows(&format!("Figure 9: CNN-MNIST, setting {label}"), &rows);
    }
    println!("\npaper: AutoFL wins under every setting and lands ~15.9% above O_participant");
    println!("thanks to per-device execution-target/DVFS decisions.");
}

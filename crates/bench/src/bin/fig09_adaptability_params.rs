//! Figure 9: AutoFL adapts to every (B, E, K) setting S1–S4, beating the
//! fixed baselines and approaching O_participant/O_FL.

use autofl_bench::{comparison, print_rows, standard_registry, PAPER_POLICIES};
use autofl_fed::engine::Simulation;
use autofl_fed::GlobalParams;
use autofl_nn::zoo::Workload;

fn main() {
    let registry = standard_registry();
    for (label, params) in GlobalParams::paper_settings() {
        let cfg = Simulation::builder(Workload::CnnMnist)
            .params(params)
            .max_rounds(500)
            .build_config()
            .expect("valid figure configuration");
        let rows = comparison(&cfg, &registry, &PAPER_POLICIES);
        print_rows(&format!("Figure 9: CNN-MNIST, setting {label}"), &rows);
    }
    println!("\npaper: AutoFL wins under every setting and lands ~15.9% above O_participant");
    println!("thanks to per-device execution-target/DVFS decisions.");
}

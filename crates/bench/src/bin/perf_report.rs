//! Performance trajectory report: times the workspace's hot paths —
//! matmul/conv kernels, one surrogate round, one real-training round and a
//! multi-config policy sweep — at `AUTOFL_THREADS = 1` and `= N` (machine
//! parallelism), and writes the results to `BENCH_autofl.json` so the
//! perf trend is tracked across PRs.
//!
//! ```sh
//! cargo run --release -p autofl-bench --bin perf_report            # full sizes
//! cargo run --release -p autofl-bench --bin perf_report -- --smoke # CI sizes
//! ```
//!
//! Every benchmark is bit-deterministic in its seed at any thread count
//! (the workspace's parallel-runtime contract), so the two thread
//! settings time *identical* computations: `speedup` is a pure scheduling
//! ratio, `wall_ms(threads=1) / wall_ms(threads=N)`.

use autofl_bench::{merge_bench_rows, par_sweep, peak_rss_kb, standard_registry, BenchRow, Policy};
use autofl_fed::engine::{Fidelity, SimConfig, Simulation};
use autofl_fed::selection::RandomSelector;
use autofl_nn::layers::{Conv2d, Layer};
use autofl_nn::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn pseudo_tensor(shape: Vec<usize>, rng: &mut SmallRng) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..n).map(|_| rng.gen::<f32>() - 0.5).collect())
}

fn time_ms(mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

/// Each benchmark returns `(wall_ms, rounds)`; `rounds` is zero for
/// kernel microbenchmarks where "rounds per second" is meaningless.
fn bench_matmul(smoke: bool) -> (f64, usize) {
    let dim = if smoke { 192 } else { 384 };
    let iters = if smoke { 4 } else { 10 };
    let mut rng = SmallRng::seed_from_u64(1);
    let a = pseudo_tensor(vec![dim, dim], &mut rng);
    let b = pseudo_tensor(vec![dim, dim], &mut rng);
    let mut out = Tensor::zeros(vec![0]);
    let mut sink = 0.0f32;
    let ms = time_ms(|| {
        for _ in 0..iters {
            a.matmul_into(&b, &mut out);
            a.matmul_tn_into(&b, &mut out);
            a.matmul_nt_into(&b, &mut out);
            sink += out.data()[0];
        }
    });
    assert!(sink.is_finite());
    (ms, 0)
}

fn bench_conv(smoke: bool) -> (f64, usize) {
    let (batch, hw) = if smoke { (4, 16) } else { (8, 24) };
    let iters = if smoke { 4 } else { 10 };
    let mut rng = SmallRng::seed_from_u64(2);
    let mut conv = Conv2d::new(8, 16, 3, 1, 1, &mut rng);
    let x = pseudo_tensor(vec![batch, 8, hw, hw], &mut rng);
    let ms = time_ms(|| {
        for _ in 0..iters {
            let y = conv.forward(&x, true);
            let _ = conv.backward(&y);
        }
    });
    (ms, 0)
}

fn bench_surrogate_round(smoke: bool) -> (f64, usize) {
    let rounds = if smoke { 60 } else { 250 };
    let mut cfg = SimConfig::smoke(7);
    cfg.max_rounds = rounds;
    let mut sim = Simulation::new(cfg);
    let mut sel = RandomSelector::new();
    let ms = time_ms(|| {
        for round in 0..rounds {
            let _ = sim.run_round(&mut sel, round);
        }
    });
    (ms, rounds)
}

fn bench_real_training_round(smoke: bool) -> (f64, usize) {
    let rounds = if smoke { 2 } else { 5 };
    let mut cfg = SimConfig::tiny_test(7);
    cfg.fidelity = Fidelity::RealTraining {
        lr: 0.08,
        eval_samples: 48,
    };
    cfg.max_rounds = rounds;
    let mut sim = Simulation::new(cfg);
    let mut sel = RandomSelector::new();
    let ms = time_ms(|| {
        for round in 0..rounds {
            let _ = sim.run_round(&mut sel, round);
        }
    });
    (ms, rounds)
}

fn bench_scale_10k(smoke: bool) -> (f64, usize) {
    // The fleet-size axis at a CI-friendly point: 10k devices, sharded
    // stores, labels-only surrogate data, full fleet dynamics. The
    // deeper sweep (up to 1M devices) lives in the `fig_scale` binary.
    let rounds = if smoke { 3 } else { 5 };
    let mut sim = Simulation::builder(autofl_nn::zoo::Workload::CnnMnist)
        .devices(10_000)
        .shards(16)
        .samples_per_device(8)
        .test_samples(64)
        .max_rounds(rounds)
        .target_accuracy(1.1)
        .fleet_dynamics(autofl_fed::fleet::FleetDynamics::realistic())
        .seed(42)
        .build()
        .expect("10k scale config is valid");
    let mut sel = RandomSelector::new();
    let ms = time_ms(|| {
        for round in 0..rounds {
            let _ = sim.run_round(&mut sel, round);
        }
    });
    (ms, rounds)
}

fn bench_sweep(smoke: bool) -> (f64, usize) {
    // Config-level fan-out: the sweep dimension the fig binaries scale
    // along. Every (config, policy) pair is an independent simulation.
    let seeds: &[u64] = if smoke {
        &[1, 2, 3, 4]
    } else {
        &[1, 2, 3, 4, 5, 6, 7, 8]
    };
    let registry = standard_registry();
    let mut runs: Vec<(SimConfig, &dyn Policy)> = Vec::new();
    for &seed in seeds {
        let mut cfg = SimConfig::smoke(seed);
        if smoke {
            cfg.max_rounds = 120;
        }
        runs.push((cfg.clone(), registry.expect("FedAvg-Random")));
        runs.push((cfg, registry.expect("Performance")));
    }
    let ms = time_ms(|| {
        let results = par_sweep(&runs);
        assert_eq!(results.len(), runs.len());
    });
    (ms, 0)
}

type BenchFn = fn(bool) -> (f64, usize);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_autofl.json")
        .to_string();
    let max_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let benches: Vec<(&'static str, BenchFn)> = vec![
        ("matmul_kernels", bench_matmul),
        ("conv_fwd_bwd", bench_conv),
        ("surrogate_rounds", bench_surrogate_round),
        ("real_training_rounds", bench_real_training_round),
        ("multi_config_sweep", bench_sweep),
        ("fleet_scale_10k_rounds", bench_scale_10k),
    ];

    println!(
        "== perf_report ({}, {} hw threads) ==",
        if smoke { "smoke" } else { "full" },
        max_threads
    );
    println!(
        "{:<22} {:>8} {:>12} {:>9}",
        "bench", "threads", "wall_ms", "speedup"
    );

    let prev = std::env::var("AUTOFL_THREADS").ok();
    let mut rows: Vec<BenchRow> = Vec::new();
    for (name, f) in &benches {
        let mut base_ms = 0.0;
        for &threads in &[1usize, max_threads] {
            std::env::set_var("AUTOFL_THREADS", threads.to_string());
            rayon::refresh_thread_count();
            // One untimed warm-up pass amortises pool spawn and allocator
            // warm-up out of the measurement.
            let _ = f(smoke);
            let (wall_ms, rounds) = f(smoke);
            if threads == 1 {
                base_ms = wall_ms;
            }
            let speedup = if wall_ms > 0.0 {
                base_ms / wall_ms
            } else {
                1.0
            };
            println!("{name:<22} {threads:>8} {wall_ms:>12.2} {speedup:>8.2}x");
            rows.push(BenchRow {
                bench: name.to_string(),
                threads,
                wall_ms,
                speedup,
                rounds_per_s: if rounds > 0 {
                    rounds as f64 / (wall_ms / 1e3).max(1e-9)
                } else {
                    0.0
                },
                peak_rss_kb: peak_rss_kb().unwrap_or(0.0),
            });
            if max_threads == 1 {
                break; // threads=1 and threads=N are the same measurement
            }
        }
    }
    match prev {
        Some(v) => std::env::set_var("AUTOFL_THREADS", v),
        None => std::env::remove_var("AUTOFL_THREADS"),
    }
    rayon::refresh_thread_count();

    // Merge rather than overwrite: `fig_scale` rows in the same file
    // survive a perf_report refresh (and vice versa).
    merge_bench_rows(&out_path, rows).expect("write bench json");
    println!("\nmerged rows into {out_path}");
}

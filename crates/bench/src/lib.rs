//! Shared harness for the figure-regeneration binaries.
//!
//! Every `fig*` binary in `src/bin/` reproduces one table or figure of the
//! paper: it builds the matching configuration through
//! [`Simulation::builder`](autofl_fed::engine::Simulation::builder),
//! resolves its policies from the [`standard_registry`], and prints the
//! same rows/series the paper reports (PPW normalised to FedAvg-Random,
//! convergence time, accuracy).
//! The `spec_run` binary executes checked-in
//! [`autofl_fed::spec::ExperimentSpec`] files through the same registry,
//! so every figure is reproducible from a declarative JSON file. See
//! EXPERIMENTS.md for the paper-vs-measured record.

use autofl_fed::engine::{SimConfig, SimResult};
pub use autofl_fed::policy::{run_policy, Policy, PolicyRegistry};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

pub use autofl_core::policy::{standard_registry, PAPER_POLICIES};

/// Baselines only (everything except AutoFL), in reporting order.
pub const BASELINE_POLICIES: [&str; 5] = [
    "FedAvg-Random",
    "Power",
    "Performance",
    "O_participant",
    "O_FL",
];

/// Runs every `(config, policy)` pair of a sweep in parallel across the
/// pool and returns the results in input order.
///
/// Each run owns its `Simulation` and its seeds, so results are identical
/// to running the pairs sequentially — config-level fan-out is the
/// outermost (and best-scaling) parallelism the fig binaries have.
pub fn par_sweep(runs: &[(SimConfig, &dyn Policy)]) -> Vec<SimResult> {
    runs.par_iter()
        .map(|(config, policy)| run_policy(config, *policy))
        .collect()
}

/// One `BENCH_autofl.json` row, shared by `perf_report` (kernel and
/// round timings at 1 and N threads) and `fig_scale` (the fleet-size
/// sweep, which additionally fills `rounds_per_s` and the peak-RSS
/// proxy). Rows from different tools merge into one file through
/// [`merge_bench_rows`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRow {
    /// Benchmark name (`fig_scale` rows are `fleet_scale[_dyn]_n<N>`).
    pub bench: String,
    /// Worker-thread budget the measurement ran under.
    pub threads: usize,
    /// Wall-clock time of the measured section in milliseconds.
    pub wall_ms: f64,
    /// `wall_ms(threads=1) / wall_ms(threads=this)`; 1.0 when only one
    /// thread setting was measured.
    pub speedup: f64,
    /// Simulated aggregation rounds per second (0 for kernel benches).
    pub rounds_per_s: f64,
    /// Peak-RSS proxy in kB: `VmHWM` from `/proc/self/status`, falling
    /// back to the simulation's tracked per-device store bytes
    /// (`Simulation::store_bytes`) off Linux; 0 for kernel benches that
    /// track no memory.
    pub peak_rss_kb: f64,
}

/// Merges `rows` into the JSON row array at `path`: existing rows with
/// the same `(bench, threads)` key are replaced, others are kept, new
/// rows are appended. A missing or unparseable file (e.g. an older
/// schema) starts from empty, so the file self-heals across versions.
pub fn merge_bench_rows(path: &str, rows: Vec<BenchRow>) -> std::io::Result<()> {
    let mut merged = read_bench_rows(path);
    for row in rows {
        match merged
            .iter_mut()
            .find(|r| r.bench == row.bench && r.threads == row.threads)
        {
            Some(slot) => *slot = row,
            None => merged.push(row),
        }
    }
    let json = serde_json::to_string_pretty(&merged).expect("bench rows serialize");
    std::fs::write(path, json + "\n")
}

/// Reads the `BenchRow` array at `path`; a missing or unparseable file
/// (e.g. an older schema) reads as empty.
pub fn read_bench_rows(path: &str) -> Vec<BenchRow> {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok())
        .unwrap_or_default()
}

/// Best-effort peak resident-set size of this process in kB (`VmHWM`
/// from `/proc/self/status`); `None` off Linux or when unreadable.
pub fn peak_rss_kb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse::<f64>().ok()
}

/// One row of a normalised comparison table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Policy label.
    pub label: String,
    /// PPW relative to the baseline.
    pub ppw_norm: f64,
    /// Convergence-time speedup relative to the baseline.
    pub conv_speedup: f64,
    /// Round the run converged, if it did.
    pub converged_round: Option<usize>,
    /// Final accuracy.
    pub accuracy: f64,
}

impl Row {
    /// Normalises a set of borrowed results against the first one
    /// (conventionally FedAvg-Random).
    pub fn normalised(results: &[&SimResult]) -> Vec<Row> {
        let base_ppw = results[0].ppw_global().max(1e-300);
        let base_time = results[0].time_to_target_s().max(1e-300);
        results
            .iter()
            .map(|r| Row {
                label: r.policy.clone(),
                ppw_norm: r.ppw_global() / base_ppw,
                conv_speedup: base_time / r.time_to_target_s().max(1e-300),
                converged_round: r.converged_round(),
                accuracy: r.final_accuracy(),
            })
            .collect()
    }
}

/// Runs a set of policies (resolved from `registry` by name) on one
/// configuration and normalises PPW / convergence time to the first name
/// in the list (conventionally `"FedAvg-Random"`).
///
/// The policy runs are independent simulations and execute in parallel;
/// normalisation happens afterwards in input order.
///
/// # Panics
///
/// Panics if a name is not registered (runner binaries hold their policy
/// lists as compile-time constants).
pub fn comparison(config: &SimConfig, registry: &PolicyRegistry, names: &[&str]) -> Vec<Row> {
    let policies: Vec<&dyn Policy> = names.iter().map(|n| registry.expect(n)).collect();
    let results: Vec<SimResult> = policies
        .par_iter()
        .map(|p| run_policy(config, *p))
        .collect();
    Row::normalised(&results.iter().collect::<Vec<_>>())
}

/// Prints a comparison table with a title.
pub fn print_rows(title: &str, rows: &[Row]) {
    println!("\n--- {title} ---");
    println!(
        "{:<16} {:>9} {:>12} {:>10} {:>9}",
        "policy", "PPW x", "conv-speed x", "converged", "accuracy"
    );
    for row in rows {
        println!(
            "{:<16} {:>8.2}x {:>11.2}x {:>10} {:>8.1}%",
            row.label,
            row.ppw_norm,
            row.conv_speedup,
            row.converged_round
                .map(|r| r.to_string())
                .unwrap_or_else(|| "no".into()),
            row.accuracy * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_normalises_to_first_policy() {
        let cfg = SimConfig::tiny_test(1);
        let reg = standard_registry();
        let rows = comparison(&cfg, &reg, &["FedAvg-Random", "Performance"]);
        assert_eq!(rows[0].ppw_norm, 1.0);
        assert_eq!(rows[0].label, "FedAvg-Random");
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn every_paper_policy_resolves_and_names() {
        let reg = standard_registry();
        for name in PAPER_POLICIES {
            let p = reg.expect(name);
            assert_eq!(p.name(), name);
            assert_eq!(p.make_selector().name(), name);
        }
        assert_eq!(&PAPER_POLICIES[..5], &BASELINE_POLICIES[..]);
    }

    #[test]
    #[should_panic(expected = "unknown policy")]
    fn unknown_names_panic_with_the_registry_contents() {
        let reg = standard_registry();
        let _ = reg.expect("NotARealPolicy");
    }
}

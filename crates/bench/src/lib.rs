//! Shared harness for the figure-regeneration binaries.
//!
//! Every `fig*` binary in `src/bin/` reproduces one table or figure of the
//! paper: it builds the matching [`SimConfig`], runs each policy, and
//! prints the same rows/series the paper reports (PPW normalised to
//! FedAvg-Random, convergence time, accuracy). See EXPERIMENTS.md for the
//! paper-vs-measured record.

use autofl_core::{AutoFl, AutoFlConfig};
use autofl_fed::engine::{SimConfig, SimResult, Simulation};
use autofl_fed::oracle::OracleSelector;
use autofl_fed::selection::{ClusterSelector, RandomSelector, Selector};
use rayon::prelude::*;

/// The policies the paper compares (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// FedAvg with uniform random selection (the baseline, cluster C0).
    Random,
    /// All low-end devices (cluster C7).
    Power,
    /// All high-end devices (cluster C1).
    Performance,
    /// Oracle participant selection at CPU-max.
    OracleParticipant,
    /// Oracle participants + execution targets + DVFS.
    OracleFull,
    /// The learned controller.
    AutoFl,
}

impl Policy {
    /// The six evaluation policies in the paper's reporting order.
    pub fn all() -> [Policy; 6] {
        [
            Policy::Random,
            Policy::Power,
            Policy::Performance,
            Policy::OracleParticipant,
            Policy::OracleFull,
            Policy::AutoFl,
        ]
    }

    /// Baselines only (everything except AutoFL).
    pub fn baselines() -> [Policy; 5] {
        [
            Policy::Random,
            Policy::Power,
            Policy::Performance,
            Policy::OracleParticipant,
            Policy::OracleFull,
        ]
    }

    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Random => "FedAvg-Random",
            Policy::Power => "Power",
            Policy::Performance => "Performance",
            Policy::OracleParticipant => "O_participant",
            Policy::OracleFull => "O_FL",
            Policy::AutoFl => "AutoFL",
        }
    }

    /// Instantiates the selector.
    pub fn build(&self) -> Box<dyn Selector> {
        match self {
            Policy::Random => Box::new(RandomSelector::new()),
            Policy::Power => Box::new(ClusterSelector::power()),
            Policy::Performance => Box::new(ClusterSelector::performance()),
            Policy::OracleParticipant => Box::new(OracleSelector::participant()),
            Policy::OracleFull => Box::new(OracleSelector::full()),
            Policy::AutoFl => Box::new(AutoFl::new(AutoFlConfig::default())),
        }
    }
}

/// Runs one policy on one configuration.
pub fn run_policy(config: &SimConfig, policy: Policy) -> SimResult {
    let mut selector = policy.build();
    Simulation::new(config.clone()).run(selector.as_mut())
}

/// One row of a normalised comparison table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Policy label.
    pub label: String,
    /// PPW relative to the baseline.
    pub ppw_norm: f64,
    /// Convergence-time speedup relative to the baseline.
    pub conv_speedup: f64,
    /// Round the run converged, if it did.
    pub converged_round: Option<usize>,
    /// Final accuracy.
    pub accuracy: f64,
}

/// Runs every `(config, policy)` pair of a sweep in parallel across the
/// pool and returns the results in input order.
///
/// Each run owns its `Simulation` and its seeds, so results are identical
/// to running the pairs sequentially — config-level fan-out is the
/// outermost (and best-scaling) parallelism the fig binaries have.
pub fn par_sweep(runs: &[(SimConfig, Policy)]) -> Vec<SimResult> {
    runs.par_iter()
        .map(|(config, policy)| run_policy(config, *policy))
        .collect()
}

/// Runs a set of policies and normalises PPW / convergence time to the
/// first policy in the list (conventionally [`Policy::Random`]).
///
/// The policy runs are independent simulations and execute in parallel;
/// normalisation happens afterwards in input order.
pub fn comparison(config: &SimConfig, policies: &[Policy]) -> Vec<Row> {
    let results: Vec<(Policy, SimResult)> = policies
        .par_iter()
        .map(|p| (*p, run_policy(config, *p)))
        .collect();
    let base_ppw = results[0].1.ppw_global().max(1e-300);
    let base_time = results[0].1.time_to_target_s().max(1e-300);
    results
        .into_iter()
        .map(|(p, r)| Row {
            label: p.name().to_string(),
            ppw_norm: r.ppw_global() / base_ppw,
            conv_speedup: base_time / r.time_to_target_s().max(1e-300),
            converged_round: r.converged_round(),
            accuracy: r.final_accuracy(),
        })
        .collect()
}

/// Prints a comparison table with a title.
pub fn print_rows(title: &str, rows: &[Row]) {
    println!("\n--- {title} ---");
    println!(
        "{:<16} {:>9} {:>12} {:>10} {:>9}",
        "policy", "PPW x", "conv-speed x", "converged", "accuracy"
    );
    for row in rows {
        println!(
            "{:<16} {:>8.2}x {:>11.2}x {:>10} {:>8.1}%",
            row.label,
            row.ppw_norm,
            row.conv_speedup,
            row.converged_round
                .map(|r| r.to_string())
                .unwrap_or_else(|| "no".into()),
            row.accuracy * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofl_nn::zoo::Workload;

    #[test]
    fn comparison_normalises_to_first_policy() {
        let mut cfg = SimConfig::tiny_test(1);
        cfg.workload = Workload::TinyTest;
        let rows = comparison(&cfg, &[Policy::Random, Policy::Performance]);
        assert_eq!(rows[0].ppw_norm, 1.0);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn every_policy_builds_and_names() {
        for p in Policy::all() {
            let s = p.build();
            assert_eq!(s.name(), p.name());
        }
    }
}

//! Criterion benches for the simulation substrate: round cost estimation
//! and oracle decision-making at fleet scale.

use autofl_device::cost::{ExecutionPlan, TrainingTask};
use autofl_device::fleet::{DeviceId, Fleet};
use autofl_device::store::ConditionsStore;
use autofl_fed::engine::Simulation;
use autofl_fed::estimate::estimate_round;
use autofl_fed::oracle::OracleSelector;
use autofl_nn::zoo::Workload;
use criterion::{criterion_group, criterion_main, Criterion};

fn estimate(c: &mut Criterion) {
    let fleet = Fleet::paper_fleet(1);
    let conditions = ConditionsStore::new(fleet.len(), 1);
    let ids: Vec<DeviceId> = (0..20).map(DeviceId).collect();
    let plans: Vec<ExecutionPlan> = ids
        .iter()
        .map(|id| ExecutionPlan::cpu_max(fleet.device(*id).tier()))
        .collect();
    let tasks = vec![
        TrainingTask {
            flops: 100_000_000_000,
            upload_bytes: 6_653_480,
        };
        20
    ];
    c.bench_function("estimate_round_k20_n200", |b| {
        b.iter(|| estimate_round(&fleet, &ids, &plans, &tasks, &conditions))
    });

    let mut group = c.benchmark_group("oracle");
    group.sample_size(20);
    group.bench_function("ofl_round_200_devices", |b| {
        let mut sim = Simulation::builder(Workload::CnnMnist)
            .build()
            .expect("paper defaults are valid");
        let mut oracle = OracleSelector::full();
        let mut round = 0usize;
        b.iter(|| {
            let record = sim.run_round(&mut oracle, round);
            round += 1;
            record.round_time_s
        });
    });
    group.finish();
}

criterion_group!(benches, estimate);
criterion_main!(benches);

//! Criterion benches for the Section 6.4 overhead claims: the per-round
//! cost of AutoFL's observe/select/reward/update pipeline at fleet scale.

use autofl_core::AutoFl;
use autofl_fed::engine::Simulation;
use autofl_fed::selection::RandomSelector;
use autofl_nn::zoo::Workload;
use criterion::{criterion_group, criterion_main, Criterion};

/// One full AutoFL round on the 200-device paper fleet (the controller
/// decision + learning cost dominates over the analytic cost model).
fn autofl_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller");
    group.sample_size(20);
    group.bench_function("autofl_round_200_devices", |b| {
        let mut sim = Simulation::builder(Workload::CnnMnist)
            .build()
            .expect("paper defaults are valid");
        let mut agent = AutoFl::paper_default();
        let mut round = 0usize;
        b.iter(|| {
            let record = sim.run_round(&mut agent, round);
            round += 1;
            record.round_time_s
        });
    });
    group.bench_function("random_round_200_devices", |b| {
        let mut sim = Simulation::builder(Workload::CnnMnist)
            .build()
            .expect("paper defaults are valid");
        let mut selector = RandomSelector::new();
        let mut round = 0usize;
        b.iter(|| {
            let record = sim.run_round(&mut selector, round);
            round += 1;
            record.round_time_s
        });
    });
    group.finish();
}

criterion_group!(benches, autofl_round);
criterion_main!(benches);

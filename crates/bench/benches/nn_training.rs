//! Criterion benches for the NN substrate: per-batch training cost of the
//! three workload models (what an emulated device "runs" per step).

use autofl_nn::optim::Sgd;
use autofl_nn::tensor::Tensor;
use autofl_nn::zoo::Workload;
use criterion::{criterion_group, criterion_main, Criterion};

fn train_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_training");
    group.sample_size(10);
    for workload in [
        Workload::CnnMnist,
        Workload::LstmShakespeare,
        Workload::MobileNetImageNet,
    ] {
        group.bench_function(format!("train_batch16_{}", workload.name()), |b| {
            let mut model = workload.build_trainable(1);
            let mut shape = vec![16];
            shape.extend(workload.input_shape());
            let x = if workload.is_sequence() {
                Tensor::from_vec(shape.clone(), vec![1.0; shape.iter().product()])
            } else {
                Tensor::zeros(shape)
            };
            let labels: Vec<usize> = (0..16).map(|i| i % workload.num_classes()).collect();
            let mut sgd = Sgd::new(0.05);
            b.iter(|| model.train_batch(&x, &labels, &mut sgd));
        });
    }
    group.finish();
}

criterion_group!(benches, train_batch);
criterion_main!(benches);

//! The AutoFL reward function (Eqs. 5–7 of the paper).

use serde::{Deserialize, Serialize};

/// Weights and scales of Eq. (7).
///
/// The paper does not publish α and β; these defaults were calibrated so
/// that the energy terms differentiate devices within a round while the
/// accuracy-improvement term dominates across rounds (the condition for
/// convergence-aware selection). Both are exposed for ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Weight α of the absolute accuracy term.
    pub alpha: f64,
    /// Weight β of the accuracy-improvement (convergence-speed) term.
    pub beta: f64,
    /// Joules represented by one reward unit of `R_energy_global`.
    pub global_energy_scale_j: f64,
    /// Joules represented by one reward unit of `R_energy_local`.
    pub local_energy_scale_j: f64,
    /// Extra penalty subtracted from a device's reward when it missed the
    /// round deadline (energy burned, update dropped or truncated). The
    /// paper's reward penalises stragglers implicitly through energy and
    /// accuracy; this sharpens the signal and defaults to 0 (off).
    pub straggler_penalty: f64,
    /// Extra penalty subtracted when the device vanished mid-round
    /// (battery death or connectivity churn under fleet dynamics).
    /// Defaults to 0 (off).
    pub dropout_penalty: f64,
    /// Penalty per unit of mean update staleness under the event-driven
    /// buffered runtime (`autofl_fed::runtime`): subtracted as
    /// `staleness_penalty × mean_staleness`, steering the agent toward
    /// cohorts whose updates arrive fresh. Lockstep rounds have
    /// staleness 0, and the default 0 reproduces the paper's reward
    /// bit for bit.
    pub staleness_penalty: f64,
    /// Penalty per megabyte the cohort uplinked, subtracted as
    /// `bytes_penalty × uplink_bytes / 1e6`. Byte accounting comes from
    /// the network fabric (`autofl_fed::fabric`); without a fabric the
    /// uplink reads 0, and the default 0 reproduces the paper's reward
    /// bit for bit either way.
    pub bytes_penalty: f64,
}

impl Default for RewardConfig {
    fn default() -> Self {
        RewardConfig {
            alpha: 1.0,
            beta: 5.0,
            global_energy_scale_j: 150.0,
            local_energy_scale_j: 2.0,
            straggler_penalty: 0.0,
            dropout_penalty: 0.0,
            staleness_penalty: 0.0,
            bytes_penalty: 0.0,
        }
    }
}

/// How one device's participation in a round ended — distinguishing a
/// deadline miss (straggler) from a mid-round dropout, which Eq. (7) can
/// penalise separately via [`RewardConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParticipationOutcome {
    /// The device was not selected this round.
    Idle,
    /// The device finished its update within the deadline.
    #[default]
    Completed,
    /// The device was still selected but missed the round deadline.
    DeadlineMiss,
    /// The device vanished mid-round (battery death or network churn).
    Dropout,
}

/// Inputs of one device's reward for one round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewardInputs {
    /// `R_energy_local` in joules: `E_comp + E_comm` for a selected device,
    /// `E_idle` otherwise (Eq. 5).
    pub local_energy_j: f64,
    /// `R_energy_global` in joules: fleet-wide energy of the round (Eq. 6).
    pub global_energy_j: f64,
    /// Test accuracy after the round, in `[0, 1]`.
    pub accuracy: f64,
    /// Test accuracy before the round, in `[0, 1]`.
    pub prev_accuracy: f64,
    /// How this device's participation ended.
    pub outcome: ParticipationOutcome,
    /// Mean staleness (in global aggregation steps) of the cohort's
    /// updates when they were folded in. Always 0 under the lockstep
    /// engine; positive only under buffered asynchronous aggregation.
    pub staleness: f64,
    /// Bytes the cohort uplinked this round (encoded updates). Always 0
    /// without a network fabric.
    pub uplink_bytes: f64,
}

/// Computes Eq. (7).
///
/// If the round failed to improve accuracy the reward is
/// `R_accuracy − 100` (accuracy expressed in percent, i.e. its distance
/// below 100%), steering the agent away from the action; otherwise it is
/// `−R_energy_global − R_energy_local + α·R_accuracy +
/// β·(R_accuracy − R_accuracy_prev)`. Either branch additionally
/// subtracts the configured straggler / dropout penalty for devices whose
/// participation failed (both default to 0, which reproduces the paper's
/// reward exactly).
pub fn reward(config: &RewardConfig, inputs: &RewardInputs) -> f64 {
    let penalty = match inputs.outcome {
        ParticipationOutcome::DeadlineMiss => config.straggler_penalty,
        ParticipationOutcome::Dropout => config.dropout_penalty,
        ParticipationOutcome::Idle | ParticipationOutcome::Completed => 0.0,
    } + config.staleness_penalty * inputs.staleness
        + config.bytes_penalty * (inputs.uplink_bytes / 1e6);
    let acc_pct = inputs.accuracy * 100.0;
    let prev_pct = inputs.prev_accuracy * 100.0;
    if acc_pct - prev_pct <= 0.0 {
        return acc_pct - 100.0 - penalty;
    }
    -(inputs.global_energy_j / config.global_energy_scale_j)
        - (inputs.local_energy_j / config.local_energy_scale_j)
        + config.alpha * acc_pct
        + config.beta * (acc_pct - prev_pct)
        - penalty
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_inputs() -> RewardInputs {
        RewardInputs {
            local_energy_j: 50.0,
            global_energy_j: 2_000.0,
            accuracy: 0.82,
            prev_accuracy: 0.80,
            outcome: ParticipationOutcome::Completed,
            staleness: 0.0,
            uplink_bytes: 0.0,
        }
    }

    #[test]
    fn failed_improvement_returns_distance_from_100() {
        let cfg = RewardConfig::default();
        let mut inputs = base_inputs();
        inputs.accuracy = 0.80;
        inputs.prev_accuracy = 0.80;
        assert_eq!(reward(&cfg, &inputs), 80.0 - 100.0);
        inputs.accuracy = 0.70;
        assert_eq!(reward(&cfg, &inputs), 70.0 - 100.0);
    }

    #[test]
    fn improvement_reward_combines_terms() {
        let cfg = RewardConfig::default();
        let r = reward(&cfg, &base_inputs());
        // -2000/150 - 50/2 + 1*82 + 5*2 = -13.33 - 25 + 82 + 10 = 53.67
        assert!((r - (-2000.0 / 150.0 - 25.0 + 82.0 + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn lower_energy_earns_higher_reward() {
        let cfg = RewardConfig::default();
        let a = reward(&cfg, &base_inputs());
        let cheaper = RewardInputs {
            local_energy_j: 10.0,
            ..base_inputs()
        };
        assert!(reward(&cfg, &cheaper) > a);
        let global_cheaper = RewardInputs {
            global_energy_j: 500.0,
            ..base_inputs()
        };
        assert!(reward(&cfg, &global_cheaper) > a);
    }

    #[test]
    fn faster_convergence_earns_higher_reward() {
        let cfg = RewardConfig::default();
        let slow = reward(&cfg, &base_inputs());
        let fast = reward(
            &cfg,
            &RewardInputs {
                accuracy: 0.85,
                ..base_inputs()
            },
        );
        assert!(fast > slow);
    }

    #[test]
    fn failed_rounds_rank_below_successes_at_the_same_accuracy() {
        // At a given accuracy level, a round that improved the model beats
        // one that did not (Eq. 7's branch structure).
        let cfg = RewardConfig::default();
        let fail = reward(
            &cfg,
            &RewardInputs {
                accuracy: 0.10,
                prev_accuracy: 0.10,
                ..base_inputs()
            },
        );
        let success = reward(
            &cfg,
            &RewardInputs {
                accuracy: 0.101,
                prev_accuracy: 0.10,
                local_energy_j: 60.0,
                global_energy_j: 3_000.0,
                outcome: ParticipationOutcome::Completed,
                staleness: 0.0,
                uplink_bytes: 0.0,
            },
        );
        assert!(success > fail, "success {} vs fail {}", success, fail);
    }

    #[test]
    fn zero_penalties_reproduce_the_paper_reward_bit_for_bit() {
        let cfg = RewardConfig::default();
        for outcome in [
            ParticipationOutcome::Idle,
            ParticipationOutcome::Completed,
            ParticipationOutcome::DeadlineMiss,
            ParticipationOutcome::Dropout,
        ] {
            let r = reward(
                &cfg,
                &RewardInputs {
                    outcome,
                    ..base_inputs()
                },
            );
            assert_eq!(
                r.to_bits(),
                reward(&cfg, &base_inputs()).to_bits(),
                "{outcome:?} must not perturb the default reward"
            );
        }
    }

    #[test]
    fn staleness_penalty_scales_linearly_and_defaults_off() {
        let stale = RewardInputs {
            staleness: 3.0,
            ..base_inputs()
        };
        // Off by default: stale updates cost nothing (paper reward).
        let cfg = RewardConfig::default();
        assert_eq!(
            reward(&cfg, &stale).to_bits(),
            reward(&cfg, &base_inputs()).to_bits()
        );
        // On: reward drops by penalty × staleness, in both branches.
        let cfg = RewardConfig {
            staleness_penalty: 2.0,
            ..RewardConfig::default()
        };
        assert_eq!(reward(&cfg, &base_inputs()) - reward(&cfg, &stale), 6.0);
        let flat = RewardInputs {
            accuracy: 0.80,
            ..base_inputs()
        };
        let flat_stale = RewardInputs {
            staleness: 3.0,
            ..flat
        };
        assert_eq!(reward(&cfg, &flat) - reward(&cfg, &flat_stale), 6.0);
    }

    #[test]
    fn bytes_penalty_scales_per_megabyte_and_defaults_off() {
        let heavy = RewardInputs {
            uplink_bytes: 25e6,
            ..base_inputs()
        };
        // Off by default: uplink bytes cost nothing (paper reward).
        let cfg = RewardConfig::default();
        assert_eq!(
            reward(&cfg, &heavy).to_bits(),
            reward(&cfg, &base_inputs()).to_bits()
        );
        // On: reward drops by penalty × megabytes, in both branches.
        let cfg = RewardConfig {
            bytes_penalty: 0.2,
            ..RewardConfig::default()
        };
        assert_eq!(reward(&cfg, &base_inputs()) - reward(&cfg, &heavy), 5.0);
        let flat = RewardInputs {
            accuracy: 0.80,
            ..base_inputs()
        };
        let flat_heavy = RewardInputs {
            uplink_bytes: 25e6,
            ..flat
        };
        assert_eq!(reward(&cfg, &flat) - reward(&cfg, &flat_heavy), 5.0);
    }

    #[test]
    fn nonzero_penalties_rank_failed_participation_below_success() {
        let cfg = RewardConfig {
            straggler_penalty: 10.0,
            dropout_penalty: 25.0,
            ..RewardConfig::default()
        };
        let at = |outcome| {
            reward(
                &cfg,
                &RewardInputs {
                    outcome,
                    ..base_inputs()
                },
            )
        };
        let ok = at(ParticipationOutcome::Completed);
        let miss = at(ParticipationOutcome::DeadlineMiss);
        let gone = at(ParticipationOutcome::Dropout);
        assert!(ok > miss, "deadline miss must cost");
        assert!(miss > gone, "dropout must cost more than a miss");
        assert_eq!(ok - miss, 10.0);
        assert_eq!(ok - gone, 25.0);
    }
}

//! The AutoFL reward function (Eqs. 5–7 of the paper).

use serde::{Deserialize, Serialize};

/// Weights and scales of Eq. (7).
///
/// The paper does not publish α and β; these defaults were calibrated so
/// that the energy terms differentiate devices within a round while the
/// accuracy-improvement term dominates across rounds (the condition for
/// convergence-aware selection). Both are exposed for ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Weight α of the absolute accuracy term.
    pub alpha: f64,
    /// Weight β of the accuracy-improvement (convergence-speed) term.
    pub beta: f64,
    /// Joules represented by one reward unit of `R_energy_global`.
    pub global_energy_scale_j: f64,
    /// Joules represented by one reward unit of `R_energy_local`.
    pub local_energy_scale_j: f64,
}

impl Default for RewardConfig {
    fn default() -> Self {
        RewardConfig {
            alpha: 1.0,
            beta: 5.0,
            global_energy_scale_j: 150.0,
            local_energy_scale_j: 2.0,
        }
    }
}

/// Inputs of one device's reward for one round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewardInputs {
    /// `R_energy_local` in joules: `E_comp + E_comm` for a selected device,
    /// `E_idle` otherwise (Eq. 5).
    pub local_energy_j: f64,
    /// `R_energy_global` in joules: fleet-wide energy of the round (Eq. 6).
    pub global_energy_j: f64,
    /// Test accuracy after the round, in `[0, 1]`.
    pub accuracy: f64,
    /// Test accuracy before the round, in `[0, 1]`.
    pub prev_accuracy: f64,
}

/// Computes Eq. (7).
///
/// If the round failed to improve accuracy the reward is
/// `R_accuracy − 100` (accuracy expressed in percent, i.e. its distance
/// below 100%), steering the agent away from the action; otherwise it is
/// `−R_energy_global − R_energy_local + α·R_accuracy +
/// β·(R_accuracy − R_accuracy_prev)`.
pub fn reward(config: &RewardConfig, inputs: &RewardInputs) -> f64 {
    let acc_pct = inputs.accuracy * 100.0;
    let prev_pct = inputs.prev_accuracy * 100.0;
    if acc_pct - prev_pct <= 0.0 {
        return acc_pct - 100.0;
    }
    -(inputs.global_energy_j / config.global_energy_scale_j)
        - (inputs.local_energy_j / config.local_energy_scale_j)
        + config.alpha * acc_pct
        + config.beta * (acc_pct - prev_pct)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_inputs() -> RewardInputs {
        RewardInputs {
            local_energy_j: 50.0,
            global_energy_j: 2_000.0,
            accuracy: 0.82,
            prev_accuracy: 0.80,
        }
    }

    #[test]
    fn failed_improvement_returns_distance_from_100() {
        let cfg = RewardConfig::default();
        let mut inputs = base_inputs();
        inputs.accuracy = 0.80;
        inputs.prev_accuracy = 0.80;
        assert_eq!(reward(&cfg, &inputs), 80.0 - 100.0);
        inputs.accuracy = 0.70;
        assert_eq!(reward(&cfg, &inputs), 70.0 - 100.0);
    }

    #[test]
    fn improvement_reward_combines_terms() {
        let cfg = RewardConfig::default();
        let r = reward(&cfg, &base_inputs());
        // -2000/150 - 50/2 + 1*82 + 5*2 = -13.33 - 25 + 82 + 10 = 53.67
        assert!((r - (-2000.0 / 150.0 - 25.0 + 82.0 + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn lower_energy_earns_higher_reward() {
        let cfg = RewardConfig::default();
        let a = reward(&cfg, &base_inputs());
        let cheaper = RewardInputs {
            local_energy_j: 10.0,
            ..base_inputs()
        };
        assert!(reward(&cfg, &cheaper) > a);
        let global_cheaper = RewardInputs {
            global_energy_j: 500.0,
            ..base_inputs()
        };
        assert!(reward(&cfg, &global_cheaper) > a);
    }

    #[test]
    fn faster_convergence_earns_higher_reward() {
        let cfg = RewardConfig::default();
        let slow = reward(&cfg, &base_inputs());
        let fast = reward(
            &cfg,
            &RewardInputs {
                accuracy: 0.85,
                ..base_inputs()
            },
        );
        assert!(fast > slow);
    }

    #[test]
    fn failed_rounds_rank_below_successes_at_the_same_accuracy() {
        // At a given accuracy level, a round that improved the model beats
        // one that did not (Eq. 7's branch structure).
        let cfg = RewardConfig::default();
        let fail = reward(
            &cfg,
            &RewardInputs {
                accuracy: 0.10,
                prev_accuracy: 0.10,
                ..base_inputs()
            },
        );
        let success = reward(
            &cfg,
            &RewardInputs {
                accuracy: 0.101,
                prev_accuracy: 0.10,
                local_energy_j: 60.0,
                global_energy_j: 3_000.0,
            },
        );
        assert!(success > fail, "success {} vs fail {}", success, fail);
    }
}

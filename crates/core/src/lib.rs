//! # autofl-core
//!
//! The AutoFL controller — the primary contribution of *"AutoFL: Enabling
//! Heterogeneity-Aware Energy Efficient Federated Learning"* (Kim & Wu,
//! MICRO 2021) — implemented as a [`Selector`] for the `autofl-fed`
//! simulation engine.
//!
//! Per aggregation round the agent:
//!
//! 1. observes the global state (NN layer mix, `(B, E, K)`) and per-device
//!    local states (co-running load, network, data classes) — [`state`],
//! 2. epsilon-greedily chooses the `K` participants with the highest
//!    Q-values and, for each, an execution target + DVFS level — [`action`],
//!    [`controller`],
//! 3. after aggregation computes the Eq. (5)–(7) reward from measured
//!    energies and accuracy — [`mod@reward`] — and updates per-device (or
//!    per-tier shared) Q-tables — [`qtable`].
//!
//! Controller-side costs are tracked in [`overhead`] to reproduce the
//! paper's Section 6.4.
//!
//! # Examples
//!
//! ```
//! use autofl_core::{AutoFl, AutoFlConfig};
//! use autofl_fed::engine::{SimConfig, Simulation};
//!
//! let mut sim = Simulation::new(SimConfig::tiny_test(1));
//! let mut agent = AutoFl::new(AutoFlConfig::default());
//! let result = sim.run(&mut agent);
//! assert!(result.final_accuracy() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod action;
pub mod controller;
pub mod overhead;
pub mod policy;
pub mod qtable;
pub mod reward;
pub mod state;

pub use action::Action;
pub use controller::{AutoFl, AutoFlConfig};
pub use overhead::Overhead;
pub use policy::{standard_registry, AutoFlPolicy, PAPER_POLICIES};
pub use qtable::{QSharing, QTable, QTableSet};
pub use reward::{reward, ParticipationOutcome, RewardConfig, RewardInputs};
pub use state::{GlobalState, LocalState, StateSpace};

// Re-exported so examples and benches can name the trait without an extra
// dependency line.
pub use autofl_fed::selection::Selector;

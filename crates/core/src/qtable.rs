//! Per-device and shared (per-tier) Q-tables.

use crate::action::Action;
use crate::state::{GlobalState, LocalState};
use autofl_device::fleet::{DeviceId, Fleet};
use autofl_device::tier::DeviceTier;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One lookup table `Q(S_global, S_local, A)`.
///
/// Rows are created lazily with small random values, matching Algorithm 1's
/// "initialize Q as random values" without materialising the full state
/// space.
#[derive(Debug, Clone)]
pub struct QTable {
    entries: HashMap<(GlobalState, LocalState), Vec<f64>>,
    rng: SmallRng,
}

impl QTable {
    /// Creates an empty table seeded for reproducible random
    /// initialisation.
    pub fn new(seed: u64) -> Self {
        QTable {
            entries: HashMap::new(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn row(&mut self, g: GlobalState, l: LocalState) -> &mut Vec<f64> {
        let rng = &mut self.rng;
        // Random initialisation (Algorithm 1), placed *below* the Eq. (7)
        // failure branch's floor of `accuracy − 100`. Untried actions are
        // therefore discovered through epsilon-greedy exploration rather
        // than by outranking devices that participated in an unlucky
        // round, which keeps the learned cohort stable.
        self.entries.entry((g, l)).or_insert_with(|| {
            (0..Action::COUNT)
                .map(|_| rng.gen_range(-100.0..-99.0))
                .collect()
        })
    }

    /// The Q-value of `(g, l, action)`.
    pub fn value(&mut self, g: GlobalState, l: LocalState, action: Action) -> f64 {
        self.row(g, l)[action.index()]
    }

    /// Overwrites the Q-value of `(g, l, action)`.
    pub fn set(&mut self, g: GlobalState, l: LocalState, action: Action, q: f64) {
        self.row(g, l)[action.index()] = q;
    }

    /// The best action among `candidates` and its Q-value.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn best_action(
        &mut self,
        g: GlobalState,
        l: LocalState,
        candidates: &[Action],
    ) -> (Action, f64) {
        assert!(!candidates.is_empty(), "need at least one candidate");
        let row = self.row(g, l);
        let mut best = candidates[0];
        let mut best_q = row[best.index()];
        for &a in &candidates[1..] {
            let q = row[a.index()];
            if q > best_q {
                best = a;
                best_q = q;
            }
        }
        (best, best_q)
    }

    /// Number of materialised `(state, action-row)` entries.
    pub fn num_rows(&self) -> usize {
        self.entries.len()
    }

    /// Approximate resident size of the table in bytes.
    pub fn memory_bytes(&self) -> usize {
        // Key + row of f64s + map overhead estimate.
        self.entries.len()
            * (std::mem::size_of::<(GlobalState, LocalState)>()
                + Action::COUNT * std::mem::size_of::<f64>()
                + 48)
    }
}

impl Serialize for QTable {
    fn to_value(&self) -> serde::Value {
        // `HashMap` iteration order is nondeterministic, so checkpoints
        // sort rows by their state bytes — equal tables always serialize
        // to equal bytes, which the checkpoint digest relies on.
        let mut rows: Vec<_> = self.entries.iter().collect();
        rows.sort_by_key(|((g, l), _)| {
            (
                [g.conv, g.fc, g.rc, g.batch, g.epochs, g.k],
                [l.co_cpu, l.co_mem, l.network, l.data, l.avail],
            )
        });
        serde::Value::Map(vec![
            (
                "rows".to_string(),
                serde::Value::Seq(
                    rows.into_iter()
                        .map(|((g, l), q)| {
                            serde::Value::Map(vec![
                                ("g".to_string(), g.to_value()),
                                ("l".to_string(), l.to_value()),
                                ("q".to_string(), q.to_value()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("rng".to_string(), self.rng.state().to_vec().to_value()),
        ])
    }
}

impl Deserialize for QTable {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let rows = match serde::field_or_null(value, "rows") {
            serde::Value::Seq(items) => items,
            other => return Err(serde::Error::invalid_type("sequence", other).at("rows")),
        };
        let mut entries = HashMap::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let in_row = |e: serde::Error| e.at(&format!("rows[{i}]"));
            let g = GlobalState::from_value(serde::field_or_null(row, "g"))
                .map_err(|e| in_row(e.at("g")))?;
            let l = LocalState::from_value(serde::field_or_null(row, "l"))
                .map_err(|e| in_row(e.at("l")))?;
            let q = Vec::<f64>::from_value(serde::field_or_null(row, "q"))
                .map_err(|e| in_row(e.at("q")))?;
            if q.len() != Action::COUNT {
                return Err(in_row(serde::Error::custom(format!(
                    "Q row holds {} values but the action space has {}",
                    q.len(),
                    Action::COUNT
                ))));
            }
            entries.insert((g, l), q);
        }
        let words =
            Vec::<u64>::from_value(serde::field_or_null(value, "rng")).map_err(|e| e.at("rng"))?;
        let state: [u64; 4] = words.try_into().map_err(|w: Vec<u64>| {
            serde::Error::custom(format!("rng state needs 4 words, found {}", w.len())).at("rng")
        })?;
        Ok(QTable {
            entries,
            rng: SmallRng::from_state(state),
        })
    }
}

/// How Q-tables are shared across devices (Section 6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QSharing {
    /// One table per device (highest fidelity, slowest to warm up).
    PerDevice,
    /// One table per performance tier; devices of a tier learn jointly,
    /// converging ~29% faster at a small accuracy cost.
    SharedPerTier,
}

/// The collection of Q-tables for a fleet under a sharing mode.
#[derive(Debug, Clone)]
pub struct QTableSet {
    sharing: QSharing,
    tables: Vec<QTable>,
    /// Device id → table index.
    index: Vec<usize>,
}

impl QTableSet {
    /// Builds the set for a fleet.
    pub fn new(fleet: &Fleet, sharing: QSharing, seed: u64) -> Self {
        match sharing {
            QSharing::PerDevice => QTableSet {
                sharing,
                tables: (0..fleet.len())
                    .map(|i| QTable::new(seed.wrapping_add(i as u64)))
                    .collect(),
                index: (0..fleet.len()).collect(),
            },
            QSharing::SharedPerTier => {
                let tiers = DeviceTier::all();
                let tables = tiers
                    .iter()
                    .enumerate()
                    .map(|(i, _)| QTable::new(seed.wrapping_add(i as u64)))
                    .collect();
                let index = fleet
                    .iter()
                    .map(|d| {
                        tiers
                            .iter()
                            .position(|t| *t == d.tier())
                            .expect("tier covered")
                    })
                    .collect();
                QTableSet {
                    sharing,
                    tables,
                    index,
                }
            }
        }
    }

    /// The sharing mode.
    pub fn sharing(&self) -> QSharing {
        self.sharing
    }

    /// The table backing `device`.
    pub fn table_mut(&mut self, device: DeviceId) -> &mut QTable {
        let idx = self.index[device.0];
        &mut self.tables[idx]
    }

    /// Total approximate memory of all tables in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.tables.iter().map(|t| t.memory_bytes()).sum()
    }

    /// Number of distinct tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }
}

impl Serialize for QTableSet {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("sharing".to_string(), self.sharing.to_value()),
            ("tables".to_string(), self.tables.to_value()),
            ("index".to_string(), self.index.to_value()),
        ])
    }
}

impl Deserialize for QTableSet {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let sharing = QSharing::from_value(serde::field_or_null(value, "sharing"))
            .map_err(|e| e.at("sharing"))?;
        let tables = Vec::<QTable>::from_value(serde::field_or_null(value, "tables"))
            .map_err(|e| e.at("tables"))?;
        let index = Vec::<usize>::from_value(serde::field_or_null(value, "index"))
            .map_err(|e| e.at("index"))?;
        if let Some(bad) = index.iter().find(|&&i| i >= tables.len()) {
            return Err(serde::Error::custom(format!(
                "device maps to table {bad} but only {} tables exist",
                tables.len()
            ))
            .at("index"));
        }
        Ok(QTableSet {
            sharing,
            tables,
            index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> GlobalState {
        GlobalState {
            conv: 0,
            fc: 0,
            rc: 0,
            batch: 1,
            epochs: 1,
            k: 1,
        }
    }

    fn l() -> LocalState {
        LocalState {
            co_cpu: 0,
            co_mem: 0,
            network: 0,
            data: 2,
            avail: 0,
        }
    }

    #[test]
    fn values_initialise_small_and_persist() {
        let mut t = QTable::new(1);
        let v = t.value(g(), l(), Action::Idle);
        assert!((-100.0..-99.0).contains(&v));
        assert_eq!(t.value(g(), l(), Action::Idle), v);
        t.set(g(), l(), Action::Idle, 5.0);
        assert_eq!(t.value(g(), l(), Action::Idle), 5.0);
    }

    #[test]
    fn best_action_tracks_updates() {
        let mut t = QTable::new(2);
        let a = Action::from_index(2);
        t.set(g(), l(), a, 10.0);
        let (best, q) = t.best_action(g(), l(), &Action::all());
        assert_eq!(best, a);
        assert_eq!(q, 10.0);
    }

    #[test]
    fn shared_mode_uses_three_tables_for_paper_fleet() {
        let fleet = Fleet::paper_fleet(1);
        let set = QTableSet::new(&fleet, QSharing::SharedPerTier, 7);
        assert_eq!(set.num_tables(), 3);
        let per = QTableSet::new(&fleet, QSharing::PerDevice, 7);
        assert_eq!(per.num_tables(), 200);
    }

    #[test]
    fn shared_table_is_shared_within_tier() {
        let fleet = Fleet::paper_fleet(2);
        let mut set = QTableSet::new(&fleet, QSharing::SharedPerTier, 3);
        let high_ids = fleet.ids_of_tier(DeviceTier::High);
        set.table_mut(high_ids[0]).set(g(), l(), Action::Idle, 9.0);
        assert_eq!(
            set.table_mut(high_ids[1]).value(g(), l(), Action::Idle),
            9.0
        );
    }

    #[test]
    fn memory_grows_with_rows() {
        let mut t = QTable::new(4);
        let before = t.memory_bytes();
        let _ = t.value(g(), l(), Action::Idle);
        assert!(t.memory_bytes() > before);
        assert_eq!(t.num_rows(), 1);
    }
}

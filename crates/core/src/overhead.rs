//! Runtime overhead accounting (Section 6.4 of the paper).
//!
//! The paper reports the per-round cost of AutoFL itself: observing states
//! (496.8 µs), selecting participants/targets (10.5 µs), computing the
//! reward (2.1 µs) and updating the Q-tables (22.1 µs), plus 80 MB of
//! Q-table memory for 200 devices. [`Overhead`] collects the same
//! breakdown from the live controller.

use std::time::Duration;

/// Accumulated controller-side costs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Overhead {
    observe: Duration,
    select: Duration,
    reward: Duration,
    update: Duration,
    rounds: usize,
}

impl Overhead {
    /// Records one round's phase durations.
    pub fn record(
        &mut self,
        observe: Duration,
        select: Duration,
        reward: Duration,
        update: Duration,
    ) {
        self.observe += observe;
        self.select += select;
        self.reward += reward;
        self.update += update;
        self.rounds += 1;
    }

    /// Records only the decision phases (called from `select`).
    pub fn record_decision(&mut self, observe: Duration, select: Duration) {
        self.observe += observe;
        self.select += select;
        self.rounds += 1;
    }

    /// Records only the learning phases (called from `observe`).
    pub fn record_learning(&mut self, reward: Duration, update: Duration) {
        self.reward += reward;
        self.update += update;
    }

    /// Number of recorded rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Per-round averages in microseconds:
    /// `(observe, select, reward, update)`.
    pub fn per_round_us(&self) -> (f64, f64, f64, f64) {
        let n = self.rounds.max(1) as f64;
        (
            self.observe.as_secs_f64() * 1e6 / n,
            self.select.as_secs_f64() * 1e6 / n,
            self.reward.as_secs_f64() * 1e6 / n,
            self.update.as_secs_f64() * 1e6 / n,
        )
    }

    /// Total per-round controller cost in microseconds.
    pub fn total_per_round_us(&self) -> f64 {
        let (a, b, c, d) = self.per_round_us();
        a + b + c + d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_divide_by_rounds() {
        let mut o = Overhead::default();
        o.record(
            Duration::from_micros(100),
            Duration::from_micros(10),
            Duration::from_micros(2),
            Duration::from_micros(20),
        );
        o.record(
            Duration::from_micros(300),
            Duration::from_micros(30),
            Duration::from_micros(6),
            Duration::from_micros(60),
        );
        let (obs, sel, rew, upd) = o.per_round_us();
        assert!((obs - 200.0).abs() < 1e-6);
        assert!((sel - 20.0).abs() < 1e-6);
        assert!((rew - 4.0).abs() < 1e-6);
        assert!((upd - 40.0).abs() < 1e-6);
        assert!((o.total_per_round_us() - 264.0).abs() < 1e-6);
    }

    #[test]
    fn zero_rounds_reports_zero() {
        let o = Overhead::default();
        assert_eq!(o.total_per_round_us(), 0.0);
    }
}

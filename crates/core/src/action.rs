//! The two-level AutoFL action space (Section 4.1).
//!
//! Level 1 decides *participation*; level 2 picks the execution target
//! (CPU/GPU) augmented with a DVFS level for participants. Following the
//! paper, DVFS is exposed to the agent as a small set of frequency
//! fractions rather than every raw V-F step, which keeps the Q-table
//! compact; the fraction is mapped to the nearest real step of the
//! device's table at execution time.

use autofl_device::cost::ExecutionPlan;
use autofl_device::dvfs::{DvfsTable, ExecutionTarget};
use autofl_device::tier::DeviceTier;
use serde::{Deserialize, Serialize};

/// Frequency fractions the agent can choose between (max / eco / deep-eco).
pub const DVFS_LEVELS: [f64; 3] = [1.0, 0.8, 0.6];

/// One device-level action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Stay idle this round.
    Idle,
    /// Train on `target` at `DVFS_LEVELS[dvfs_level]` of maximum frequency.
    Train {
        /// Execution target.
        target: ExecutionTarget,
        /// Index into [`DVFS_LEVELS`].
        dvfs_level: u8,
    },
}

impl Action {
    /// Number of distinct actions (idle + 2 targets × 3 DVFS levels).
    pub const COUNT: usize = 1 + 2 * DVFS_LEVELS.len();

    /// All actions, idle first.
    pub fn all() -> Vec<Action> {
        let mut v = vec![Action::Idle];
        for target in ExecutionTarget::all() {
            for lvl in 0..DVFS_LEVELS.len() {
                v.push(Action::Train {
                    target,
                    dvfs_level: lvl as u8,
                });
            }
        }
        v
    }

    /// All participation actions (everything except [`Action::Idle`]).
    pub fn training_actions() -> Vec<Action> {
        Action::all().into_iter().skip(1).collect()
    }

    /// Dense index in `0..Action::COUNT`.
    pub fn index(&self) -> usize {
        match self {
            Action::Idle => 0,
            Action::Train { target, dvfs_level } => {
                let t = match target {
                    ExecutionTarget::Cpu => 0,
                    ExecutionTarget::Gpu => 1,
                };
                1 + t * DVFS_LEVELS.len() + *dvfs_level as usize
            }
        }
    }

    /// Inverse of [`Action::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= Action::COUNT`.
    pub fn from_index(index: usize) -> Action {
        assert!(index < Action::COUNT, "action index {} out of range", index);
        if index == 0 {
            return Action::Idle;
        }
        let i = index - 1;
        let target = if i / DVFS_LEVELS.len() == 0 {
            ExecutionTarget::Cpu
        } else {
            ExecutionTarget::Gpu
        };
        Action::Train {
            target,
            dvfs_level: (i % DVFS_LEVELS.len()) as u8,
        }
    }

    /// Whether this action participates in training.
    pub fn participates(&self) -> bool {
        matches!(self, Action::Train { .. })
    }

    /// Concrete execution plan on a given tier.
    ///
    /// # Panics
    ///
    /// Panics if called on [`Action::Idle`].
    pub fn plan_for(&self, tier: DeviceTier) -> ExecutionPlan {
        match self {
            Action::Idle => panic!("idle action has no execution plan"),
            Action::Train { target, dvfs_level } => {
                let table = DvfsTable::for_tier(tier, *target);
                ExecutionPlan {
                    target: *target,
                    freq_step: table.step_at_fraction(DVFS_LEVELS[*dvfs_level as usize]),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for (i, a) in Action::all().into_iter().enumerate() {
            assert_eq!(a.index(), i);
            assert_eq!(Action::from_index(i), a);
        }
        assert_eq!(Action::all().len(), Action::COUNT);
    }

    #[test]
    fn training_actions_exclude_idle() {
        assert_eq!(Action::training_actions().len(), Action::COUNT - 1);
        assert!(Action::training_actions().iter().all(|a| a.participates()));
    }

    #[test]
    fn plan_maps_fractions_to_real_steps() {
        let a = Action::Train {
            target: ExecutionTarget::Cpu,
            dvfs_level: 0,
        };
        let plan = a.plan_for(DeviceTier::High);
        assert_eq!(plan.freq_step, 23); // max of 23 steps
        let eco = Action::Train {
            target: ExecutionTarget::Cpu,
            dvfs_level: 2,
        };
        let plan = eco.plan_for(DeviceTier::High);
        assert_eq!(plan.freq_step, 14); // 0.6 * 23 ≈ 14
    }

    #[test]
    #[should_panic(expected = "no execution plan")]
    fn idle_has_no_plan() {
        let _ = Action::Idle.plan_for(DeviceTier::Low);
    }
}

//! The AutoFL controller: epsilon-greedy Q-learning over participant
//! selection and execution targets (Algorithm 1 of the paper).

use crate::action::Action;
use crate::overhead::Overhead;
use crate::qtable::{QSharing, QTableSet};
use crate::reward::{reward, ParticipationOutcome, RewardConfig, RewardInputs};
use crate::state::{GlobalState, LocalState, StateSpace};
use autofl_device::cost::{execute, ExecutionPlan};
use autofl_device::fleet::DeviceId;
use autofl_fed::selection::{top_k_by, RoundContext, RoundFeedback, SelectionDecision, Selector};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Hyper-parameters of the AutoFL agent.
///
/// Defaults are the paper's published values: ε = 0.1 (Section 4.2),
/// learning rate γ = 0.9 and discount factor µ = 0.1 (Section 5.3).
#[derive(Debug, Clone)]
pub struct AutoFlConfig {
    /// Exploration probability ε of the epsilon-greedy policy.
    pub epsilon: f64,
    /// Multiplicative per-round decay applied to ε for both exploration
    /// coins (whole-cohort and per-device action). The paper uses constant
    /// ε (`1.0`, the default); values below 1 anneal all exploration away
    /// once the controller's reward has converged (Figure 15 territory)
    /// and are exposed for ablation.
    pub epsilon_decay: f64,
    /// Q-learning learning rate γ.
    pub learning_rate: f64,
    /// Q-learning discount factor µ.
    pub discount: f64,
    /// Reward weights/scales (Eq. 7).
    pub reward: RewardConfig,
    /// Whether the second-level action includes DVFS levels (true) or only
    /// the CPU/GPU choice at maximum frequency (ablation).
    pub dvfs_enabled: bool,
    /// Q-table sharing across devices.
    pub sharing: QSharing,
    /// Agent RNG seed (independent of the simulation seed).
    pub seed: u64,
}

impl Default for AutoFlConfig {
    fn default() -> Self {
        AutoFlConfig {
            epsilon: 0.1,
            epsilon_decay: 1.0,
            learning_rate: 0.9,
            discount: 0.1,
            reward: RewardConfig::default(),
            dvfs_enabled: true,
            sharing: QSharing::PerDevice,
            seed: 0xa07_0f1,
        }
    }
}

/// What the agent committed to in one dispatched round, pending its
/// reward. Under the lockstep engine at most one round is ever pending;
/// the event-driven runtime (`autofl_fed::runtime`) can hold several
/// cohorts in flight and deliver their feedback out of dispatch order,
/// so pending rounds are keyed by round index.
#[derive(Debug, Clone)]
struct PendingRound {
    global_state: GlobalState,
    /// `(local state, chosen action)` for every fleet device.
    per_device: Vec<(LocalState, Action)>,
}

/// The AutoFL selector (the paper's contribution).
///
/// Plug it into [`autofl_fed::engine::Simulation::run`] like any other
/// [`Selector`]; it learns online from the round feedback.
///
/// # Examples
///
/// ```
/// use autofl_core::AutoFl;
/// use autofl_fed::engine::{SimConfig, Simulation};
///
/// let mut sim = Simulation::new(SimConfig::tiny_test(3));
/// let mut autofl = AutoFl::new(Default::default());
/// let result = sim.run(&mut autofl);
/// assert!(result.final_accuracy() > 0.0);
/// ```
#[derive(Debug)]
pub struct AutoFl {
    config: AutoFlConfig,
    space: StateSpace,
    tables: Option<QTableSet>,
    /// In-flight decisions awaiting feedback, keyed by round index.
    pending: Vec<(usize, PendingRound)>,
    rng: SmallRng,
    overhead: Overhead,
    reward_history: Vec<f64>,
    /// Reward config with energy scales normalised to the workload's
    /// nominal per-device round energy (resolved on the first round).
    resolved_reward: Option<RewardConfig>,
}

impl AutoFl {
    /// Creates an agent with the given hyper-parameters.
    pub fn new(config: AutoFlConfig) -> Self {
        let rng = SmallRng::seed_from_u64(config.seed);
        AutoFl {
            config,
            space: StateSpace::paper_bins(),
            tables: None,
            pending: Vec::new(),
            rng,
            overhead: Overhead::default(),
            reward_history: Vec::new(),
            resolved_reward: None,
        }
    }

    /// Creates an agent with the paper's defaults.
    pub fn paper_default() -> Self {
        AutoFl::new(AutoFlConfig::default())
    }

    /// The agent's configuration.
    pub fn config(&self) -> &AutoFlConfig {
        &self.config
    }

    /// Mean per-device reward of each completed round; flattens once the
    /// policy converges (Figure 15).
    pub fn reward_history(&self) -> &[f64] {
        &self.reward_history
    }

    /// Round index after which the mean reward stabilised: the first round
    /// where the trailing `window` rewards stay within `tolerance` of
    /// their mean. `None` until that happens.
    pub fn reward_converged_round(&self, window: usize, tolerance: f64) -> Option<usize> {
        if self.reward_history.len() < window {
            return None;
        }
        for end in window..=self.reward_history.len() {
            let slice = &self.reward_history[end - window..end];
            let mean = slice.iter().sum::<f64>() / window as f64;
            if slice.iter().all(|r| (r - mean).abs() <= tolerance) {
                return Some(end - 1);
            }
        }
        None
    }

    /// Controller-side overhead counters (Section 6.4).
    pub fn overhead(&self) -> &Overhead {
        &self.overhead
    }

    /// Approximate Q-table memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.tables.as_ref().map(|t| t.memory_bytes()).unwrap_or(0)
    }

    fn candidate_actions(&self) -> Vec<Action> {
        if self.config.dvfs_enabled {
            Action::training_actions()
        } else {
            Action::training_actions()
                .into_iter()
                .filter(|a| matches!(a, Action::Train { dvfs_level: 0, .. }))
                .collect()
        }
    }

    /// Bounds a chosen training action to the round's pace.
    ///
    /// The paper augments execution targets with DVFS "to exploit the
    /// performance slack caused by stragglers" — slack exploitation, not
    /// slack creation. A device whose eco/GPU choice would itself become
    /// the straggler (and stretch everyone's idle energy) is upgraded to
    /// the fastest setting of its chosen target, falling back to CPU-max
    /// if the target cannot meet the pace at all.
    fn clamp_to_pace(ctx: &RoundContext<'_>, id: DeviceId, action: Action, pace_s: f64) -> Action {
        let Action::Train { target, dvfs_level } = action else {
            return action;
        };
        let tier = ctx.fleet.device(id).tier();
        let task = ctx.task_for(id);
        let time_of = |a: Action| -> f64 {
            execute(tier, a.plan_for(tier), task, &ctx.conditions.get(id.0)).total_time_s()
        };
        let budget = pace_s * 1.05;
        if time_of(action) <= budget {
            return action;
        }
        // Try faster DVFS levels on the same target, then CPU-max.
        for lvl in (0..dvfs_level).rev() {
            let candidate = Action::Train {
                target,
                dvfs_level: lvl,
            };
            if time_of(candidate) <= budget {
                return candidate;
            }
        }
        Action::Train {
            target: autofl_device::dvfs::ExecutionTarget::Cpu,
            dvfs_level: 0,
        }
    }
}

impl Selector for AutoFl {
    fn select(&mut self, ctx: &RoundContext<'_>, _rng: &mut SmallRng) -> SelectionDecision {
        // Observe phase: build the global and per-device states.
        let t_observe = Instant::now();
        if self.tables.is_none() {
            self.tables = Some(QTableSet::new(
                ctx.fleet,
                self.config.sharing,
                self.config.seed ^ 0x9ab1e,
            ));
        }
        if self.resolved_reward.is_none() {
            // Normalise the Eq. (7) energy scales to this use case's
            // nominal per-device round energy (a mid-tier device at
            // CPU-max under ideal conditions), so the reward's relative
            // term weights are workload-independent: the local term spans
            // ~10–25 units across tiers and the global term ~5–10 units.
            let mid = ctx
                .fleet
                .iter()
                .find(|d| d.tier() == autofl_device::tier::DeviceTier::Mid)
                .or_else(|| ctx.fleet.iter().next())
                .expect("non-empty fleet");
            let nominal_j = execute(
                mid.tier(),
                ExecutionPlan::cpu_max(mid.tier()),
                ctx.task_for(mid.id()),
                &autofl_device::scenario::DeviceConditions::ideal(),
            )
            .total_energy_j()
            .max(1e-6);
            let mut reward = self.config.reward;
            reward.local_energy_scale_j = nominal_j / 25.0;
            reward.global_energy_scale_j = nominal_j * ctx.params.num_participants as f64 / 7.0;
            self.resolved_reward = Some(reward);
        }
        let global_state = self.space.global_state(ctx);
        let total_classes = ctx.partition.num_classes().max(1) as f64;
        // Per-device local states, read through the sharded stores: the
        // conditions store materialises one struct per device and the
        // availability view is storage-free for a static fleet.
        let locals: Vec<LocalState> = ctx
            .fleet
            .iter()
            .map(|d| {
                let frac = ctx.partition.num_classes_present(d.id().0) as f64 / total_classes;
                self.space.local_state(
                    &ctx.conditions.get(d.id().0),
                    frac,
                    &ctx.availability.get(d.id().0),
                )
            })
            .collect();
        let observe_elapsed = t_observe.elapsed();

        // Select phase: epsilon-greedy over per-device Q-values.
        let t_select = Instant::now();
        let candidates = self.candidate_actions();
        let tables = self.tables.as_mut().expect("tables built above");
        let k = ctx.params.num_participants;
        let eps = self.config.epsilon * self.config.epsilon_decay.powi(ctx.round as i32);
        let explore = self.rng.gen::<f64>() < eps;
        let mut actions: Vec<Action> = vec![Action::Idle; ctx.fleet.len()];
        let participants: Vec<DeviceId> = if explore {
            // Exploration draws only from the check-in-eligible pool —
            // the server never contacts ineligible devices.
            let mut ids = ctx.eligible_ids();
            ids.shuffle(&mut self.rng);
            ids.truncate(k);
            for id in &ids {
                actions[id.0] = *candidates
                    .choose(&mut self.rng)
                    .expect("non-empty candidates");
            }
            ids
        } else {
            // Pre-sized from the per-shard availability bins: the store
            // already counted the eligible devices, so no fleet scan (or
            // Vec regrowth) is needed to size the candidate buffer.
            let mut scored: Vec<(DeviceId, Action, f64)> =
                Vec::with_capacity(ctx.availability.eligible_count());
            scored.extend(
                ctx.fleet
                    .iter()
                    .filter(|d| ctx.availability.is_eligible(d.id().0))
                    .map(|d| {
                        let id = d.id();
                        let (a, q) = tables.table_mut(id).best_action(
                            global_state,
                            locals[id.0],
                            &candidates,
                        );
                        (id, a, q)
                    }),
            );
            // Deterministic partial top-K over Q-values (O(N + K log K)
            // instead of sorting the whole eligible fleet): ties keep
            // fleet order via the device-id tie-break, exactly as the
            // stable full sort this replaces did.
            top_k_by(&mut scored, k, |a, b| {
                b.2.partial_cmp(&a.2)
                    .expect("finite Q-values")
                    .then_with(|| a.0.cmp(&b.0))
            });
            for (id, a, _) in &scored {
                // Per-device ε-greedy over the second-level action: each
                // selected device's agent occasionally tries a different
                // execution target / DVFS step. Whole-cohort exploration
                // above cannot cover the per-device action space at fleet
                // scale — K random devices per explored round leave most
                // (device, action) cells unvisited — so without this the
                // greedy policy locks into whichever action the Q-table's
                // random initialisation happened to rank first.
                // Annealed by the same decayed ε as the cohort coin, so
                // `epsilon_decay < 1` removes *all* exploration over time.
                actions[id.0] = if eps > 0.0 && self.rng.gen::<f64>() < eps {
                    *candidates
                        .choose(&mut self.rng)
                        .expect("non-empty candidates")
                } else {
                    *a
                };
            }
            scored.into_iter().map(|(id, _, _)| id).collect()
        };
        // Round pace: the slowest participant at its tier's CPU-max. Eco
        // choices may fill slack up to this pace but not extend it.
        let pace_s = participants
            .iter()
            .map(|id| {
                let tier = ctx.fleet.device(*id).tier();
                execute(
                    tier,
                    ExecutionPlan::cpu_max(tier),
                    ctx.task_for(*id),
                    &ctx.conditions.get(id.0),
                )
                .total_time_s()
            })
            .fold(0.0f64, f64::max);
        for id in &participants {
            actions[id.0] = Self::clamp_to_pace(ctx, *id, actions[id.0], pace_s);
        }
        let plans = participants
            .iter()
            .map(|id| actions[id.0].plan_for(ctx.fleet.device(*id).tier()))
            .collect();
        let select_elapsed = t_select.elapsed();
        self.overhead
            .record_decision(observe_elapsed, select_elapsed);

        self.pending.push((
            ctx.round,
            PendingRound {
                global_state,
                per_device: locals.into_iter().zip(actions).collect(),
            },
        ));
        SelectionDecision {
            participants,
            plans,
        }
    }

    fn observe(&mut self, feedback: &RoundFeedback<'_>) {
        // Match the feedback to the decision made at its dispatch round —
        // not the most recent one, which may belong to a different cohort
        // still in flight under the event-driven runtime.
        let Some(slot) = self.pending.iter().position(|(r, _)| *r == feedback.round) else {
            return;
        };
        let (_, pending) = self.pending.remove(slot);
        let tables = match self.tables.as_mut() {
            Some(t) => t,
            None => return,
        };

        // Reward phase (Eq. 5–7). Deadline misses and mid-round dropouts
        // carry their own (default-zero) penalties, so the agent can
        // learn to route around flaky devices rather than just expensive
        // ones.
        let t_reward = Instant::now();
        let mut local_energy = vec![feedback.idle_energy_per_device_j; pending.per_device.len()];
        let mut outcomes = vec![ParticipationOutcome::Idle; pending.per_device.len()];
        for (id, e) in feedback
            .participants
            .iter()
            .zip(feedback.per_participant_energy_j)
        {
            local_energy[id.0] = *e;
            outcomes[id.0] = ParticipationOutcome::Completed;
        }
        for id in feedback.dropped {
            outcomes[id.0] = ParticipationOutcome::DeadlineMiss;
        }
        for id in feedback.dropouts {
            outcomes[id.0] = ParticipationOutcome::Dropout;
        }
        let reward_config = self.resolved_reward.unwrap_or(self.config.reward);
        let rewards: Vec<f64> = (0..pending.per_device.len())
            .map(|d| {
                reward(
                    &reward_config,
                    &RewardInputs {
                        local_energy_j: local_energy[d],
                        global_energy_j: feedback.global_energy_j,
                        accuracy: feedback.accuracy,
                        prev_accuracy: feedback.prev_accuracy,
                        outcome: outcomes[d],
                        staleness: feedback.mean_staleness,
                        uplink_bytes: feedback.bytes_uplinked as f64,
                    },
                )
            })
            .collect();
        let reward_elapsed = t_reward.elapsed();

        // Update phase: tabular Q-learning. The paper's own sensitivity
        // study picks µ = 0.1 because consecutive round states are only
        // weakly related; we bootstrap against the same state's best
        // action, which is exact in that near-myopic regime.
        let t_update = Instant::now();
        let all_actions = Action::all();
        let gamma = self.config.learning_rate;
        let mu = self.config.discount;
        for (d, ((local_state, action), r)) in pending.per_device.iter().zip(&rewards).enumerate() {
            let table = tables.table_mut(DeviceId(d));
            let (_, max_next) = table.best_action(pending.global_state, *local_state, &all_actions);
            let q = table.value(pending.global_state, *local_state, *action);
            table.set(
                pending.global_state,
                *local_state,
                *action,
                q + gamma * (r + mu * max_next - q),
            );
        }
        let update_elapsed = t_update.elapsed();
        self.overhead
            .record_learning(reward_elapsed, update_elapsed);

        self.reward_history
            .push(rewards.iter().sum::<f64>() / rewards.len().max(1) as f64);
    }

    fn name(&self) -> &'static str {
        "AutoFL"
    }

    // Everything the agent has learned — Q-tables, in-flight decisions,
    // exploration RNG position, reward history and the resolved reward
    // scales — so a resumed run continues the exact learning trajectory.
    // The wall-clock overhead counters are profiling, not simulation
    // state, and restart from zero on resume.
    fn state_snapshot(&self) -> Option<serde::Value> {
        let pending = serde::Value::Seq(
            self.pending
                .iter()
                .map(|(round, p)| {
                    serde::Value::Map(vec![
                        ("round".to_string(), round.to_value()),
                        ("global_state".to_string(), p.global_state.to_value()),
                        (
                            "per_device".to_string(),
                            serde::Value::Seq(
                                p.per_device
                                    .iter()
                                    .map(|(l, a)| {
                                        serde::Value::Map(vec![
                                            ("l".to_string(), l.to_value()),
                                            ("a".to_string(), a.to_value()),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        Some(serde::Value::Map(vec![
            ("tables".to_string(), self.tables.to_value()),
            ("pending".to_string(), pending),
            ("rng".to_string(), self.rng.state().to_vec().to_value()),
            ("reward_history".to_string(), self.reward_history.to_value()),
            (
                "resolved_reward".to_string(),
                self.resolved_reward.to_value(),
            ),
        ]))
    }

    fn state_restore(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let tables = Option::<QTableSet>::from_value(serde::field_or_null(state, "tables"))
            .map_err(|e| e.at("tables"))?;
        let pending_rows = match serde::field_or_null(state, "pending") {
            serde::Value::Seq(items) => items,
            other => return Err(serde::Error::invalid_type("sequence", other).at("pending")),
        };
        let mut pending = Vec::with_capacity(pending_rows.len());
        for (i, entry) in pending_rows.iter().enumerate() {
            let in_entry = |e: serde::Error| e.at(&format!("pending[{i}]"));
            let round = usize::from_value(serde::field_or_null(entry, "round"))
                .map_err(|e| in_entry(e.at("round")))?;
            let global_state = GlobalState::from_value(serde::field_or_null(entry, "global_state"))
                .map_err(|e| in_entry(e.at("global_state")))?;
            let device_rows = match serde::field_or_null(entry, "per_device") {
                serde::Value::Seq(items) => items,
                other => {
                    return Err(in_entry(
                        serde::Error::invalid_type("sequence", other).at("per_device"),
                    ))
                }
            };
            let mut per_device = Vec::with_capacity(device_rows.len());
            for (j, d) in device_rows.iter().enumerate() {
                let in_device = |e: serde::Error| in_entry(e.at(&format!("per_device[{j}]")));
                let l = LocalState::from_value(serde::field_or_null(d, "l"))
                    .map_err(|e| in_device(e.at("l")))?;
                let a = Action::from_value(serde::field_or_null(d, "a"))
                    .map_err(|e| in_device(e.at("a")))?;
                per_device.push((l, a));
            }
            pending.push((
                round,
                PendingRound {
                    global_state,
                    per_device,
                },
            ));
        }
        let words =
            Vec::<u64>::from_value(serde::field_or_null(state, "rng")).map_err(|e| e.at("rng"))?;
        let rng_state: [u64; 4] = words.try_into().map_err(|w: Vec<u64>| {
            serde::Error::custom(format!("rng state needs 4 words, found {}", w.len())).at("rng")
        })?;
        let reward_history = Vec::<f64>::from_value(serde::field_or_null(state, "reward_history"))
            .map_err(|e| e.at("reward_history"))?;
        let resolved_reward =
            Option::<RewardConfig>::from_value(serde::field_or_null(state, "resolved_reward"))
                .map_err(|e| e.at("resolved_reward"))?;
        self.tables = tables;
        self.pending = pending;
        self.rng = SmallRng::from_state(rng_state);
        self.reward_history = reward_history;
        self.resolved_reward = resolved_reward;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofl_fed::engine::{SimConfig, Simulation};
    use autofl_fed::selection::RandomSelector;
    use autofl_nn::zoo::Workload;

    #[test]
    fn runs_a_tiny_simulation() {
        let mut sim = Simulation::new(SimConfig::tiny_test(11));
        let mut agent = AutoFl::paper_default();
        let result = sim.run(&mut agent);
        assert!(!result.records.is_empty());
        assert!(agent.reward_history().len() == result.records.len());
        assert!(agent.memory_bytes() > 0);
        assert!(agent.overhead().rounds() > 0);
    }

    #[test]
    fn learns_to_beat_random_selection() {
        let mut cfg = SimConfig::paper_default(Workload::CnnMnist);
        cfg.max_rounds = 400;
        let autofl = Simulation::new(cfg.clone()).run(&mut AutoFl::paper_default());
        let random = Simulation::new(cfg).run(&mut RandomSelector::new());
        assert!(
            autofl.ppw_global() > random.ppw_global(),
            "AutoFL {} vs random {}",
            autofl.ppw_global(),
            random.ppw_global()
        );
    }

    #[test]
    fn epsilon_zero_never_explores_after_warmup() {
        // With epsilon = 0 every selection is greedy, so two identical
        // agents on identical contexts pick identical participants.
        let mk = || {
            AutoFl::new(AutoFlConfig {
                epsilon: 0.0,
                ..Default::default()
            })
        };
        let mut sim_a = Simulation::new(SimConfig::tiny_test(5));
        let mut sim_b = Simulation::new(SimConfig::tiny_test(5));
        let a = sim_a.run(&mut mk());
        let b = sim_b.run(&mut mk());
        for (ra, rb) in a.records.iter().zip(b.records.iter()) {
            assert_eq!(ra.participants, rb.participants);
        }
    }

    #[test]
    fn reward_convergence_detection() {
        let mut agent = AutoFl::paper_default();
        // Inject a synthetic flat-after-noise reward history.
        agent.reward_history = (0..50)
            .map(|i| if i < 30 { (i % 7) as f64 * 10.0 } else { 100.0 })
            .collect();
        let converged = agent.reward_converged_round(10, 1.0);
        assert_eq!(converged, Some(39));
    }

    #[test]
    fn dvfs_ablation_restricts_actions() {
        let agent = AutoFl::new(AutoFlConfig {
            dvfs_enabled: false,
            ..Default::default()
        });
        let actions = agent.candidate_actions();
        assert_eq!(actions.len(), 2); // CPU-max and GPU-max only
    }
}

//! The AutoFL reinforcement-learning state (Table 1 of the paper).
//!
//! The state splits into a *global* part shared by every device in a round
//! (NN layer mix and the `(B, E, K)` parameters) and a *local* part
//! observed per device (co-running CPU/memory load, network bandwidth,
//! data classes). Continuous features are discretised into the bins the
//! paper derived with DBSCAN; [`StateSpace`] holds those boundaries and
//! can alternatively re-derive them from observations
//! ([`StateSpace::fit_runtime_bins`]).

use autofl_cluster::dbscan::Discretizer;
use autofl_device::network::BANDWIDTH_THRESHOLD_MBPS;
use autofl_device::scenario::DeviceConditions;
use autofl_fed::fleet::DeviceAvailability;
use autofl_fed::selection::RoundContext;
use serde::{Deserialize, Serialize};

/// The discretised global state `S_global`: one value per Table 1 row of
/// the "NN-related Features" and "Global Parameters" groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GlobalState {
    /// `S_CONV` bin: # of CONV layers.
    pub conv: u8,
    /// `S_FC` bin: # of FC layers.
    pub fc: u8,
    /// `S_RC` bin: # of RC layers.
    pub rc: u8,
    /// `S_B` bin: batch size.
    pub batch: u8,
    /// `S_E` bin: local epochs.
    pub epochs: u8,
    /// `S_K` bin: participants per round.
    pub k: u8,
}

/// The discretised per-device state `S_local`: the "Runtime Variance" and
/// "Data Classes" groups of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LocalState {
    /// `S_Co_CPU` bin: co-running CPU utilisation
    /// (none / small / medium / large).
    pub co_cpu: u8,
    /// `S_Co_MEM` bin: co-running memory usage.
    pub co_mem: u8,
    /// `S_Network` bin: 0 = regular (> 40 Mbps), 1 = bad.
    pub network: u8,
    /// `S_Data` bin: fraction of label classes present
    /// (small < 25% / medium < 100% / large = 100%).
    pub data: u8,
    /// `S_Avail` bin: device availability under fleet dynamics
    /// (0 = available and healthy, 1 = stressed — low battery or
    /// thermally throttled, 2 = ineligible). Always 0 with a static
    /// fleet, so the state space is unchanged when dynamics are off.
    pub avail: u8,
}

/// Bin boundaries for every state feature.
#[derive(Debug, Clone)]
pub struct StateSpace {
    conv: Discretizer,
    fc: Discretizer,
    rc: Discretizer,
    batch: Discretizer,
    epochs: Discretizer,
    k: Discretizer,
    co_cpu: Discretizer,
    co_mem: Discretizer,
}

impl Default for StateSpace {
    fn default() -> Self {
        StateSpace::paper_bins()
    }
}

impl StateSpace {
    /// The published Table 1 bins.
    pub fn paper_bins() -> Self {
        StateSpace {
            // small (<10), medium (<20), large (<40), larger (>=40)
            conv: Discretizer::from_boundaries(vec![10.0, 20.0, 40.0]),
            // small (<10), large (>=10)
            fc: Discretizer::from_boundaries(vec![10.0]),
            // small (<5), medium (<10), large (>=10)
            rc: Discretizer::from_boundaries(vec![5.0, 10.0]),
            // small (<8), medium (<32), large (>=32)
            batch: Discretizer::from_boundaries(vec![8.0, 32.0]),
            // small (<5), medium (<10), large (>=10)
            epochs: Discretizer::from_boundaries(vec![5.0, 10.0]),
            // small (<10), medium (<50), large (>=50)
            k: Discretizer::from_boundaries(vec![10.0, 50.0]),
            // small (<25%), medium (<75%), large (<=100%); the "none"
            // bin is handled specially for an exact zero.
            co_cpu: Discretizer::from_boundaries(vec![0.25, 0.75]),
            co_mem: Discretizer::from_boundaries(vec![0.25, 0.75]),
        }
    }

    /// Re-derives the runtime-variance bins from observed utilisation
    /// samples with DBSCAN, the procedure the paper used to build Table 1.
    /// NN/parameter bins keep their published values.
    pub fn fit_runtime_bins(cpu_observations: &[f64], mem_observations: &[f64]) -> Self {
        let mut space = StateSpace::paper_bins();
        let fit = |obs: &[f64], fallback: &Discretizer| -> Discretizer {
            if obs.len() < 10 {
                return fallback.clone();
            }
            let d = Discretizer::fit(obs, 0.08, 4);
            if d.num_bins() >= 2 {
                d
            } else {
                fallback.clone()
            }
        };
        space.co_cpu = fit(cpu_observations, &space.co_cpu);
        space.co_mem = fit(mem_observations, &space.co_mem);
        space
    }

    /// Discretises the round-global features.
    pub fn global_state(&self, ctx: &RoundContext<'_>) -> GlobalState {
        GlobalState {
            conv: self.conv.bin(ctx.layer_counts.conv as f64) as u8,
            fc: self.fc.bin(ctx.layer_counts.fc as f64) as u8,
            rc: self.rc.bin(ctx.layer_counts.rc as f64) as u8,
            batch: self.batch.bin(ctx.params.batch_size as f64) as u8,
            epochs: self.epochs.bin(ctx.params.local_epochs as f64) as u8,
            k: self.k.bin(ctx.params.num_participants as f64) as u8,
        }
    }

    /// Discretises one device's local features.
    ///
    /// `class_fraction` is the share of label classes present on the
    /// device (`S_Data`); `availability` is the device's fleet-dynamics
    /// state (`S_Avail` — pass [`DeviceAvailability::ideal`] for a static
    /// fleet).
    pub fn local_state(
        &self,
        conditions: &DeviceConditions,
        class_fraction: f64,
        availability: &DeviceAvailability,
    ) -> LocalState {
        // Table 1 gives CPU/MEM a dedicated "none" bin at exactly 0%.
        let cpu_bin = if conditions.interference.co_cpu == 0.0 {
            0
        } else {
            1 + self.co_cpu.bin(conditions.interference.co_cpu) as u8
        };
        let mem_bin = if conditions.interference.co_mem == 0.0 {
            0
        } else {
            1 + self.co_mem.bin(conditions.interference.co_mem) as u8
        };
        let network = if conditions.network.bandwidth_mbps > BANDWIDTH_THRESHOLD_MBPS {
            0
        } else {
            1
        };
        let data = if class_fraction < 0.25 {
            0
        } else if class_fraction < 1.0 {
            1
        } else {
            2
        };
        let avail = if !availability.eligible {
            2
        } else if availability.soc < 0.5 || availability.throttle > 0.25 {
            1
        } else {
            0
        };
        LocalState {
            co_cpu: cpu_bin,
            co_mem: mem_bin,
            network,
            data,
            avail,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofl_device::interference::Interference;
    use autofl_device::network::{NetworkObservation, SignalStrength};

    fn conditions(co_cpu: f64, co_mem: f64, bw: f64) -> DeviceConditions {
        DeviceConditions {
            interference: Interference { co_cpu, co_mem },
            network: NetworkObservation {
                signal: if bw > 40.0 {
                    SignalStrength::Strong
                } else {
                    SignalStrength::Weak
                },
                bandwidth_mbps: bw,
            },
            throttle: 0.0,
        }
    }

    #[test]
    fn availability_bins_cover_healthy_stressed_ineligible() {
        let space = StateSpace::paper_bins();
        let at = |avail: DeviceAvailability| {
            space
                .local_state(&conditions(0.0, 0.0, 80.0), 1.0, &avail)
                .avail
        };
        assert_eq!(at(DeviceAvailability::ideal()), 0);
        assert_eq!(
            at(DeviceAvailability {
                soc: 0.3,
                ..DeviceAvailability::ideal()
            }),
            1,
            "low battery is stressed"
        );
        assert_eq!(
            at(DeviceAvailability {
                throttle: 0.6,
                ..DeviceAvailability::ideal()
            }),
            1,
            "thermal throttling is stressed"
        );
        assert_eq!(
            at(DeviceAvailability {
                eligible: false,
                online: false,
                ..DeviceAvailability::ideal()
            }),
            2,
            "ineligible dominates"
        );
    }

    #[test]
    fn local_state_bins_match_table1() {
        let space = StateSpace::paper_bins();
        // None / small / medium / large CPU bins.
        assert_eq!(
            space
                .local_state(
                    &conditions(0.0, 0.0, 80.0),
                    1.0,
                    &DeviceAvailability::ideal()
                )
                .co_cpu,
            0
        );
        assert_eq!(
            space
                .local_state(
                    &conditions(0.1, 0.0, 80.0),
                    1.0,
                    &DeviceAvailability::ideal()
                )
                .co_cpu,
            1
        );
        assert_eq!(
            space
                .local_state(
                    &conditions(0.5, 0.0, 80.0),
                    1.0,
                    &DeviceAvailability::ideal()
                )
                .co_cpu,
            2
        );
        assert_eq!(
            space
                .local_state(
                    &conditions(0.9, 0.0, 80.0),
                    1.0,
                    &DeviceAvailability::ideal()
                )
                .co_cpu,
            3
        );
        // Network threshold at 40 Mbps.
        assert_eq!(
            space
                .local_state(
                    &conditions(0.0, 0.0, 80.0),
                    1.0,
                    &DeviceAvailability::ideal()
                )
                .network,
            0
        );
        assert_eq!(
            space
                .local_state(
                    &conditions(0.0, 0.0, 30.0),
                    1.0,
                    &DeviceAvailability::ideal()
                )
                .network,
            1
        );
        // Data classes: small / medium / large.
        assert_eq!(
            space
                .local_state(
                    &conditions(0.0, 0.0, 80.0),
                    0.2,
                    &DeviceAvailability::ideal()
                )
                .data,
            0
        );
        assert_eq!(
            space
                .local_state(
                    &conditions(0.0, 0.0, 80.0),
                    0.7,
                    &DeviceAvailability::ideal()
                )
                .data,
            1
        );
        assert_eq!(
            space
                .local_state(
                    &conditions(0.0, 0.0, 80.0),
                    1.0,
                    &DeviceAvailability::ideal()
                )
                .data,
            2
        );
    }

    #[test]
    fn fitted_bins_fall_back_on_sparse_data() {
        let space = StateSpace::fit_runtime_bins(&[0.1, 0.2], &[0.3]);
        // Too few observations: published bins kept.
        assert_eq!(
            space
                .local_state(
                    &conditions(0.5, 0.0, 80.0),
                    1.0,
                    &DeviceAvailability::ideal()
                )
                .co_cpu,
            2
        );
    }

    #[test]
    fn fitted_bins_separate_bimodal_load() {
        let mut cpu = Vec::new();
        for i in 0..30 {
            cpu.push(0.1 + (i % 5) as f64 * 0.005); // idle-ish mode
            cpu.push(0.8 + (i % 5) as f64 * 0.005); // busy mode
        }
        let space = StateSpace::fit_runtime_bins(&cpu, &cpu);
        let lo = space
            .local_state(
                &conditions(0.12, 0.0, 80.0),
                1.0,
                &DeviceAvailability::ideal(),
            )
            .co_cpu;
        let hi = space
            .local_state(
                &conditions(0.82, 0.0, 80.0),
                1.0,
                &DeviceAvailability::ideal(),
            )
            .co_cpu;
        assert_ne!(lo, hi);
    }
}

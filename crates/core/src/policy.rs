//! The AutoFL controller as a pluggable [`Policy`], and the standard
//! six-policy registry the paper's evaluation compares.

use crate::controller::{AutoFl, AutoFlConfig};
use autofl_fed::policy::{baseline_registry, Policy, PolicyRegistry};
use autofl_fed::selection::Selector;

/// The six evaluation policies in the paper's reporting order
/// (Section 5.1) — the names [`standard_registry`] serves them under.
pub const PAPER_POLICIES: [&str; 6] = [
    "FedAvg-Random",
    "Power",
    "Performance",
    "O_participant",
    "O_FL",
    "AutoFL",
];

/// The learned AutoFL controller as a registry policy: every run gets a
/// fresh agent built from the held hyper-parameters.
#[derive(Debug, Clone, Default)]
pub struct AutoFlPolicy {
    config: AutoFlConfig,
}

impl AutoFlPolicy {
    /// The paper's hyper-parameters.
    pub fn paper_default() -> Self {
        AutoFlPolicy::default()
    }

    /// A policy minting agents from explicit hyper-parameters (for
    /// ablations: ε-decay, Q-sharing, DVFS off, …).
    pub fn with_config(config: AutoFlConfig) -> Self {
        AutoFlPolicy { config }
    }

    /// The held hyper-parameters.
    pub fn config(&self) -> &AutoFlConfig {
        &self.config
    }
}

impl Policy for AutoFlPolicy {
    fn name(&self) -> &str {
        "AutoFL"
    }

    fn make_selector(&self) -> Box<dyn Selector> {
        Box::new(AutoFl::new(self.config.clone()))
    }
}

/// The full evaluation registry: the `autofl-fed` baselines (including
/// the fixed clusters C1–C7) plus the AutoFL controller.
///
/// New baselines extend this by registering into the returned value — no
/// runner binary needs to change, and spec files can name the new policy
/// immediately.
pub fn standard_registry() -> PolicyRegistry {
    let mut registry = baseline_registry();
    registry.register(Box::new(AutoFlPolicy::paper_default()));
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofl_fed::engine::SimConfig;
    use autofl_fed::policy::run_policy;

    #[test]
    fn standard_registry_serves_all_paper_policies() {
        let reg = standard_registry();
        for name in PAPER_POLICIES {
            let policy = reg.get(name).expect(name);
            assert_eq!(policy.name(), name);
            assert_eq!(policy.make_selector().name(), name);
        }
    }

    #[test]
    fn registry_autofl_matches_direct_construction() {
        let mut cfg = SimConfig::tiny_test(5);
        cfg.max_rounds = 10;
        cfg.target_accuracy = Some(1.1);
        let via_registry = run_policy(&cfg, standard_registry().expect("AutoFL"));
        let mut direct_sim = autofl_fed::engine::Simulation::new(cfg);
        let direct = direct_sim.run(&mut AutoFl::paper_default());
        assert_eq!(via_registry.records.len(), direct.records.len());
        for (a, b) in via_registry.records.iter().zip(&direct.records) {
            assert_eq!(a.participants, b.participants);
            assert_eq!(a.plans, b.plans);
            assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        }
    }
}

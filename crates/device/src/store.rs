//! Sharded structure-of-arrays storage for per-device round state.
//!
//! Million-device fleets make the per-round `Vec<DeviceConditions>` of
//! structs layout a liability: every policy and cost query walks 40-byte
//! records to read one field, and parallel sampling needs a safe way to
//! hand disjoint regions to workers. [`ConditionsStore`] keeps each
//! field in its own array, *sharded* into contiguous device ranges
//! ([`shard_extents`]) so that one worker owns one shard outright —
//! no locks, no interleaved cache lines, and a layout that is identical
//! for any shard count.
//!
//! Sharding is a **layout and parallelism** knob only. Every sampled
//! value is drawn from a per-device RNG stream keyed by the device's
//! *global* id (the `(seed, tag, round, id)` contract documented in
//! `docs/determinism.md`), so the stored bytes are a pure function of
//! the configuration — independent of shard count, thread count and
//! execution schedule.

use crate::interference::Interference;
use crate::network::{NetworkObservation, SignalStrength};
use crate::scenario::DeviceConditions;

/// Splits `len` devices into at most `shards` contiguous `(offset, len)`
/// extents of equal size (the last may be shorter). At least one extent
/// is returned for a non-empty range; `shards` is clamped to `[1, len]`.
///
/// Both the fleet-state store in `autofl-fed` and [`ConditionsStore`]
/// derive their layout from this function, so per-shard views of the two
/// stores are always aligned.
pub fn shard_extents(len: usize, shards: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, len);
    let size = len.div_ceil(shards);
    (0..len.div_ceil(size))
        .map(|s| {
            let offset = s * size;
            (offset, size.min(len - offset))
        })
        .collect()
}

/// The uniform shard size implied by [`shard_extents`] (every shard but
/// the last holds exactly this many devices).
pub fn shard_size(len: usize, shards: usize) -> usize {
    if len == 0 {
        return 1;
    }
    len.div_ceil(shards.clamp(1, len))
}

/// One shard's field arrays. All vectors have the same length (the shard's
/// device count); device `offset + j` lives at index `j` of each array.
#[derive(Debug, Clone, Default)]
pub struct ConditionShard {
    /// First global device id covered by this shard.
    pub offset: usize,
    /// Co-running CPU utilisation per device.
    pub co_cpu: Vec<f64>,
    /// Co-running memory utilisation per device.
    pub co_mem: Vec<f64>,
    /// Signal regime per device.
    pub signal: Vec<SignalStrength>,
    /// Sampled bandwidth per device in Mbps.
    pub bandwidth_mbps: Vec<f64>,
    /// Thermal throttle level per device in `[0, 1]`.
    pub throttle: Vec<f64>,
}

impl ConditionShard {
    fn with_capacity(offset: usize, len: usize) -> Self {
        ConditionShard {
            offset,
            co_cpu: vec![0.0; len],
            co_mem: vec![0.0; len],
            signal: vec![SignalStrength::Strong; len],
            bandwidth_mbps: vec![SignalStrength::Strong.mean_bandwidth_mbps(); len],
            throttle: vec![0.0; len],
        }
    }

    /// Devices in this shard.
    pub fn len(&self) -> usize {
        self.co_cpu.len()
    }

    /// Whether the shard is empty (never true for a built store).
    pub fn is_empty(&self) -> bool {
        self.co_cpu.is_empty()
    }

    /// Writes one device's sampled conditions into lane `j`.
    pub fn set_lane(&mut self, j: usize, c: &DeviceConditions) {
        self.co_cpu[j] = c.interference.co_cpu;
        self.co_mem[j] = c.interference.co_mem;
        self.signal[j] = c.network.signal;
        self.bandwidth_mbps[j] = c.network.bandwidth_mbps;
        self.throttle[j] = c.throttle;
    }
}

/// Sharded structure-of-arrays storage of every device's per-round
/// [`DeviceConditions`].
///
/// [`ConditionsStore::get`] materialises the struct view for one device
/// (a handful of register moves); bulk producers and consumers operate on
/// the per-shard field arrays directly.
#[derive(Debug, Clone, Default)]
pub struct ConditionsStore {
    len: usize,
    shard_size: usize,
    shards: Vec<ConditionShard>,
}

impl ConditionsStore {
    /// An all-ideal store for `len` devices split into `shards` extents.
    pub fn new(len: usize, shards: usize) -> Self {
        let mut store = ConditionsStore::default();
        store.reshape(len, shards);
        store
    }

    /// Builds a single-shard store mirroring a slice of per-device
    /// conditions (test and bench fixture helper).
    pub fn from_conditions(conditions: &[DeviceConditions]) -> Self {
        let mut store = ConditionsStore::new(conditions.len(), 1);
        for (i, c) in conditions.iter().enumerate() {
            store.set(i, c);
        }
        store
    }

    /// Resizes the store for `len` devices in `shards` extents. A no-op
    /// when the geometry already matches, so per-round reuse is free;
    /// otherwise existing contents are discarded (every slot reset to
    /// ideal).
    pub fn reshape(&mut self, len: usize, shards: usize) {
        let size = shard_size(len, shards);
        if self.len == len && self.shard_size == size {
            return;
        }
        self.len = len;
        self.shard_size = size;
        self.shards = shard_extents(len, shards)
            .into_iter()
            .map(|(offset, n)| ConditionShard::with_capacity(offset, n))
            .collect();
    }

    /// Number of devices covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store covers no devices.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The shards, in device order.
    pub fn shards(&self) -> &[ConditionShard] {
        &self.shards
    }

    /// Mutable access to the shards (disjoint ranges — the parallel
    /// sampling entry point fans out over these).
    pub fn shards_mut(&mut self) -> &mut [ConditionShard] {
        &mut self.shards
    }

    #[inline]
    fn locate(&self, i: usize) -> (usize, usize) {
        debug_assert!(i < self.len, "device {i} outside store of {}", self.len);
        (i / self.shard_size, i % self.shard_size)
    }

    /// Materialises device `i`'s conditions.
    #[inline]
    pub fn get(&self, i: usize) -> DeviceConditions {
        let (s, j) = self.locate(i);
        let shard = &self.shards[s];
        DeviceConditions {
            interference: Interference {
                co_cpu: shard.co_cpu[j],
                co_mem: shard.co_mem[j],
            },
            network: NetworkObservation {
                signal: shard.signal[j],
                bandwidth_mbps: shard.bandwidth_mbps[j],
            },
            throttle: shard.throttle[j],
        }
    }

    /// Device `i`'s thermal throttle level (the single field the cost
    /// model reads most often).
    #[inline]
    pub fn throttle(&self, i: usize) -> f64 {
        let (s, j) = self.locate(i);
        self.shards[s].throttle[j]
    }

    /// Writes one device's conditions.
    pub fn set(&mut self, i: usize, c: &DeviceConditions) {
        let (s, j) = self.locate(i);
        self.shards[s].set_lane(j, c);
    }

    /// Approximate heap bytes held by the store (the bench suite's
    /// memory-footprint proxy).
    pub fn size_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.co_cpu.capacity() * 8
                    + s.co_mem.capacity() * 8
                    + s.bandwidth_mbps.capacity() * 8
                    + s.throttle.capacity() * 8
                    + s.signal.capacity()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_extents_cover_the_range_exactly_once() {
        for (len, shards) in [(10, 1), (10, 3), (10, 10), (10, 50), (1, 4), (1000, 16)] {
            let extents = shard_extents(len, shards);
            assert!(!extents.is_empty());
            let mut next = 0;
            for (offset, n) in &extents {
                assert_eq!(*offset, next, "gap at {len}/{shards}");
                assert!(*n > 0);
                next = offset + n;
            }
            assert_eq!(next, len, "extents must cover {len} devices");
            assert!(extents.len() <= shards.max(1));
        }
        assert!(shard_extents(0, 4).is_empty());
    }

    #[test]
    fn store_roundtrips_conditions_at_any_shard_count() {
        let conditions: Vec<DeviceConditions> = (0..23)
            .map(|i| DeviceConditions {
                interference: Interference {
                    co_cpu: i as f64 * 0.01,
                    co_mem: i as f64 * 0.02,
                },
                network: NetworkObservation {
                    signal: if i % 3 == 0 {
                        SignalStrength::Weak
                    } else {
                        SignalStrength::Strong
                    },
                    bandwidth_mbps: 10.0 + i as f64,
                },
                throttle: i as f64 * 0.03,
            })
            .collect();
        for shards in [1, 2, 5, 23, 99] {
            let mut store = ConditionsStore::new(conditions.len(), shards);
            for (i, c) in conditions.iter().enumerate() {
                store.set(i, c);
            }
            for (i, c) in conditions.iter().enumerate() {
                assert_eq!(store.get(i), *c, "device {i} at {shards} shards");
                assert_eq!(store.throttle(i), c.throttle);
            }
        }
    }

    #[test]
    fn reshape_is_a_noop_for_matching_geometry() {
        let mut store = ConditionsStore::new(10, 2);
        let cond = DeviceConditions {
            throttle: 0.5,
            ..DeviceConditions::ideal()
        };
        store.set(3, &cond);
        store.reshape(10, 2);
        assert_eq!(
            store.get(3).throttle,
            0.5,
            "matching reshape must keep data"
        );
        store.reshape(10, 5);
        assert_eq!(store.get(3).throttle, 0.0, "regrown store resets to ideal");
        assert!(store.size_bytes() > 0);
    }
}

//! Runtime-variance scenarios: which devices see interference and weak
//! networks in a given round (Section 5.2 / Figures 5 and 10).

use crate::fleet::{Device, Fleet};
use crate::interference::Interference;
use crate::network::{NetworkObservation, SignalStrength};
use crate::store::ConditionsStore;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Probabilities of per-round runtime variance across the fleet.
///
/// Each device's per-user propensity multiplies these base probabilities,
/// so some users are chronically noisy and an adaptive selector can learn
/// to route around them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VarianceScenario {
    /// Probability that a device runs an interfering app during a round.
    pub interference_prob: f64,
    /// Probability that a device is on a weak-signal network in a round.
    pub weak_network_prob: f64,
}

impl VarianceScenario {
    /// No interference, stable strong network (Figure 5a / 10a).
    pub fn calm() -> Self {
        VarianceScenario {
            interference_prob: 0.0,
            weak_network_prob: 0.0,
        }
    }

    /// Co-running application interference present (Figure 5b / 10b).
    pub fn with_interference() -> Self {
        VarianceScenario {
            interference_prob: 0.55,
            weak_network_prob: 0.05,
        }
    }

    /// Weak network signal strength (Figure 5c / 10c).
    pub fn weak_network() -> Self {
        VarianceScenario {
            interference_prob: 0.05,
            weak_network_prob: 0.65,
        }
    }

    /// A mixed, in-the-field default.
    pub fn realistic() -> Self {
        VarianceScenario {
            interference_prob: 0.30,
            weak_network_prob: 0.20,
        }
    }

    /// Samples the conditions one device observes during one round.
    pub fn sample(&self, device: &Device, rng: &mut impl Rng) -> DeviceConditions {
        let p_int = (self.interference_prob * device.interference_propensity()).clamp(0.0, 1.0);
        let interference = if p_int > 0.0 && rng.gen_bool(p_int) {
            Interference::web_browsing(rng)
        } else {
            Interference::none()
        };
        let p_weak = (self.weak_network_prob * device.weak_signal_propensity()).clamp(0.0, 1.0);
        let signal = if p_weak > 0.0 && rng.gen_bool(p_weak) {
            SignalStrength::Weak
        } else {
            SignalStrength::Strong
        };
        DeviceConditions {
            interference,
            network: NetworkObservation::sample(signal, rng),
            throttle: 0.0,
        }
    }

    /// Samples the whole fleet's conditions for one round into a sharded
    /// structure-of-arrays store, one shard per parallel task.
    ///
    /// Every device draws from its own RNG stream derived from
    /// `round_seed` and its raw id, so the stored values are a pure
    /// function of `(scenario, fleet, round_seed)` — independent of the
    /// store's shard count, the thread count and the execution schedule.
    /// This is the per-device-stream rule the workspace's determinism
    /// contract relies on (see `docs/determinism.md`).
    ///
    /// The store's geometry is preserved; it must already cover the fleet
    /// (use [`crate::store::ConditionsStore::reshape`]).
    ///
    /// # Panics
    ///
    /// Panics if `out` does not cover exactly `fleet.len()` devices.
    pub fn sample_into(&self, fleet: &Fleet, round_seed: u64, out: &mut ConditionsStore) {
        assert_eq!(out.len(), fleet.len(), "store must cover the fleet");
        out.shards_mut().par_iter_mut().for_each(|shard| {
            for j in 0..shard.len() {
                let i = shard.offset + j;
                let mut rng = SmallRng::seed_from_u64(
                    round_seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                let c = self.sample(fleet.device(crate::fleet::DeviceId(i)), &mut rng);
                shard.set_lane(j, &c);
            }
        });
    }

    /// Samples the whole fleet's conditions into a `Vec` of structs
    /// (cleared first) — the array-of-structs view of [`sample_into`],
    /// kept for tests and small fixtures. Values are bit-identical to the
    /// store path: both draw from the same per-device streams.
    ///
    /// [`sample_into`]: VarianceScenario::sample_into
    pub fn sample_fleet(&self, fleet: &Fleet, round_seed: u64, out: &mut Vec<DeviceConditions>) {
        let mut store = ConditionsStore::new(fleet.len(), 1);
        self.sample_into(fleet, round_seed, &mut store);
        out.clear();
        out.extend((0..fleet.len()).map(|i| store.get(i)));
    }
}

/// The runtime conditions one device observes during one round — the
/// per-device part of the AutoFL state (Table 1 rows `S_Co_CPU`,
/// `S_Co_MEM`, `S_Network`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceConditions {
    /// Co-running app load.
    pub interference: Interference,
    /// Network observation.
    pub network: NetworkObservation,
    /// Thermal throttle level in `[0, 1]` (0 = cool, full frequency).
    /// Scenario sampling always produces 0; the fleet-dynamics subsystem
    /// overlays the device's [`crate::lifecycle::DeviceLifecycle`] level
    /// before costs are executed.
    pub throttle: f64,
}

impl DeviceConditions {
    /// Ideal conditions (no load, strong mean bandwidth). Useful in tests.
    pub fn ideal() -> Self {
        DeviceConditions {
            interference: Interference::none(),
            network: NetworkObservation {
                signal: SignalStrength::Strong,
                bandwidth_mbps: SignalStrength::Strong.mean_bandwidth_mbps(),
            },
            throttle: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::Fleet;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn calm_scenario_produces_no_interference() {
        let fleet = Fleet::paper_fleet(1);
        let mut rng = SmallRng::seed_from_u64(1);
        let sc = VarianceScenario::calm();
        for d in fleet.iter().take(50) {
            let c = sc.sample(d, &mut rng);
            assert!(!c.interference.is_active());
            assert_eq!(c.network.signal, SignalStrength::Strong);
        }
    }

    #[test]
    fn interference_scenario_hits_about_half_the_fleet() {
        let fleet = Fleet::paper_fleet(2);
        let mut rng = SmallRng::seed_from_u64(2);
        let sc = VarianceScenario::with_interference();
        let active = fleet
            .iter()
            .filter(|d| sc.sample(d, &mut rng).interference.is_active())
            .count();
        assert!(
            (60..=160).contains(&active),
            "{} of 200 devices interfered",
            active
        );
    }

    #[test]
    fn sample_fleet_is_schedule_independent() {
        let fleet = Fleet::paper_fleet(4);
        let sc = VarianceScenario::realistic();
        let mut seq = Vec::new();
        let mut par = Vec::new();
        let prev = std::env::var("AUTOFL_THREADS").ok();
        std::env::set_var("AUTOFL_THREADS", "1");
        rayon::refresh_thread_count();
        sc.sample_fleet(&fleet, 0xabcd, &mut seq);
        std::env::set_var("AUTOFL_THREADS", "8");
        rayon::refresh_thread_count();
        sc.sample_fleet(&fleet, 0xabcd, &mut par);
        match prev {
            Some(v) => std::env::set_var("AUTOFL_THREADS", v),
            None => std::env::remove_var("AUTOFL_THREADS"),
        }
        rayon::refresh_thread_count();
        assert_eq!(seq, par);
        // And a different round seed must change *something*.
        let mut other = Vec::new();
        sc.sample_fleet(&fleet, 0xabce, &mut other);
        assert_ne!(seq, other);
    }

    #[test]
    fn weak_scenario_mostly_weak_signals() {
        let fleet = Fleet::paper_fleet(3);
        let mut rng = SmallRng::seed_from_u64(3);
        let sc = VarianceScenario::weak_network();
        let weak = fleet
            .iter()
            .filter(|d| sc.sample(d, &mut rng).network.signal == SignalStrength::Weak)
            .count();
        assert!(weak > 80, "{} of 200 on weak signal", weak);
    }
}

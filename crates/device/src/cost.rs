//! The per-round time/energy cost model (Eqs. 1–4 of the paper).
//!
//! Given a training task (FLOPs and upload bytes), an execution plan
//! (target and DVFS step) and the device's runtime conditions, [`execute`]
//! returns the compute/communication time and energy. The paper validates its
//! latency-based energy estimation at 7.3% MAPE; ours is exact by
//! construction since the same model produces both "measured" and
//! "estimated" values — the RL reward uses these estimates just as the
//! paper's Eq. (5)–(6) do.

use crate::dvfs::{DvfsTable, ExecutionTarget};
use crate::scenario::DeviceConditions;
use crate::tier::DeviceTier;
use serde::{Deserialize, Serialize};

/// The work one participant performs in one aggregation round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainingTask {
    /// Total training FLOPs: `E × local_samples × training_flops_per_sample`.
    pub flops: u64,
    /// Gradient upload size in bytes.
    pub upload_bytes: u64,
}

/// The second-level action: execution target plus DVFS step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// Which silicon trains.
    pub target: ExecutionTarget,
    /// 1-based V-F step within the target's [`DvfsTable`].
    pub freq_step: usize,
}

impl ExecutionPlan {
    /// CPU at maximum frequency — the conventional default.
    pub fn cpu_max(tier: DeviceTier) -> Self {
        ExecutionPlan {
            target: ExecutionTarget::Cpu,
            freq_step: DvfsTable::for_tier(tier, ExecutionTarget::Cpu).num_steps(),
        }
    }
}

/// Time and energy of one device's round participation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RoundCost {
    /// On-device training time in seconds.
    pub compute_time_s: f64,
    /// Gradient upload time in seconds.
    pub comm_time_s: f64,
    /// Computation energy in joules (Eq. 1 / Eq. 2).
    pub compute_energy_j: f64,
    /// Communication energy in joules (Eq. 3).
    pub comm_energy_j: f64,
}

impl RoundCost {
    /// Total wall-clock contribution of this device to the round.
    pub fn total_time_s(&self) -> f64 {
        self.compute_time_s + self.comm_time_s
    }

    /// Total active energy (`E_comp + E_comm`, the selected branch of
    /// Eq. 5).
    pub fn total_energy_j(&self) -> f64 {
        self.compute_energy_j + self.comm_energy_j
    }
}

/// Fraction of nominal throughput left at thermal throttle level `t`
/// (`1.0` when cool, `1 − 0.5 t` when hot): the governor caps frequency,
/// so effective GFLOPS only ever go down.
pub fn throttle_speed_factor(throttle: f64) -> f64 {
    1.0 - 0.5 * throttle
}

/// Fraction of nominal busy power drawn at thermal throttle level `t`.
/// Lower frequency also means lower power, but less than linearly in the
/// lost throughput, so throttled training costs *more* joules per FLOP.
pub fn throttle_power_factor(throttle: f64) -> f64 {
    1.0 - 0.35 * throttle
}

/// Executes a training task on a device and returns its cost.
///
/// Compute time is `FLOPs / (throughput(step) × interference factor ×
/// thermal factor)`; compute energy is `P_busy(f) × t_busy` per
/// Eq. (1)/(2); communication follows Eq. (3) with the sampled bandwidth
/// and signal-dependent TX power.
pub fn execute(
    tier: DeviceTier,
    plan: ExecutionPlan,
    task: TrainingTask,
    conditions: &DeviceConditions,
) -> RoundCost {
    let table = DvfsTable::for_tier(tier, plan.target);
    let factor = match plan.target {
        ExecutionTarget::Cpu => conditions.interference.cpu_throughput_factor(),
        ExecutionTarget::Gpu => conditions.interference.gpu_throughput_factor(),
    };
    let gflops = table.gflops(plan.freq_step) * factor * throttle_speed_factor(conditions.throttle);
    let compute_time_s = task.flops as f64 / (gflops * 1e9);
    let compute_energy_j = table.busy_power_w(plan.freq_step)
        * throttle_power_factor(conditions.throttle)
        * compute_time_s;
    let comm_time_s = conditions.network.comm_time_s(task.upload_bytes);
    let comm_energy_j = conditions.network.comm_energy_j(task.upload_bytes);
    RoundCost {
        compute_time_s,
        comm_time_s,
        compute_energy_j,
        comm_energy_j,
    }
}

/// Idle energy of a non-selected (or waiting) device over `duration_s`
/// seconds — Eq. (4): `E_idle = P_idle × t_round`.
pub fn idle_energy_j(tier: DeviceTier, duration_s: f64) -> f64 {
    tier.idle_power_w() * duration_s.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::Interference;
    use crate::network::{NetworkObservation, SignalStrength};

    fn task() -> TrainingTask {
        TrainingTask {
            flops: 100_000_000_000, // 100 GFLOP
            upload_bytes: 6_653_480,
        }
    }

    #[test]
    fn high_end_is_faster_than_low_end() {
        let c = DeviceConditions::ideal();
        let h = execute(
            DeviceTier::High,
            ExecutionPlan::cpu_max(DeviceTier::High),
            task(),
            &c,
        );
        let l = execute(
            DeviceTier::Low,
            ExecutionPlan::cpu_max(DeviceTier::Low),
            task(),
            &c,
        );
        let ratio = l.compute_time_s / h.compute_time_s;
        assert!(
            (2.5..3.5).contains(&ratio),
            "H/L training-time ratio {}",
            ratio
        );
    }

    #[test]
    fn low_end_draws_less_power_but_may_use_more_energy() {
        // Section 3.1: low-end power is ~46.4% of high-end; whether energy
        // wins depends on the workload balance.
        let p_low = DeviceTier::Low.cpu_peak_power_w() / DeviceTier::High.cpu_peak_power_w();
        assert!((0.6..0.7).contains(&p_low));
    }

    #[test]
    fn interference_slows_cpu_execution() {
        let calm = DeviceConditions::ideal();
        let busy = DeviceConditions {
            interference: Interference {
                co_cpu: 0.8,
                co_mem: 0.5,
            },
            ..DeviceConditions::ideal()
        };
        let plan = ExecutionPlan::cpu_max(DeviceTier::Mid);
        let a = execute(DeviceTier::Mid, plan, task(), &calm);
        let b = execute(DeviceTier::Mid, plan, task(), &busy);
        assert!(b.compute_time_s > 2.0 * a.compute_time_s);
    }

    #[test]
    fn weak_network_multiplies_comm_cost() {
        let strong = DeviceConditions::ideal();
        let weak = DeviceConditions {
            network: NetworkObservation {
                signal: SignalStrength::Weak,
                bandwidth_mbps: SignalStrength::Weak.mean_bandwidth_mbps(),
            },
            ..DeviceConditions::ideal()
        };
        let plan = ExecutionPlan::cpu_max(DeviceTier::Mid);
        let a = execute(DeviceTier::Mid, plan, task(), &strong);
        let b = execute(DeviceTier::Mid, plan, task(), &weak);
        // Paper: ~4.3x communication time/energy under weak signal.
        assert!(b.comm_time_s / a.comm_time_s > 4.0);
        assert!(b.comm_energy_j > a.comm_energy_j);
    }

    #[test]
    fn lower_dvfs_step_trades_time_for_energy() {
        let c = DeviceConditions::ideal();
        let table = DvfsTable::for_tier(DeviceTier::High, ExecutionTarget::Cpu);
        let fast = execute(
            DeviceTier::High,
            ExecutionPlan {
                target: ExecutionTarget::Cpu,
                freq_step: table.num_steps(),
            },
            task(),
            &c,
        );
        let slow = execute(
            DeviceTier::High,
            ExecutionPlan {
                target: ExecutionTarget::Cpu,
                freq_step: table.num_steps() / 2,
            },
            task(),
            &c,
        );
        assert!(slow.compute_time_s > fast.compute_time_s);
        assert!(slow.compute_energy_j < fast.compute_energy_j);
    }

    #[test]
    fn thermal_throttle_slows_and_costs_more_energy_per_flop() {
        let cool = DeviceConditions::ideal();
        let hot = DeviceConditions {
            throttle: 0.8,
            ..DeviceConditions::ideal()
        };
        let plan = ExecutionPlan::cpu_max(DeviceTier::Mid);
        let a = execute(DeviceTier::Mid, plan, task(), &cool);
        let b = execute(DeviceTier::Mid, plan, task(), &hot);
        assert!(b.compute_time_s > a.compute_time_s, "throttling must slow");
        assert!(
            b.compute_energy_j > a.compute_energy_j,
            "lost frequency outweighs the power drop: J/FLOP worsens"
        );
        // Zero throttle is the exact pre-dynamics cost (bit-identical).
        let zero = DeviceConditions {
            throttle: 0.0,
            ..DeviceConditions::ideal()
        };
        let c = execute(DeviceTier::Mid, plan, task(), &zero);
        assert_eq!(a.compute_time_s.to_bits(), c.compute_time_s.to_bits());
        assert_eq!(a.compute_energy_j.to_bits(), c.compute_energy_j.to_bits());
    }

    #[test]
    fn idle_energy_follows_eq4() {
        assert!((idle_energy_j(DeviceTier::High, 10.0) - 2.5).abs() < 1e-9);
        assert_eq!(idle_energy_j(DeviceTier::Low, -1.0), 0.0);
    }

    #[test]
    fn round_time_magnitudes_are_plausible() {
        // CNN-MNIST S1-ish task on a high-end phone should take seconds to
        // tens of seconds, not milliseconds or hours.
        let c = DeviceConditions::ideal();
        let r = execute(
            DeviceTier::High,
            ExecutionPlan::cpu_max(DeviceTier::High),
            TrainingTask {
                flops: 10 * 300 * 73_800_000, // E=10, 300 samples
                upload_bytes: 6_653_480,
            },
            &c,
        );
        assert!(
            (1.0..120.0).contains(&r.compute_time_s),
            "compute {} s",
            r.compute_time_s
        );
    }
}

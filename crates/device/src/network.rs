//! Wireless network model: Gaussian bandwidth variance and signal-strength
//! dependent transmit power (Eq. 3 of the paper).
//!
//! Section 5.2: "real-world network variability is typically modeled by a
//! Gaussian distribution"; Section 3.2: under weak signal the
//! communication time and energy increase ~4.3x on average.

use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Bandwidth threshold between the paper's `Regular` and `Bad` network
/// states (Table 1): 40 Mbps.
pub const BANDWIDTH_THRESHOLD_MBPS: f64 = 40.0;

/// Signal strength regimes with distinct transmit-power draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalStrength {
    /// Strong signal: high bandwidth, low TX power.
    Strong,
    /// Weak signal: low bandwidth, elevated TX power (the radio boosts
    /// amplification to hold the link).
    Weak,
}

impl SignalStrength {
    /// Transmit power of the wireless interface in watts (the `P^S_TX` of
    /// Eq. 3). Weak-signal TX power is ~2.75x strong-signal, consistent
    /// with the signal-strength power measurements the paper cites.
    pub fn tx_power_w(&self) -> f64 {
        match self {
            SignalStrength::Strong => 0.8,
            SignalStrength::Weak => 2.2,
        }
    }

    /// Mean downlink/uplink bandwidth in Mbps under this signal.
    pub fn mean_bandwidth_mbps(&self) -> f64 {
        match self {
            SignalStrength::Strong => 90.0,
            SignalStrength::Weak => 14.0,
        }
    }

    /// Standard deviation of the Gaussian bandwidth draw.
    pub fn bandwidth_std_mbps(&self) -> f64 {
        match self {
            SignalStrength::Strong => 18.0,
            SignalStrength::Weak => 6.0,
        }
    }
}

/// The network condition a device observes during one aggregation round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkObservation {
    /// Signal regime.
    pub signal: SignalStrength,
    /// Sampled bandwidth in Mbps (Gaussian, clamped to ≥ 1).
    pub bandwidth_mbps: f64,
}

impl NetworkObservation {
    /// Samples a per-round observation for the given signal regime.
    ///
    /// Invariant: a `Weak` observation never classifies as `Regular`.
    /// The Weak Gaussian (mean 14, std 6) has a ~4.3σ tail above the
    /// 40 Mbps threshold, so an unclamped draw could land a weak-signal
    /// device in the paper's `Regular` network state — contradicting the
    /// Table 1 binning that ties signal regime to network state. Weak
    /// draws are therefore capped at [`BANDWIDTH_THRESHOLD_MBPS`];
    /// exactly one Gaussian sample is consumed either way, so RNG stream
    /// positions are unaffected.
    pub fn sample(signal: SignalStrength, rng: &mut impl Rng) -> Self {
        let normal = Normal::new(signal.mean_bandwidth_mbps(), signal.bandwidth_std_mbps())
            .expect("finite bandwidth parameters");
        let raw = normal.sample(rng).max(1.0);
        let bandwidth_mbps = match signal {
            SignalStrength::Strong => raw,
            SignalStrength::Weak => raw.min(BANDWIDTH_THRESHOLD_MBPS),
        };
        NetworkObservation {
            signal,
            bandwidth_mbps,
        }
    }

    /// Whether the paper's `S_Network` state is `Regular` (> 40 Mbps).
    /// [`Self::sample`] guarantees this is `false` for every `Weak`
    /// observation.
    pub fn is_regular(&self) -> bool {
        self.bandwidth_mbps > BANDWIDTH_THRESHOLD_MBPS
    }

    /// Time in seconds to transmit `bytes` at the observed bandwidth
    /// (the `t_TX` of Eq. 3).
    pub fn comm_time_s(&self, bytes: u64) -> f64 {
        (bytes as f64 * 8.0) / (self.bandwidth_mbps * 1e6)
    }

    /// Communication energy in joules per Eq. 3:
    /// `E_comm = P^S_TX × t_TX`.
    pub fn comm_energy_j(&self, bytes: u64) -> f64 {
        self.signal.tx_power_w() * self.comm_time_s(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn weak_signal_is_slower_and_hungrier() {
        // Mean comm time ratio should be roughly the paper's 4.3x and
        // energy strictly worse.
        let strong_t = SignalStrength::Strong.mean_bandwidth_mbps();
        let weak_t = SignalStrength::Weak.mean_bandwidth_mbps();
        let ratio = strong_t / weak_t;
        assert!(ratio > 4.0 && ratio < 8.0, "time ratio {}", ratio);
        assert!(SignalStrength::Weak.tx_power_w() > SignalStrength::Strong.tx_power_w());
    }

    #[test]
    fn sampled_bandwidth_is_positive_and_regular_matches_threshold() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..200 {
            let o = NetworkObservation::sample(SignalStrength::Weak, &mut rng);
            assert!(o.bandwidth_mbps >= 1.0);
            assert_eq!(o.is_regular(), o.bandwidth_mbps > 40.0);
        }
    }

    #[test]
    fn comm_energy_follows_eq3() {
        let o = NetworkObservation {
            signal: SignalStrength::Strong,
            bandwidth_mbps: 80.0,
        };
        // 10 MB at 80 Mbps = 1 s; at 0.8 W = 0.8 J.
        let bytes = 10_000_000u64;
        assert!((o.comm_time_s(bytes) - 1.0).abs() < 1e-9);
        assert!((o.comm_energy_j(bytes) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn weak_draws_mostly_fall_below_threshold() {
        let mut rng = SmallRng::seed_from_u64(6);
        let below = (0..500)
            .filter(|_| !NetworkObservation::sample(SignalStrength::Weak, &mut rng).is_regular())
            .count();
        assert!(below > 450, "only {}/500 weak draws below 40 Mbps", below);
    }

    #[test]
    fn weak_observations_are_never_regular() {
        // The Table 1 binning invariant: Weak signal implies the Bad
        // network state, even on far-tail Gaussian draws.
        for seed in 0..64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..1_000 {
                let o = NetworkObservation::sample(SignalStrength::Weak, &mut rng);
                assert!(!o.is_regular(), "weak draw classified Regular: {o:?}");
                assert!(o.bandwidth_mbps <= BANDWIDTH_THRESHOLD_MBPS);
                assert!(o.bandwidth_mbps >= 1.0);
            }
        }
    }
}

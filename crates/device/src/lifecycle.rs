//! Per-device lifecycle state for stochastic fleet dynamics.
//!
//! Real FL fleets are unstable: a phone is only eligible while it is
//! idle, sufficiently charged (or plugged in) and on a usable network,
//! and sustained training heats the SoC until DVFS throttles it. This
//! module holds the slow-moving per-device state those effects evolve —
//! battery state-of-charge, charging status, thermal throttle level,
//! foreground-user sessions and connectivity — which
//! `autofl_fed::fleet::FleetState` advances round by round with
//! per-device RNG streams.

use serde::{Deserialize, Serialize};

/// The slow-moving state one device carries across aggregation rounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceLifecycle {
    /// Battery state of charge in `[0, 1]`.
    pub soc: f64,
    /// Whether the device is plugged in this round.
    pub charging: bool,
    /// Thermal throttle level in `[0, 1]`: 0 = cool (full frequency),
    /// 1 = fully throttled. Scales execution throughput down via
    /// [`crate::scenario::DeviceConditions::throttle`].
    pub throttle: f64,
    /// Whether the user is actively using the device (foreground
    /// session) this round — such devices are ineligible, matching the
    /// production FL protocol's "idle" requirement.
    pub foreground: bool,
    /// Whether the device currently has network connectivity.
    pub online: bool,
}

/// The production FL check-in rule over raw lifecycle fields: online,
/// not in a foreground session, and either plugged in or above
/// `min_soc`.
///
/// This is the single definition of eligibility — both the struct view
/// ([`DeviceLifecycle::eligible`]) and the structure-of-arrays hot path
/// (`autofl_fed::fleet::FleetStore::begin_round`) call it, so the rule
/// cannot silently diverge between layouts.
pub fn check_in_eligible(
    online: bool,
    foreground: bool,
    charging: bool,
    soc: f64,
    min_soc: f64,
) -> bool {
    online && !foreground && (charging || soc >= min_soc)
}

impl DeviceLifecycle {
    /// A fully available device: full battery, cool, idle, online.
    pub fn healthy() -> Self {
        DeviceLifecycle {
            soc: 1.0,
            charging: false,
            throttle: 0.0,
            foreground: false,
            online: true,
        }
    }

    /// Eligibility under the production FL check-in rule
    /// ([`check_in_eligible`]).
    pub fn eligible(&self, min_soc: f64) -> bool {
        check_in_eligible(
            self.online,
            self.foreground,
            self.charging,
            self.soc,
            min_soc,
        )
    }

    /// Clamps `soc` and `throttle` back into `[0, 1]` after an update.
    pub fn clamp(&mut self) {
        self.soc = self.soc.clamp(0.0, 1.0);
        self.throttle = self.throttle.clamp(0.0, 1.0);
    }
}

impl Default for DeviceLifecycle {
    fn default() -> Self {
        DeviceLifecycle::healthy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_device_is_eligible() {
        let d = DeviceLifecycle::healthy();
        assert!(d.eligible(0.2));
        assert_eq!(d, DeviceLifecycle::default());
    }

    #[test]
    fn eligibility_gates_match_the_checkin_rule() {
        let mut d = DeviceLifecycle::healthy();
        d.soc = 0.1;
        assert!(!d.eligible(0.2), "low battery and unplugged");
        d.charging = true;
        assert!(d.eligible(0.2), "plugged in overrides low battery");
        d.foreground = true;
        assert!(!d.eligible(0.2), "foreground session blocks");
        d.foreground = false;
        d.online = false;
        assert!(!d.eligible(0.2), "offline blocks");
    }

    #[test]
    fn clamp_bounds_soc_and_throttle() {
        let mut d = DeviceLifecycle::healthy();
        d.soc = 1.7;
        d.throttle = -0.3;
        d.clamp();
        assert_eq!(d.soc, 1.0);
        assert_eq!(d.throttle, 0.0);
    }
}

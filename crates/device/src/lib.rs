//! # autofl-device
//!
//! The mobile-system substrate of the AutoFL reproduction: everything the
//! paper measures on real phones and EC2 instances, rebuilt as an
//! analytical model.
//!
//! * [`tier`] — the H/M/L device categories with the paper's Table 2/3
//!   constants (GFLOPS, RAM, peak power, V-F step counts).
//! * [`dvfs`] — per-target DVFS tables: frequency, busy power (cubic law),
//!   throughput; the augmented second-level action space of AutoFL.
//! * [`network`] — Gaussian bandwidth + signal-strength TX power (Eq. 3).
//! * [`interference`] — web-browsing-shaped co-running app load and its
//!   throughput impact on CPU vs GPU.
//! * [`scenario`] — per-round sampling of which devices see interference /
//!   weak signal (Figures 5 and 10 regimes).
//! * [`fleet`] — the 200-device fleet (30 H / 70 M / 100 L).
//! * [`store`] — sharded structure-of-arrays storage for per-round device
//!   state ([`store::ConditionsStore`]), the hot data layout at
//!   million-device fleet sizes.
//! * [`lifecycle`] — slow-moving per-device state (battery, charging,
//!   thermal throttle, foreground sessions, connectivity) evolved by the
//!   fleet-dynamics subsystem in `autofl-fed`.
//! * [`cost`] — Eqs. (1)–(4): compute/communication/idle time and energy.
//!
//! # Examples
//!
//! ```
//! use autofl_device::cost::{execute, ExecutionPlan, TrainingTask};
//! use autofl_device::scenario::DeviceConditions;
//! use autofl_device::tier::DeviceTier;
//!
//! let cost = execute(
//!     DeviceTier::High,
//!     ExecutionPlan::cpu_max(DeviceTier::High),
//!     TrainingTask { flops: 1_000_000_000, upload_bytes: 1_000_000 },
//!     &DeviceConditions::ideal(),
//! );
//! assert!(cost.compute_time_s > 0.0 && cost.total_energy_j() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod dvfs;
pub mod fleet;
pub mod interference;
pub mod lifecycle;
pub mod network;
pub mod scenario;
pub mod store;
pub mod tier;

pub use cost::{execute, idle_energy_j, ExecutionPlan, RoundCost, TrainingTask};
pub use dvfs::{DvfsTable, ExecutionTarget};
pub use fleet::{Device, DeviceId, Fleet};
pub use interference::Interference;
pub use lifecycle::DeviceLifecycle;
pub use network::{NetworkObservation, SignalStrength};
pub use scenario::{DeviceConditions, VarianceScenario};
pub use store::{shard_extents, ConditionsStore};
pub use tier::DeviceTier;

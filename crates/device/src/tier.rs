//! Device performance tiers (Tables 2 and 3 of the paper).

use serde::{Deserialize, Serialize};

/// The three representative categories of smartphones evaluated in the
/// paper: high-end (Mi8Pro-class), mid-end (Galaxy S10e-class) and low-end
/// (Moto X Force-class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeviceTier {
    /// High-end devices — `m4.large`-emulated, Mi8Pro power profile.
    High,
    /// Mid-end devices — `t3a.medium`-emulated, Galaxy S10e power profile.
    Mid,
    /// Low-end devices — `t2.small`-emulated, Moto X Force power profile.
    Low,
}

impl DeviceTier {
    /// All tiers, highest first.
    pub fn all() -> [DeviceTier; 3] {
        [DeviceTier::High, DeviceTier::Mid, DeviceTier::Low]
    }

    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceTier::High => "H",
            DeviceTier::Mid => "M",
            DeviceTier::Low => "L",
        }
    }

    /// The emulated phone model (Table 3).
    pub fn phone(&self) -> &'static str {
        match self {
            DeviceTier::High => "Mi8Pro",
            DeviceTier::Mid => "Galaxy S10e",
            DeviceTier::Low => "Moto X Force",
        }
    }

    /// Theoretical GFLOPS of the emulating EC2 instance (Table 2). Used as
    /// the CPU training-throughput ceiling.
    pub fn gflops(&self) -> f64 {
        match self {
            DeviceTier::High => 153.6,
            DeviceTier::Mid => 80.0,
            DeviceTier::Low => 52.8,
        }
    }

    /// RAM in GB (Table 2).
    pub fn ram_gb(&self) -> u32 {
        match self {
            DeviceTier::High => 8,
            DeviceTier::Mid => 4,
            DeviceTier::Low => 2,
        }
    }

    /// Peak CPU power in watts at the maximum V-F step (Table 3).
    pub fn cpu_peak_power_w(&self) -> f64 {
        match self {
            DeviceTier::High => 5.5,
            DeviceTier::Mid => 5.6,
            DeviceTier::Low => 3.6,
        }
    }

    /// Peak GPU power in watts (Table 3).
    pub fn gpu_peak_power_w(&self) -> f64 {
        match self {
            DeviceTier::High => 2.8,
            DeviceTier::Mid => 2.4,
            DeviceTier::Low => 2.0,
        }
    }

    /// Number of CPU V-F steps (Table 3).
    pub fn cpu_vf_steps(&self) -> usize {
        match self {
            DeviceTier::High => 23,
            DeviceTier::Mid => 21,
            DeviceTier::Low => 15,
        }
    }

    /// Number of GPU V-F steps (Table 3).
    pub fn gpu_vf_steps(&self) -> usize {
        match self {
            DeviceTier::High => 7,
            DeviceTier::Mid => 9,
            DeviceTier::Low => 6,
        }
    }

    /// Maximum CPU frequency in GHz (Table 3).
    pub fn cpu_max_freq_ghz(&self) -> f64 {
        match self {
            DeviceTier::High => 2.8,
            DeviceTier::Mid => 2.7,
            DeviceTier::Low => 1.9,
        }
    }

    /// Maximum GPU frequency in GHz (Table 3).
    pub fn gpu_max_freq_ghz(&self) -> f64 {
        match self {
            DeviceTier::High => 0.7,
            DeviceTier::Mid => 0.7,
            DeviceTier::Low => 0.6,
        }
    }

    /// Device count in the paper's 200-device fleet (Section 5.1).
    pub fn paper_fleet_count(&self) -> usize {
        match self {
            DeviceTier::High => 30,
            DeviceTier::Mid => 70,
            DeviceTier::Low => 100,
        }
    }

    /// Whole-device idle power in watts (screen off, SoC idle). Not in the
    /// paper's tables; set to typical measured values so Eq. (4) idle
    /// energy is non-zero.
    pub fn idle_power_w(&self) -> f64 {
        match self {
            DeviceTier::High => 0.25,
            DeviceTier::Mid => 0.20,
            DeviceTier::Low => 0.15,
        }
    }

    /// Usable battery capacity in joules (typical 4000/3100/3500 mAh
    /// packs at ~3.85 V nominal). Not in the paper's tables; used by the
    /// fleet-dynamics battery model to convert training energy into
    /// state-of-charge drain.
    pub fn battery_capacity_j(&self) -> f64 {
        match self {
            DeviceTier::High => 55_000.0,
            DeviceTier::Mid => 43_000.0,
            DeviceTier::Low => 34_000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_constants() {
        assert_eq!(DeviceTier::High.gflops(), 153.6);
        assert_eq!(DeviceTier::Mid.gflops(), 80.0);
        assert_eq!(DeviceTier::Low.gflops(), 52.8);
        assert_eq!(DeviceTier::High.ram_gb(), 8);
    }

    #[test]
    fn table3_constants() {
        assert_eq!(DeviceTier::High.cpu_peak_power_w(), 5.5);
        assert_eq!(DeviceTier::Mid.cpu_vf_steps(), 21);
        assert_eq!(DeviceTier::Low.gpu_vf_steps(), 6);
        assert_eq!(DeviceTier::Low.cpu_max_freq_ghz(), 1.9);
    }

    #[test]
    fn paper_fleet_totals_200() {
        let total: usize = DeviceTier::all()
            .iter()
            .map(|t| t.paper_fleet_count())
            .sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn performance_gap_matches_section3() {
        // Section 3.1: high-end shows ~1.7x / 2.5x better training time than
        // mid / low (compute-bound); our GFLOPS ratios: 1.92x and 2.9x.
        let h = DeviceTier::High.gflops();
        assert!(h / DeviceTier::Mid.gflops() > 1.5);
        assert!(h / DeviceTier::Low.gflops() > 2.3);
    }
}

//! On-device interference from co-running applications.
//!
//! Section 5.2: "we initiate a synthetic co-running application on a random
//! subset of devices, mimicking the effect of a real-world application,
//! i.e., web browsing. The synthetic application generates CPU and memory
//! utilization patterns following those of web browsing."

use rand::Rng;
use serde::{Deserialize, Serialize};

/// CPU/memory load imposed by co-running apps on one device for one round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interference {
    /// CPU utilisation of co-running apps, in `[0, 1]` (`S_Co_CPU`).
    pub co_cpu: f64,
    /// Memory usage of co-running apps, in `[0, 1]` (`S_Co_MEM`).
    pub co_mem: f64,
}

impl Interference {
    /// No co-running load.
    pub fn none() -> Self {
        Interference {
            co_cpu: 0.0,
            co_mem: 0.0,
        }
    }

    /// Samples a web-browsing-like load: bursty CPU (page loads alternate
    /// with idle reading) and moderately high resident memory.
    pub fn web_browsing(rng: &mut impl Rng) -> Self {
        // Page-load burst vs. reading phase, weighted toward bursts since
        // browsing sessions during FL rounds are short.
        let bursting = rng.gen_bool(0.6);
        let co_cpu = if bursting {
            rng.gen_range(0.45..0.95)
        } else {
            rng.gen_range(0.10..0.35)
        };
        let co_mem = rng.gen_range(0.25..0.70);
        Interference { co_cpu, co_mem }
    }

    /// Whether any co-running load is present.
    pub fn is_active(&self) -> bool {
        self.co_cpu > 0.0 || self.co_mem > 0.0
    }

    /// Multiplier on CPU training throughput under this load.
    ///
    /// Two effects the paper calls out (Section 6.2): competition for CPU
    /// time slices / cache, and thermal throttling under sustained load.
    pub fn cpu_throughput_factor(&self) -> f64 {
        let time_slice = 1.0 - 0.70 * self.co_cpu;
        let thermal = if self.co_cpu > 0.5 { 0.85 } else { 1.0 };
        (time_slice * thermal).max(0.05)
    }

    /// Multiplier on GPU training throughput under this load.
    ///
    /// The GPU does not compete for CPU time slices; it is only mildly
    /// affected through shared memory bandwidth.
    pub fn gpu_throughput_factor(&self) -> f64 {
        (1.0 - 0.15 * self.co_mem).max(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn none_means_full_throughput() {
        let i = Interference::none();
        assert!(!i.is_active());
        assert_eq!(i.cpu_throughput_factor(), 1.0);
        assert_eq!(i.gpu_throughput_factor(), 1.0);
    }

    #[test]
    fn web_browsing_hurts_cpu_more_than_gpu_on_average() {
        let mut rng = SmallRng::seed_from_u64(3);
        let (mut cpu_sum, mut gpu_sum) = (0.0, 0.0);
        for _ in 0..200 {
            let i = Interference::web_browsing(&mut rng);
            assert!(i.is_active());
            assert!(i.cpu_throughput_factor() < 1.0);
            cpu_sum += i.cpu_throughput_factor();
            gpu_sum += i.gpu_throughput_factor();
        }
        assert!(
            cpu_sum < 0.8 * gpu_sum,
            "mean cpu factor {} vs gpu {}",
            cpu_sum / 200.0,
            gpu_sum / 200.0
        );
    }

    #[test]
    fn interference_shifts_optimal_target_to_gpu() {
        // Section 6.2: under interference the optimal execution target
        // usually shifts from CPU to GPU. Check the crossing exists with
        // the DVFS model: heavy browsing makes GPU J/FLOP better.
        use crate::dvfs::{DvfsTable, ExecutionTarget};
        use crate::tier::DeviceTier;
        let heavy = Interference {
            co_cpu: 0.8,
            co_mem: 0.5,
        };
        for tier in DeviceTier::all() {
            let cpu = DvfsTable::for_tier(tier, ExecutionTarget::Cpu);
            let gpu = DvfsTable::for_tier(tier, ExecutionTarget::Gpu);
            let e_cpu = cpu.busy_power_w(cpu.num_steps())
                / (cpu.gflops(cpu.num_steps()) * heavy.cpu_throughput_factor());
            let e_gpu = gpu.busy_power_w(gpu.num_steps())
                / (gpu.gflops(gpu.num_steps()) * heavy.gpu_throughput_factor());
            assert!(e_gpu < e_cpu, "{:?} should prefer GPU under load", tier);
        }
    }

    #[test]
    fn throughput_factor_bounded_away_from_zero() {
        let i = Interference {
            co_cpu: 1.0,
            co_mem: 1.0,
        };
        assert!(i.cpu_throughput_factor() >= 0.05);
        assert!(i.gpu_throughput_factor() >= 0.05);
    }
}

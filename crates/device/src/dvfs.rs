//! DVFS frequency/power tables (the augmented second-level action of
//! AutoFL).
//!
//! The paper measures power at every V-F step of the three phones
//! (Table 3) and lets AutoFL pick a step to exploit straggler slack. We
//! rebuild those tables from the published peaks: step frequencies are
//! evenly spaced up to the published maximum, and busy power follows the
//! standard `P(f) = P_idle + (P_peak − P_idle)·(f/f_max)³` DVFS law
//! (dynamic power ∝ f·V², with V roughly ∝ f).

use crate::tier::DeviceTier;
use serde::{Deserialize, Serialize};

/// Which silicon the training loop runs on — the paper's second-level
/// action (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionTarget {
    /// Train on the CPU cluster.
    Cpu,
    /// Train on the GPU.
    Gpu,
}

impl ExecutionTarget {
    /// Both targets.
    pub fn all() -> [ExecutionTarget; 2] {
        [ExecutionTarget::Cpu, ExecutionTarget::Gpu]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ExecutionTarget::Cpu => "CPU",
            ExecutionTarget::Gpu => "GPU",
        }
    }
}

/// Fraction of the CPU's training throughput the mobile GPU achieves.
///
/// On-device *training* on mobile GPUs is memory-bound and poorly
/// optimised, so despite lower power the GPU is slower; the paper observes
/// CPU wins on energy when there is no interference, which pins this
/// factor below `P_gpu/P_cpu` on every tier (tightest bound: mid-end,
/// 2.4 W GPU vs 5.6 W CPU ⇒ factor < 0.43).
pub const GPU_THROUGHPUT_FACTOR: f64 = 0.40;

/// Fraction of theoretical GFLOPS that a real training loop achieves.
/// Cancels out of every ratio the paper reports; sets absolute time scale.
pub const TRAINING_EFFICIENCY: f64 = 0.15;

/// Idle power of a component as a fraction of its peak power.
const COMPONENT_IDLE_FRACTION: f64 = 0.08;

/// A DVFS operating-point table for one execution target of one tier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DvfsTable {
    steps: usize,
    max_freq_ghz: f64,
    peak_power_w: f64,
    idle_power_w: f64,
    /// Peak training throughput in GFLOPS at the maximum step.
    peak_gflops: f64,
}

impl DvfsTable {
    /// Builds the table for a tier/target pair from the Table 2/3 constants.
    pub fn for_tier(tier: DeviceTier, target: ExecutionTarget) -> Self {
        let (steps, max_freq, peak_power, peak_gflops) = match target {
            ExecutionTarget::Cpu => (
                tier.cpu_vf_steps(),
                tier.cpu_max_freq_ghz(),
                tier.cpu_peak_power_w(),
                tier.gflops() * TRAINING_EFFICIENCY,
            ),
            ExecutionTarget::Gpu => (
                tier.gpu_vf_steps(),
                tier.gpu_max_freq_ghz(),
                tier.gpu_peak_power_w(),
                tier.gflops() * TRAINING_EFFICIENCY * GPU_THROUGHPUT_FACTOR,
            ),
        };
        DvfsTable {
            steps,
            max_freq_ghz: max_freq,
            peak_power_w: peak_power,
            idle_power_w: peak_power * COMPONENT_IDLE_FRACTION,
            peak_gflops,
        }
    }

    /// Number of V-F steps (Table 3).
    pub fn num_steps(&self) -> usize {
        self.steps
    }

    /// Frequency in GHz at `step` (1-based; step == num_steps is maximum).
    ///
    /// # Panics
    ///
    /// Panics if `step` is 0 or greater than [`DvfsTable::num_steps`].
    pub fn freq_ghz(&self, step: usize) -> f64 {
        assert!(
            step >= 1 && step <= self.steps,
            "invalid DVFS step {}",
            step
        );
        self.max_freq_ghz * step as f64 / self.steps as f64
    }

    /// Busy power in watts at `step`, following the cubic DVFS law.
    pub fn busy_power_w(&self, step: usize) -> f64 {
        let ratio = self.freq_ghz(step) / self.max_freq_ghz;
        self.idle_power_w + (self.peak_power_w - self.idle_power_w) * ratio.powi(3)
    }

    /// Component idle power in watts.
    pub fn idle_power_w(&self) -> f64 {
        self.idle_power_w
    }

    /// Training throughput in GFLOPS at `step` (scales linearly with
    /// frequency).
    pub fn gflops(&self, step: usize) -> f64 {
        self.peak_gflops * self.freq_ghz(step) / self.max_freq_ghz
    }

    /// The step closest to `fraction` of maximum frequency
    /// (`fraction` clamped to `(0, 1]`).
    pub fn step_at_fraction(&self, fraction: f64) -> usize {
        let f = fraction.clamp(1.0 / self.steps as f64, 1.0);
        ((f * self.steps as f64).round() as usize).clamp(1, self.steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_counts_match_table3() {
        let t = DvfsTable::for_tier(DeviceTier::High, ExecutionTarget::Cpu);
        assert_eq!(t.num_steps(), 23);
        let g = DvfsTable::for_tier(DeviceTier::Mid, ExecutionTarget::Gpu);
        assert_eq!(g.num_steps(), 9);
    }

    #[test]
    fn max_step_hits_published_peaks() {
        let t = DvfsTable::for_tier(DeviceTier::High, ExecutionTarget::Cpu);
        assert!((t.freq_ghz(23) - 2.8).abs() < 1e-9);
        assert!((t.busy_power_w(23) - 5.5).abs() < 1e-9);
    }

    #[test]
    fn power_is_monotonic_in_frequency() {
        let t = DvfsTable::for_tier(DeviceTier::Low, ExecutionTarget::Cpu);
        for s in 1..t.num_steps() {
            assert!(t.busy_power_w(s) < t.busy_power_w(s + 1));
            assert!(t.gflops(s) < t.gflops(s + 1));
        }
    }

    #[test]
    fn lower_frequency_improves_energy_per_flop() {
        // Cubic power vs linear throughput: energy/FLOP must fall with f.
        let t = DvfsTable::for_tier(DeviceTier::Mid, ExecutionTarget::Cpu);
        let e_hi = t.busy_power_w(t.num_steps()) / t.gflops(t.num_steps());
        let e_lo = t.busy_power_w(t.num_steps() / 2) / t.gflops(t.num_steps() / 2);
        assert!(e_lo < e_hi);
    }

    #[test]
    fn cpu_beats_gpu_on_energy_per_flop_at_peak() {
        // Section 6.2: without interference the CPU is the more
        // energy-efficient training target.
        for tier in DeviceTier::all() {
            let cpu = DvfsTable::for_tier(tier, ExecutionTarget::Cpu);
            let gpu = DvfsTable::for_tier(tier, ExecutionTarget::Gpu);
            let e_cpu = cpu.busy_power_w(cpu.num_steps()) / cpu.gflops(cpu.num_steps());
            let e_gpu = gpu.busy_power_w(gpu.num_steps()) / gpu.gflops(gpu.num_steps());
            assert!(
                e_cpu < e_gpu,
                "{:?}: CPU {} vs GPU {} J/GFLOP",
                tier,
                e_cpu,
                e_gpu
            );
        }
    }

    #[test]
    fn step_at_fraction_clamps() {
        let t = DvfsTable::for_tier(DeviceTier::High, ExecutionTarget::Cpu);
        assert_eq!(t.step_at_fraction(1.0), 23);
        assert_eq!(t.step_at_fraction(0.0), 1);
        assert_eq!(t.step_at_fraction(2.0), 23);
    }
}

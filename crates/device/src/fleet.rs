//! The emulated device fleet.

use crate::tier::DeviceTier;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Identifier of a device within a [`Fleet`] (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub usize);

/// One emulated smartphone.
///
/// Besides the tier, each device carries per-user tendencies sampled at
/// fleet creation: how often this user's apps interfere with training and
/// how often the device sits on a weak network. These make runtime variance
/// *heterogeneous across devices*, which is what gives an adaptive selector
/// something to learn.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Device {
    id: DeviceId,
    tier: DeviceTier,
    interference_propensity: f64,
    weak_signal_propensity: f64,
}

impl Device {
    /// The device id.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The performance tier.
    pub fn tier(&self) -> DeviceTier {
        self.tier
    }

    /// Multiplier (≈ 0.5–1.5) on the scenario's interference probability.
    pub fn interference_propensity(&self) -> f64 {
        self.interference_propensity
    }

    /// Multiplier (≈ 0.5–1.5) on the scenario's weak-network probability.
    pub fn weak_signal_propensity(&self) -> f64 {
        self.weak_signal_propensity
    }
}

/// The collection of devices participating in FL (`N` in the paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fleet {
    devices: Vec<Device>,
}

impl Fleet {
    /// The paper's 200-device fleet: 30 high-end, 70 mid-end, 100 low-end
    /// (Section 5.1).
    pub fn paper_fleet(seed: u64) -> Self {
        Fleet::custom(
            &[
                (DeviceTier::High, DeviceTier::High.paper_fleet_count()),
                (DeviceTier::Mid, DeviceTier::Mid.paper_fleet_count()),
                (DeviceTier::Low, DeviceTier::Low.paper_fleet_count()),
            ],
            seed,
        )
    }

    /// A fleet with explicit per-tier counts.
    ///
    /// # Panics
    ///
    /// Panics if the total count is zero.
    pub fn custom(counts: &[(DeviceTier, usize)], seed: u64) -> Self {
        let total: usize = counts.iter().map(|(_, n)| n).sum();
        assert!(total > 0, "fleet must contain at least one device");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut devices = Vec::with_capacity(total);
        for &(tier, n) in counts {
            for _ in 0..n {
                let id = DeviceId(devices.len());
                devices.push(Device {
                    id,
                    tier,
                    interference_propensity: rng.gen_range(0.5..1.5),
                    weak_signal_propensity: rng.gen_range(0.5..1.5),
                });
            }
        }
        Fleet { devices }
    }

    /// Number of devices (`N`).
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the fleet is empty (never true for a constructed fleet).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Looks up a device.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0]
    }

    /// Iterates over all devices.
    pub fn iter(&self) -> impl Iterator<Item = &Device> {
        self.devices.iter()
    }

    /// All device ids.
    pub fn ids(&self) -> Vec<DeviceId> {
        self.devices.iter().map(|d| d.id).collect()
    }

    /// Ids of all devices of one tier.
    pub fn ids_of_tier(&self, tier: DeviceTier) -> Vec<DeviceId> {
        self.devices
            .iter()
            .filter(|d| d.tier == tier)
            .map(|d| d.id)
            .collect()
    }

    /// Device count per tier `(high, mid, low)`.
    pub fn tier_counts(&self) -> (usize, usize, usize) {
        let count = |t: DeviceTier| self.devices.iter().filter(|d| d.tier == t).count();
        (
            count(DeviceTier::High),
            count(DeviceTier::Mid),
            count(DeviceTier::Low),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fleet_composition() {
        let f = Fleet::paper_fleet(1);
        assert_eq!(f.len(), 200);
        assert_eq!(f.tier_counts(), (30, 70, 100));
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let f = Fleet::paper_fleet(2);
        for (i, d) in f.iter().enumerate() {
            assert_eq!(d.id().0, i);
        }
        assert_eq!(f.ids_of_tier(DeviceTier::High).len(), 30);
    }

    #[test]
    fn propensities_vary_across_devices() {
        let f = Fleet::paper_fleet(3);
        let first = f.device(DeviceId(0)).interference_propensity();
        assert!(f
            .iter()
            .any(|d| (d.interference_propensity() - first).abs() > 0.1));
    }

    #[test]
    fn fleet_is_deterministic_per_seed() {
        let a = Fleet::paper_fleet(4);
        let b = Fleet::paper_fleet(4);
        for (da, db) in a.iter().zip(b.iter()) {
            assert_eq!(da.interference_propensity(), db.interference_propensity());
        }
    }
}

//! Participant-selection policies and the [`Selector`] trait AutoFL plugs
//! into.

use crate::clusters::CharacterizationCluster;
use crate::fleet::AvailabilityView;
use crate::global::GlobalParams;
use autofl_data::partition::Partition;
use autofl_device::cost::{ExecutionPlan, TrainingTask};
use autofl_device::fleet::{DeviceId, Fleet};
use autofl_device::store::ConditionsStore;
use autofl_device::tier::DeviceTier;
use autofl_nn::model::LayerCounts;
use autofl_nn::zoo::Workload;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use std::cmp::Ordering;

/// Everything a selection policy may observe at the start of a round.
///
/// This mirrors the information the de-facto FL protocol already collects
/// from devices (resource usage, network bandwidth, data-class counts) —
/// footnote 3 of the paper. Per-device state is exposed through sharded
/// structure-of-arrays stores rather than struct slices so the context
/// stays cheap to build and walk at million-device fleet sizes (see
/// `docs/scaling.md`).
#[derive(Debug)]
pub struct RoundContext<'a> {
    /// 0-based aggregation-round index.
    pub round: usize,
    /// The device fleet.
    pub fleet: &'a Fleet,
    /// Per-device runtime conditions this round, indexed by raw device
    /// id ([`ConditionsStore::get`] materialises the struct view).
    pub conditions: &'a ConditionsStore,
    /// Per-device availability this round (check-in eligibility, battery,
    /// thermal, sessions). All-ideal — with no backing storage — when the
    /// fleet-dynamics block is disabled.
    pub availability: AvailabilityView<'a>,
    /// The training-data partition (for data-class counts).
    pub partition: &'a Partition,
    /// FL global parameters.
    pub params: &'a GlobalParams,
    /// The workload being trained.
    pub workload: Workload,
    /// CONV/FC/RC counts of the (paper-scale) model.
    pub layer_counts: LayerCounts,
    /// Global test accuracy after the previous round, in `[0, 1]`.
    pub prev_accuracy: f64,
}

impl RoundContext<'_> {
    /// Whether device `id` passed this round's eligibility check-in.
    pub fn is_eligible(&self, id: DeviceId) -> bool {
        self.availability.is_eligible(id.0)
    }

    /// Ids of every eligible device, in fleet order. Identical to
    /// [`Fleet::ids`] when fleet dynamics are disabled; under dynamics it
    /// walks the per-shard availability bins and skips dark shards.
    pub fn eligible_ids(&self) -> Vec<DeviceId> {
        self.availability.eligible_ids()
    }

    /// Ids of every eligible device of one tier, in fleet order.
    pub fn eligible_ids_of_tier(&self, tier: DeviceTier) -> Vec<DeviceId> {
        self.fleet
            .ids_of_tier(tier)
            .into_iter()
            .filter(|id| self.availability.is_eligible(id.0))
            .collect()
    }

    /// The training task device `id` would perform this round:
    /// `E × local_samples × training FLOPs/sample`, plus the gradient
    /// upload.
    pub fn task_for(&self, id: DeviceId) -> TrainingTask {
        let samples = self.partition.device_sample_count(id.0) as u64;
        TrainingTask {
            flops: self.params.local_epochs as u64
                * samples
                * self.workload.reference_training_flops_per_sample(),
            upload_bytes: self.workload.reference_model_bytes(),
        }
    }
}

/// What a policy decided for one round: who participates, and on what
/// silicon/frequency each participant trains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionDecision {
    /// The `≤ K` chosen devices.
    pub participants: Vec<DeviceId>,
    /// Execution plan per participant, aligned with `participants`.
    pub plans: Vec<ExecutionPlan>,
}

impl SelectionDecision {
    /// Builds a decision that trains every participant on its CPU at
    /// maximum frequency — the conventional default all non-O_FL baselines
    /// use.
    ///
    /// Debug builds assert that every participant is a member of `fleet`
    /// and appears at most once: a duplicated id would silently double
    /// that device's active energy and update weight in the round
    /// accounting.
    pub fn cpu_max(fleet: &Fleet, participants: Vec<DeviceId>) -> Self {
        #[cfg(debug_assertions)]
        {
            let mut seen = vec![false; fleet.len()];
            for id in &participants {
                debug_assert!(
                    id.0 < fleet.len(),
                    "participant {id:?} is not a member of the {}-device fleet",
                    fleet.len()
                );
                debug_assert!(
                    !seen[id.0],
                    "participant {id:?} selected twice; duplicates skew energy accounting"
                );
                seen[id.0] = true;
            }
        }
        let plans = participants
            .iter()
            .map(|id| ExecutionPlan::cpu_max(fleet.device(*id).tier()))
            .collect();
        SelectionDecision {
            participants,
            plans,
        }
    }
}

/// Feedback a learning selector receives after the round completes.
///
/// Borrows the engine's round buffers rather than owning copies: the
/// round hot loop hands the same scratch slices to every observer without
/// cloning per round. Observers that need to retain data copy exactly
/// what they keep.
#[derive(Debug, Clone, Copy)]
pub struct RoundFeedback<'a> {
    /// The dispatch round this feedback reports on. Under the lockstep
    /// engine feedback arrives in round order; under the event-driven
    /// runtime ([`crate::runtime`]) cohorts can complete out of dispatch
    /// order, so learning selectors must match feedback to the decision
    /// they made at this round, not to the latest one.
    pub round: usize,
    /// The decision that was executed.
    pub participants: &'a [DeviceId],
    /// Per-participant active energy in joules (Eq. 5 selected branch),
    /// aligned with `participants`.
    pub per_participant_energy_j: &'a [f64],
    /// Idle energy per non-participant in joules (Eq. 5 else branch).
    pub idle_energy_per_device_j: f64,
    /// Global energy of the round (Eq. 6).
    pub global_energy_j: f64,
    /// Wall-clock round time in seconds.
    pub round_time_s: f64,
    /// Test accuracy after aggregation, in `[0, 1]`.
    pub accuracy: f64,
    /// Test accuracy before this round, in `[0, 1]`.
    pub prev_accuracy: f64,
    /// Participants dropped as stragglers this round.
    pub dropped: &'a [DeviceId],
    /// Participants that vanished mid-round (battery death or network
    /// churn); disjoint from `dropped` and empty when fleet dynamics are
    /// disabled.
    pub dropouts: &'a [DeviceId],
    /// Mean staleness (in aggregation versions) of this cohort's updates
    /// when they were folded into the global model. Exactly `0.0` under
    /// the lockstep engine and the event runtime's full barrier; positive
    /// only under buffered asynchronous aggregation.
    pub mean_staleness: f64,
    /// Bytes the cohort uplinked (encoded updates that finished
    /// transmitting). Exactly `0` when no network fabric is attached —
    /// byte accounting needs [`crate::fabric::NetworkFabric`].
    pub bytes_uplinked: u64,
}

/// A participant-selection (and execution-target) policy.
///
/// Implemented by the baselines here and by `autofl_core::AutoFl`.
pub trait Selector {
    /// Chooses up to `K` participants and their execution plans.
    fn select(&mut self, ctx: &RoundContext<'_>, rng: &mut SmallRng) -> SelectionDecision;

    /// Receives the measured outcome of the round (learning selectors
    /// update their policy here).
    fn observe(&mut self, feedback: &RoundFeedback<'_>) {
        let _ = feedback;
    }

    /// Policy name used in reports.
    fn name(&self) -> &'static str;

    /// Serializes whatever state `observe` accumulates across rounds, for
    /// a checkpoint ([`mod@crate::serve`]). Stateless selectors — everything
    /// whose decisions depend only on the round context and the engine's
    /// RNG — keep the default `None`; learning selectors (the AutoFL
    /// agent's Q-tables, pending rounds and exploration stream) return
    /// `Some` so a resumed run keeps learning from where it stopped.
    fn state_snapshot(&self) -> Option<serde::Value> {
        None
    }

    /// Restores state captured by [`Selector::state_snapshot`] onto a
    /// freshly minted selector of the same policy. The default accepts
    /// only the stateless `None` snapshot.
    fn state_restore(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        match state {
            serde::Value::Null => Ok(()),
            other => Err(serde::Error::custom(format!(
                "selector `{}` is stateless but the checkpoint holds a {} state",
                self.name(),
                other.kind()
            ))),
        }
    }
}

/// Deterministic partial top-`k` selection: truncates `items` to the `k`
/// elements a *stable full sort* under `cmp` would place first, in that
/// exact order, in `O(N + K log K)` instead of `O(N log N)`.
///
/// `cmp` must be a total order over the input (break ties on a unique key
/// such as the device id or the original position): a total order makes
/// the unstable partition below indistinguishable from a stable sort, so
/// replacing a full-fleet sort with this call is bit-transparent —
/// `tests/scale_invariance.rs` and the unit tests here pin the
/// equivalence. Ranking selectors (the oracles' per-tier ranking, the
/// AutoFL controller's Q-value cut) route through this so their per-round
/// cost stays near-linear at million-device fleet sizes.
pub fn top_k_by<T>(items: &mut Vec<T>, k: usize, cmp: impl Fn(&T, &T) -> Ordering) {
    if k == 0 {
        items.clear();
        return;
    }
    if k < items.len() {
        // O(N) three-way partition around the k-th element, then drop the
        // tail; only the surviving head is sorted.
        items.select_nth_unstable_by(k - 1, &cmp);
        items.truncate(k);
    }
    items.sort_unstable_by(cmp);
}

/// The FedAvg baseline: `K` participants chosen uniformly at random
/// (cluster C0), trained on CPU at maximum frequency.
#[derive(Debug, Clone, Default)]
pub struct RandomSelector;

impl RandomSelector {
    /// Creates the selector.
    pub fn new() -> Self {
        RandomSelector
    }
}

impl Selector for RandomSelector {
    fn select(&mut self, ctx: &RoundContext<'_>, rng: &mut SmallRng) -> SelectionDecision {
        let mut ids = ctx.eligible_ids();
        ids.shuffle(rng);
        ids.truncate(ctx.params.num_participants);
        SelectionDecision::cpu_max(ctx.fleet, ids)
    }

    fn name(&self) -> &'static str {
        "FedAvg-Random"
    }
}

/// A fixed Table 4 composition (C1–C7): picks the prescribed number of
/// devices per tier, uniformly within each tier.
#[derive(Debug, Clone)]
pub struct ClusterSelector {
    cluster: CharacterizationCluster,
    label: &'static str,
}

impl ClusterSelector {
    /// Creates a selector for any fixed cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is C0 (random has no fixed composition).
    pub fn new(cluster: CharacterizationCluster) -> Self {
        assert!(
            cluster.base_composition().is_some(),
            "C0 is the random baseline; use RandomSelector"
        );
        ClusterSelector {
            cluster,
            label: cluster.name(),
        }
    }

    /// The `Performance` policy: all high-end devices (C1).
    pub fn performance() -> Self {
        let mut s = ClusterSelector::new(CharacterizationCluster::C1);
        s.label = "Performance";
        s
    }

    /// The `Power` policy: all low-end devices (C7).
    pub fn power() -> Self {
        let mut s = ClusterSelector::new(CharacterizationCluster::C7);
        s.label = "Power";
        s
    }

    /// The cluster this selector realises.
    pub fn cluster(&self) -> CharacterizationCluster {
        self.cluster
    }
}

impl Selector for ClusterSelector {
    fn select(&mut self, ctx: &RoundContext<'_>, rng: &mut SmallRng) -> SelectionDecision {
        let (h, m, l) = self
            .cluster
            .composition(ctx.params.num_participants)
            .expect("fixed cluster");
        let mut participants = Vec::with_capacity(ctx.params.num_participants);
        for (tier, want) in [
            (DeviceTier::High, h),
            (DeviceTier::Mid, m),
            (DeviceTier::Low, l),
        ] {
            let mut pool = ctx.eligible_ids_of_tier(tier);
            pool.shuffle(rng);
            // If the fleet has fewer eligible devices of the tier than
            // requested, take what exists; the shortfall is filled below.
            participants.extend(pool.into_iter().take(want));
        }
        // Fill any shortfall with random eligible devices not yet
        // selected.
        if participants.len() < ctx.params.num_participants {
            let mut rest: Vec<DeviceId> = ctx
                .eligible_ids()
                .into_iter()
                .filter(|id| !participants.contains(id))
                .collect();
            rest.shuffle(rng);
            participants.extend(
                rest.into_iter()
                    .take(ctx.params.num_participants - participants.len()),
            );
        }
        SelectionDecision::cpu_max(ctx.fleet, participants)
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofl_data::partition::DataDistribution;
    use autofl_data::FlData;
    use rand::{Rng, SeedableRng};

    fn context_fixture() -> (Fleet, FlData, GlobalParams, ConditionsStore) {
        let fleet = Fleet::paper_fleet(1);
        let data = FlData::generate(
            Workload::TinyTest,
            200,
            8,
            16,
            DataDistribution::IidIdeal,
            1,
        );
        let conditions = ConditionsStore::new(200, 1);
        (fleet, data, GlobalParams::s3(), conditions)
    }

    fn ctx<'a>(
        fleet: &'a Fleet,
        data: &'a FlData,
        params: &'a GlobalParams,
        conditions: &'a ConditionsStore,
    ) -> RoundContext<'a> {
        RoundContext {
            round: 0,
            fleet,
            conditions,
            availability: AvailabilityView::Ideal {
                devices: fleet.len(),
            },
            partition: &data.partition,
            params,
            workload: Workload::TinyTest,
            layer_counts: Workload::TinyTest.reference_layer_counts(),
            prev_accuracy: 0.1,
        }
    }

    #[test]
    fn random_selects_k_distinct_devices() {
        let (fleet, data, params, conditions) = context_fixture();
        let c = ctx(&fleet, &data, &params, &conditions);
        let mut rng = SmallRng::seed_from_u64(1);
        let d = RandomSelector::new().select(&c, &mut rng);
        assert_eq!(d.participants.len(), 20);
        let mut unique = d.participants.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 20);
        assert_eq!(d.plans.len(), 20);
    }

    #[test]
    fn performance_selects_only_high_end() {
        let (fleet, data, params, conditions) = context_fixture();
        let c = ctx(&fleet, &data, &params, &conditions);
        let mut rng = SmallRng::seed_from_u64(2);
        let d = ClusterSelector::performance().select(&c, &mut rng);
        assert!(d
            .participants
            .iter()
            .all(|id| fleet.device(*id).tier() == DeviceTier::High));
    }

    #[test]
    fn cluster_c3_mixes_tiers_as_table4() {
        let (fleet, data, params, conditions) = context_fixture();
        let c = ctx(&fleet, &data, &params, &conditions);
        let mut rng = SmallRng::seed_from_u64(3);
        let d = ClusterSelector::new(CharacterizationCluster::C3).select(&c, &mut rng);
        let count = |t: DeviceTier| {
            d.participants
                .iter()
                .filter(|id| fleet.device(**id).tier() == t)
                .count()
        };
        assert_eq!(
            (
                count(DeviceTier::High),
                count(DeviceTier::Mid),
                count(DeviceTier::Low)
            ),
            (10, 5, 5)
        );
    }

    #[test]
    fn task_for_scales_with_local_data_and_epochs() {
        let (fleet, data, params, conditions) = context_fixture();
        let c = ctx(&fleet, &data, &params, &conditions);
        let t = c.task_for(DeviceId(0));
        let samples = data.partition.device_indices(0).len() as u64;
        assert_eq!(
            t.flops,
            params.local_epochs as u64
                * samples
                * Workload::TinyTest.reference_training_flops_per_sample()
        );
    }

    /// `top_k_by` must be indistinguishable from a stable full sort
    /// truncated to `k`, including with heavy score ties (the stable
    /// order is reproduced through an index tie-break).
    #[test]
    fn top_k_matches_the_stable_sort_prefix() {
        let mut rng = SmallRng::seed_from_u64(0xbeef);
        for n in [0usize, 1, 2, 7, 100, 513] {
            for k in [0usize, 1, 2, 5, n / 2, n, n + 3] {
                // Coarse scores force ties; idx makes the order total.
                let items: Vec<(usize, f64)> = (0..n)
                    .map(|idx| (idx, f64::from(rng.gen_range(0i32..8))))
                    .collect();
                let mut expect = items.clone();
                expect.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
                expect.truncate(k);
                let mut got = items;
                top_k_by(&mut got, k, |a, b| {
                    b.1.partial_cmp(&a.1)
                        .expect("finite")
                        .then_with(|| a.0.cmp(&b.0))
                });
                assert_eq!(got, expect, "n={n}, k={k}");
            }
        }
    }
}

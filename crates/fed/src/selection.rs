//! Participant-selection policies and the [`Selector`] trait AutoFL plugs
//! into.

use crate::clusters::CharacterizationCluster;
use crate::fleet::DeviceAvailability;
use crate::global::GlobalParams;
use autofl_data::partition::Partition;
use autofl_device::cost::{ExecutionPlan, TrainingTask};
use autofl_device::fleet::{DeviceId, Fleet};
use autofl_device::scenario::DeviceConditions;
use autofl_device::tier::DeviceTier;
use autofl_nn::model::LayerCounts;
use autofl_nn::zoo::Workload;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

/// Everything a selection policy may observe at the start of a round.
///
/// This mirrors the information the de-facto FL protocol already collects
/// from devices (resource usage, network bandwidth, data-class counts) —
/// footnote 3 of the paper.
#[derive(Debug)]
pub struct RoundContext<'a> {
    /// 0-based aggregation-round index.
    pub round: usize,
    /// The device fleet.
    pub fleet: &'a Fleet,
    /// Per-device runtime conditions this round, indexed by raw device id.
    pub conditions: &'a [DeviceConditions],
    /// Per-device availability this round (check-in eligibility, battery,
    /// thermal, sessions), indexed by raw device id. All-ideal when the
    /// fleet-dynamics block is disabled.
    pub availability: &'a [DeviceAvailability],
    /// The training-data partition (for data-class counts).
    pub partition: &'a Partition,
    /// FL global parameters.
    pub params: &'a GlobalParams,
    /// The workload being trained.
    pub workload: Workload,
    /// CONV/FC/RC counts of the (paper-scale) model.
    pub layer_counts: LayerCounts,
    /// Global test accuracy after the previous round, in `[0, 1]`.
    pub prev_accuracy: f64,
}

impl RoundContext<'_> {
    /// Whether device `id` passed this round's eligibility check-in.
    pub fn is_eligible(&self, id: DeviceId) -> bool {
        self.availability[id.0].eligible
    }

    /// Ids of every eligible device, in fleet order. Identical to
    /// [`Fleet::ids`] when fleet dynamics are disabled.
    pub fn eligible_ids(&self) -> Vec<DeviceId> {
        self.fleet
            .ids()
            .into_iter()
            .filter(|id| self.availability[id.0].eligible)
            .collect()
    }

    /// Ids of every eligible device of one tier, in fleet order.
    pub fn eligible_ids_of_tier(&self, tier: DeviceTier) -> Vec<DeviceId> {
        self.fleet
            .ids_of_tier(tier)
            .into_iter()
            .filter(|id| self.availability[id.0].eligible)
            .collect()
    }

    /// The training task device `id` would perform this round:
    /// `E × local_samples × training FLOPs/sample`, plus the gradient
    /// upload.
    pub fn task_for(&self, id: DeviceId) -> TrainingTask {
        let samples = self.partition.device_indices(id.0).len() as u64;
        TrainingTask {
            flops: self.params.local_epochs as u64
                * samples
                * self.workload.reference_training_flops_per_sample(),
            upload_bytes: self.workload.reference_model_bytes(),
        }
    }
}

/// What a policy decided for one round: who participates, and on what
/// silicon/frequency each participant trains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionDecision {
    /// The `≤ K` chosen devices.
    pub participants: Vec<DeviceId>,
    /// Execution plan per participant, aligned with `participants`.
    pub plans: Vec<ExecutionPlan>,
}

impl SelectionDecision {
    /// Builds a decision that trains every participant on its CPU at
    /// maximum frequency — the conventional default all non-O_FL baselines
    /// use.
    ///
    /// Debug builds assert that every participant is a member of `fleet`
    /// and appears at most once: a duplicated id would silently double
    /// that device's active energy and update weight in the round
    /// accounting.
    pub fn cpu_max(fleet: &Fleet, participants: Vec<DeviceId>) -> Self {
        #[cfg(debug_assertions)]
        {
            let mut seen = vec![false; fleet.len()];
            for id in &participants {
                debug_assert!(
                    id.0 < fleet.len(),
                    "participant {id:?} is not a member of the {}-device fleet",
                    fleet.len()
                );
                debug_assert!(
                    !seen[id.0],
                    "participant {id:?} selected twice; duplicates skew energy accounting"
                );
                seen[id.0] = true;
            }
        }
        let plans = participants
            .iter()
            .map(|id| ExecutionPlan::cpu_max(fleet.device(*id).tier()))
            .collect();
        SelectionDecision {
            participants,
            plans,
        }
    }
}

/// Feedback a learning selector receives after the round completes.
///
/// Borrows the engine's round buffers rather than owning copies: the
/// round hot loop hands the same scratch slices to every observer without
/// cloning per round. Observers that need to retain data copy exactly
/// what they keep.
#[derive(Debug, Clone, Copy)]
pub struct RoundFeedback<'a> {
    /// The decision that was executed.
    pub participants: &'a [DeviceId],
    /// Per-participant active energy in joules (Eq. 5 selected branch),
    /// aligned with `participants`.
    pub per_participant_energy_j: &'a [f64],
    /// Idle energy per non-participant in joules (Eq. 5 else branch).
    pub idle_energy_per_device_j: f64,
    /// Global energy of the round (Eq. 6).
    pub global_energy_j: f64,
    /// Wall-clock round time in seconds.
    pub round_time_s: f64,
    /// Test accuracy after aggregation, in `[0, 1]`.
    pub accuracy: f64,
    /// Test accuracy before this round, in `[0, 1]`.
    pub prev_accuracy: f64,
    /// Participants dropped as stragglers this round.
    pub dropped: &'a [DeviceId],
    /// Participants that vanished mid-round (battery death or network
    /// churn); disjoint from `dropped` and empty when fleet dynamics are
    /// disabled.
    pub dropouts: &'a [DeviceId],
}

/// A participant-selection (and execution-target) policy.
///
/// Implemented by the baselines here and by `autofl_core::AutoFl`.
pub trait Selector {
    /// Chooses up to `K` participants and their execution plans.
    fn select(&mut self, ctx: &RoundContext<'_>, rng: &mut SmallRng) -> SelectionDecision;

    /// Receives the measured outcome of the round (learning selectors
    /// update their policy here).
    fn observe(&mut self, feedback: &RoundFeedback<'_>) {
        let _ = feedback;
    }

    /// Policy name used in reports.
    fn name(&self) -> &'static str;
}

/// The FedAvg baseline: `K` participants chosen uniformly at random
/// (cluster C0), trained on CPU at maximum frequency.
#[derive(Debug, Clone, Default)]
pub struct RandomSelector;

impl RandomSelector {
    /// Creates the selector.
    pub fn new() -> Self {
        RandomSelector
    }
}

impl Selector for RandomSelector {
    fn select(&mut self, ctx: &RoundContext<'_>, rng: &mut SmallRng) -> SelectionDecision {
        let mut ids = ctx.eligible_ids();
        ids.shuffle(rng);
        ids.truncate(ctx.params.num_participants);
        SelectionDecision::cpu_max(ctx.fleet, ids)
    }

    fn name(&self) -> &'static str {
        "FedAvg-Random"
    }
}

/// A fixed Table 4 composition (C1–C7): picks the prescribed number of
/// devices per tier, uniformly within each tier.
#[derive(Debug, Clone)]
pub struct ClusterSelector {
    cluster: CharacterizationCluster,
    label: &'static str,
}

impl ClusterSelector {
    /// Creates a selector for any fixed cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is C0 (random has no fixed composition).
    pub fn new(cluster: CharacterizationCluster) -> Self {
        assert!(
            cluster.base_composition().is_some(),
            "C0 is the random baseline; use RandomSelector"
        );
        ClusterSelector {
            cluster,
            label: cluster.name(),
        }
    }

    /// The `Performance` policy: all high-end devices (C1).
    pub fn performance() -> Self {
        let mut s = ClusterSelector::new(CharacterizationCluster::C1);
        s.label = "Performance";
        s
    }

    /// The `Power` policy: all low-end devices (C7).
    pub fn power() -> Self {
        let mut s = ClusterSelector::new(CharacterizationCluster::C7);
        s.label = "Power";
        s
    }

    /// The cluster this selector realises.
    pub fn cluster(&self) -> CharacterizationCluster {
        self.cluster
    }
}

impl Selector for ClusterSelector {
    fn select(&mut self, ctx: &RoundContext<'_>, rng: &mut SmallRng) -> SelectionDecision {
        let (h, m, l) = self
            .cluster
            .composition(ctx.params.num_participants)
            .expect("fixed cluster");
        let mut participants = Vec::with_capacity(ctx.params.num_participants);
        for (tier, want) in [
            (DeviceTier::High, h),
            (DeviceTier::Mid, m),
            (DeviceTier::Low, l),
        ] {
            let mut pool = ctx.eligible_ids_of_tier(tier);
            pool.shuffle(rng);
            // If the fleet has fewer eligible devices of the tier than
            // requested, take what exists; the shortfall is filled below.
            participants.extend(pool.into_iter().take(want));
        }
        // Fill any shortfall with random eligible devices not yet
        // selected.
        if participants.len() < ctx.params.num_participants {
            let mut rest: Vec<DeviceId> = ctx
                .eligible_ids()
                .into_iter()
                .filter(|id| !participants.contains(id))
                .collect();
            rest.shuffle(rng);
            participants.extend(
                rest.into_iter()
                    .take(ctx.params.num_participants - participants.len()),
            );
        }
        SelectionDecision::cpu_max(ctx.fleet, participants)
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofl_data::partition::DataDistribution;
    use autofl_data::FlData;
    use rand::SeedableRng;

    fn context_fixture() -> (Fleet, FlData, GlobalParams) {
        let fleet = Fleet::paper_fleet(1);
        let data = FlData::generate(
            Workload::TinyTest,
            200,
            8,
            16,
            DataDistribution::IidIdeal,
            1,
        );
        (fleet, data, GlobalParams::s3())
    }

    fn ctx<'a>(
        fleet: &'a Fleet,
        data: &'a FlData,
        params: &'a GlobalParams,
        conditions: &'a [DeviceConditions],
        availability: &'a [DeviceAvailability],
    ) -> RoundContext<'a> {
        RoundContext {
            round: 0,
            fleet,
            conditions,
            availability,
            partition: &data.partition,
            params,
            workload: Workload::TinyTest,
            layer_counts: Workload::TinyTest.reference_layer_counts(),
            prev_accuracy: 0.1,
        }
    }

    #[test]
    fn random_selects_k_distinct_devices() {
        let (fleet, data, params) = context_fixture();
        let conditions = vec![DeviceConditions::ideal(); 200];
        let availability = vec![DeviceAvailability::ideal(); 200];
        let c = ctx(&fleet, &data, &params, &conditions, &availability);
        let mut rng = SmallRng::seed_from_u64(1);
        let d = RandomSelector::new().select(&c, &mut rng);
        assert_eq!(d.participants.len(), 20);
        let mut unique = d.participants.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 20);
        assert_eq!(d.plans.len(), 20);
    }

    #[test]
    fn performance_selects_only_high_end() {
        let (fleet, data, params) = context_fixture();
        let conditions = vec![DeviceConditions::ideal(); 200];
        let availability = vec![DeviceAvailability::ideal(); 200];
        let c = ctx(&fleet, &data, &params, &conditions, &availability);
        let mut rng = SmallRng::seed_from_u64(2);
        let d = ClusterSelector::performance().select(&c, &mut rng);
        assert!(d
            .participants
            .iter()
            .all(|id| fleet.device(*id).tier() == DeviceTier::High));
    }

    #[test]
    fn cluster_c3_mixes_tiers_as_table4() {
        let (fleet, data, params) = context_fixture();
        let conditions = vec![DeviceConditions::ideal(); 200];
        let availability = vec![DeviceAvailability::ideal(); 200];
        let c = ctx(&fleet, &data, &params, &conditions, &availability);
        let mut rng = SmallRng::seed_from_u64(3);
        let d = ClusterSelector::new(CharacterizationCluster::C3).select(&c, &mut rng);
        let count = |t: DeviceTier| {
            d.participants
                .iter()
                .filter(|id| fleet.device(**id).tier() == t)
                .count()
        };
        assert_eq!(
            (
                count(DeviceTier::High),
                count(DeviceTier::Mid),
                count(DeviceTier::Low)
            ),
            (10, 5, 5)
        );
    }

    #[test]
    fn task_for_scales_with_local_data_and_epochs() {
        let (fleet, data, params) = context_fixture();
        let conditions = vec![DeviceConditions::ideal(); 200];
        let availability = vec![DeviceAvailability::ideal(); 200];
        let c = ctx(&fleet, &data, &params, &conditions, &availability);
        let t = c.task_for(DeviceId(0));
        let samples = data.partition.device_indices(0).len() as u64;
        assert_eq!(
            t.flops,
            params.local_epochs as u64
                * samples
                * Workload::TinyTest.reference_training_flops_per_sample()
        );
    }
}

//! The characterization clusters C0–C7 (Table 4 of the paper).

use autofl_device::tier::DeviceTier;
use serde::{Deserialize, Serialize};

/// A fixed composition of participant tiers used in the Section 3
/// characterization and as the `Power` / `Performance` baselines.
///
/// Table 4 defines the compositions for `K = 20`; for other `K` the mix is
/// scaled proportionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CharacterizationCluster {
    /// Random selection (the FedAvg baseline).
    C0,
    /// 20 H / 0 M / 0 L — the `Performance` policy.
    C1,
    /// 15 H / 5 M / 0 L.
    C2,
    /// 10 H / 5 M / 5 L.
    C3,
    /// 5 H / 10 M / 5 L.
    C4,
    /// 5 H / 5 M / 10 L.
    C5,
    /// 0 H / 5 M / 15 L.
    C6,
    /// 0 H / 0 M / 20 L — the `Power` policy.
    C7,
}

impl CharacterizationCluster {
    /// All clusters in Table 4 order.
    pub fn all() -> [CharacterizationCluster; 8] {
        use CharacterizationCluster::*;
        [C0, C1, C2, C3, C4, C5, C6, C7]
    }

    /// The non-random fixed compositions (C1–C7).
    pub fn fixed() -> [CharacterizationCluster; 7] {
        use CharacterizationCluster::*;
        [C1, C2, C3, C4, C5, C6, C7]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        use CharacterizationCluster::*;
        match self {
            C0 => "C0",
            C1 => "C1",
            C2 => "C2",
            C3 => "C3",
            C4 => "C4",
            C5 => "C5",
            C6 => "C6",
            C7 => "C7",
        }
    }

    /// Table 4 composition for `K = 20` as `(high, mid, low)` counts.
    /// Returns `None` for C0 (random has no fixed composition).
    pub fn base_composition(&self) -> Option<(usize, usize, usize)> {
        use CharacterizationCluster::*;
        match self {
            C0 => None,
            C1 => Some((20, 0, 0)),
            C2 => Some((15, 5, 0)),
            C3 => Some((10, 5, 5)),
            C4 => Some((5, 10, 5)),
            C5 => Some((5, 5, 10)),
            C6 => Some((0, 5, 15)),
            C7 => Some((0, 0, 20)),
        }
    }

    /// Composition scaled to an arbitrary `k`, preserving the mix and the
    /// total (largest-remainder rounding).
    pub fn composition(&self, k: usize) -> Option<(usize, usize, usize)> {
        let (h, m, l) = self.base_composition()?;
        let total = (h + m + l) as f64;
        let exact = [
            h as f64 * k as f64 / total,
            m as f64 * k as f64 / total,
            l as f64 * k as f64 / total,
        ];
        let mut counts = [
            exact[0].floor() as usize,
            exact[1].floor() as usize,
            exact[2].floor() as usize,
        ];
        let mut remainders: Vec<(usize, f64)> = exact
            .iter()
            .enumerate()
            .map(|(i, &e)| (i, e - e.floor()))
            .collect();
        remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite remainders"));
        let mut short = k - counts.iter().sum::<usize>();
        for (i, _) in remainders {
            if short == 0 {
                break;
            }
            counts[i] += 1;
            short -= 1;
        }
        Some((counts[0], counts[1], counts[2]))
    }

    /// Requested count for a given tier at `K = 20`.
    pub fn count_for(&self, tier: DeviceTier) -> Option<usize> {
        self.base_composition().map(|(h, m, l)| match tier {
            DeviceTier::High => h,
            DeviceTier::Mid => m,
            DeviceTier::Low => l,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_compositions_sum_to_20() {
        for c in CharacterizationCluster::fixed() {
            let (h, m, l) = c.base_composition().unwrap();
            assert_eq!(h + m + l, 20, "{} does not sum to 20", c.name());
        }
    }

    #[test]
    fn c1_is_performance_and_c7_is_power() {
        assert_eq!(
            CharacterizationCluster::C1.base_composition(),
            Some((20, 0, 0))
        );
        assert_eq!(
            CharacterizationCluster::C7.base_composition(),
            Some((0, 0, 20))
        );
    }

    #[test]
    fn scaling_preserves_total() {
        for c in CharacterizationCluster::fixed() {
            for k in [5, 10, 13, 20, 40] {
                let (h, m, l) = c.composition(k).unwrap();
                assert_eq!(h + m + l, k, "{} at k={}", c.name(), k);
            }
        }
    }

    #[test]
    fn c0_has_no_fixed_composition() {
        assert_eq!(CharacterizationCluster::C0.base_composition(), None);
        assert_eq!(CharacterizationCluster::C0.composition(10), None);
    }
}

//! Stochastic fleet dynamics: battery, thermal, churn and mid-round
//! dropout.
//!
//! Production FL fleets are unstable — devices are only eligible while
//! idle, charging (or sufficiently charged) and connected; sustained
//! training heats the SoC until the governor throttles it; and selected
//! participants can vanish mid-round when their battery dies or their
//! network drops. [`FleetDynamics`] is the configuration block
//! (`SimConfig::fleet`, off by default) that switches those effects on;
//! [`FleetState`] carries the per-device
//! [`DeviceLifecycle`](autofl_device::lifecycle::DeviceLifecycle) states
//! across rounds and evolves them with per-device RNG streams seeded
//! `(seed, round, id)` — the same rule as
//! [`VarianceScenario::sample_fleet`](autofl_device::scenario::VarianceScenario::sample_fleet),
//! so trajectories are bit-identical at any thread count.
//!
//! The round engine pairs the dynamics with a [`StragglerPolicy`]
//! deciding what happens to participants that miss the deadline or drop
//! out: cut them at the deadline (`Drop`), wait a bounded grace factor
//! (`WaitBounded`), or over-provision the selection (`OverSelect`) so the
//! surviving cohort still reaches `K`. Partial FedAvg aggregation is
//! reweighted over the survivors through the effective sample masses the
//! engine feeds to `CohortStats`; [`survivor_weights`] is the canonical
//! normalised form of those masses (summing to exactly 1.0), asserted on
//! the engine's aggregation path in debug builds and pinned bit-exact by
//! property tests.

use autofl_device::fleet::{DeviceId, Fleet};
use autofl_device::lifecycle::DeviceLifecycle;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// How the round engine treats participants that miss the deadline
/// (stragglers) on top of mid-round dropouts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum StragglerPolicy {
    /// Cut stragglers at the deadline — FedAvg's conventional behaviour
    /// (partial-update algorithms still keep their partial work).
    #[default]
    Drop,
    /// Wait up to `grace × deadline` for stragglers before cutting them:
    /// fewer lost updates, longer (and more energy-hungry) rounds.
    WaitBounded {
        /// Multiplier (≥ 1) on the nominal straggler deadline.
        grace: f64,
    },
    /// Select `K + extra` participants so that the expected survivor
    /// count stays near `K` under dropout, at the cost of extra active
    /// energy.
    OverSelect {
        /// Additional participants selected beyond `K`.
        extra: usize,
    },
}

impl StragglerPolicy {
    /// Short label used in reports.
    pub fn name(&self) -> String {
        match self {
            StragglerPolicy::Drop => "Drop".to_string(),
            StragglerPolicy::WaitBounded { grace } => format!("Wait({grace})"),
            StragglerPolicy::OverSelect { extra } => format!("OverSelect(K+{extra})"),
        }
    }
}

/// The `fleet` block of [`crate::engine::SimConfig`]: per-round lifecycle
/// dynamics of the device fleet. `None` (the default) reproduces the
/// static fleet bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetDynamics {
    /// Lower bound of the initial per-device state of charge.
    pub initial_soc_min: f64,
    /// Upper bound of the initial per-device state of charge.
    pub initial_soc_max: f64,
    /// Per-round probability an unplugged device gets plugged in.
    pub charge_prob: f64,
    /// State of charge gained per simulated second while plugged in.
    pub charge_rate_per_s: f64,
    /// State of charge lost per simulated second while idle and
    /// unplugged.
    pub idle_drain_per_s: f64,
    /// Multiplier on each tier's nominal battery capacity
    /// ([`autofl_device::tier::DeviceTier::battery_capacity_j`]); values
    /// below 1 make training drain (and kill) batteries faster.
    pub battery_capacity_scale: f64,
    /// Minimum state of charge for an unplugged device to be eligible
    /// (the production check-in rule's battery gate).
    pub min_soc: f64,
    /// State of charge at which a training device dies mid-round.
    pub reserve_soc: f64,
    /// Per-round base probability of a foreground user session (scaled by
    /// each device's interference propensity).
    pub foreground_prob: f64,
    /// Per-round base probability of being offline (scaled by each
    /// device's weak-signal propensity).
    pub offline_prob: f64,
    /// Per-round base probability that a selected participant loses
    /// connectivity mid-round (scaled by its weak-signal propensity).
    pub mid_round_drop_prob: f64,
    /// Thermal throttle gained per second of training.
    pub heat_per_s: f64,
    /// Thermal throttle shed per second while not training.
    pub cool_per_s: f64,
    /// Straggler / dropout handling at aggregation.
    pub straggler: StragglerPolicy,
}

impl Default for FleetDynamics {
    fn default() -> Self {
        FleetDynamics::realistic()
    }
}

impl FleetDynamics {
    /// An in-the-field default: most devices healthy, a noticeable
    /// minority churning, moderate mid-round dropout.
    pub fn realistic() -> Self {
        FleetDynamics {
            initial_soc_min: 0.25,
            initial_soc_max: 1.0,
            charge_prob: 0.35,
            charge_rate_per_s: 4e-4,
            idle_drain_per_s: 2e-5,
            battery_capacity_scale: 1.0,
            min_soc: 0.20,
            reserve_soc: 0.05,
            foreground_prob: 0.15,
            offline_prob: 0.10,
            mid_round_drop_prob: 0.05,
            heat_per_s: 4e-3,
            cool_per_s: 1e-2,
            straggler: StragglerPolicy::Drop,
        }
    }

    /// The realistic profile with the churn knobs scaled to a target
    /// mid-round dropout rate (the x-axis of the `fig16_dropout` sweep).
    pub fn with_dropout_rate(rate: f64) -> Self {
        FleetDynamics {
            mid_round_drop_prob: rate,
            offline_prob: (rate * 0.5).min(1.0),
            ..FleetDynamics::realistic()
        }
    }

    /// Returns `self` with a different straggler policy (builder-style).
    #[must_use]
    pub fn straggler(mut self, policy: StragglerPolicy) -> Self {
        self.straggler = policy;
        self
    }
}

/// What the round engine (and every selection policy through
/// [`crate::selection::RoundContext::availability`]) knows about one
/// device's availability at the start of a round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceAvailability {
    /// Whether the device passes the check-in rule and may be selected.
    pub eligible: bool,
    /// Battery state of charge in `[0, 1]`.
    pub soc: f64,
    /// Thermal throttle level in `[0, 1]`.
    pub throttle: f64,
    /// Whether the device is plugged in.
    pub charging: bool,
    /// Whether a foreground user session is active.
    pub foreground: bool,
    /// Whether the device has connectivity.
    pub online: bool,
}

impl DeviceAvailability {
    /// A fully available device — what every device reports when the
    /// fleet block is disabled.
    pub fn ideal() -> Self {
        DeviceAvailability {
            eligible: true,
            soc: 1.0,
            throttle: 0.0,
            charging: false,
            foreground: false,
            online: true,
        }
    }
}

/// Session stickiness: probability of *staying* plugged in, in a
/// foreground session, or offline from one round to the next. Charging
/// and user sessions span several rounds rather than flickering per
/// round, which is what gives an adaptive selector a signal to learn.
const STAY_CHARGING: f64 = 0.70;
const STAY_FOREGROUND: f64 = 0.40;
const STAY_OFFLINE: f64 = 0.30;

/// Mixes a stream tag into per-device seeds (SplitMix64 finalizer — the
/// same construction as the engine's condition streams, with distinct
/// tags so lifecycle coins, dropout draws and condition samples never
/// share a stream).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seed of device `id`'s RNG stream for `(tag, round)`.
fn device_stream_seed(seed: u64, tag: u64, round: u64, id: usize) -> u64 {
    mix(seed
        .wrapping_add(tag)
        .wrapping_add(round.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        ^ (id as u64).wrapping_mul(0xd1b5_4a32_d192_ed03))
}

const TAG_INIT: u64 = 0x11fe;
const TAG_ROUND: u64 = 0x10fe;
const TAG_DROP: u64 = 0xd109;

/// The carried lifecycle state of every device, plus the seed its RNG
/// streams derive from.
#[derive(Debug, Clone)]
pub struct FleetState {
    seed: u64,
    states: Vec<DeviceLifecycle>,
}

impl FleetState {
    /// Initial state for a fleet: per-device SoC drawn uniformly from the
    /// configured range on stream `(seed, TAG_INIT, id)`; everyone cool,
    /// idle and online.
    pub fn new(config: &FleetDynamics, fleet: &Fleet, seed: u64) -> Self {
        let states = (0..fleet.len())
            .map(|i| {
                let mut rng = SmallRng::seed_from_u64(device_stream_seed(seed, TAG_INIT, 0, i));
                let soc = if config.initial_soc_max > config.initial_soc_min {
                    rng.gen_range(config.initial_soc_min..config.initial_soc_max)
                } else {
                    config.initial_soc_min
                };
                DeviceLifecycle {
                    soc,
                    ..DeviceLifecycle::healthy()
                }
            })
            .collect();
        FleetState { seed, states }
    }

    /// The per-device lifecycle states.
    pub fn states(&self) -> &[DeviceLifecycle] {
        &self.states
    }

    /// Draws this round's charging / foreground / connectivity sessions
    /// (sticky across rounds), writes every device's
    /// [`DeviceAvailability`] into `out` (cleared first) and returns the
    /// number of ineligible devices.
    ///
    /// Every device draws from its own stream `(seed, TAG_ROUND, round,
    /// id)`, so the result is independent of thread count and schedule.
    pub fn begin_round(
        &mut self,
        config: &FleetDynamics,
        fleet: &Fleet,
        round: usize,
        out: &mut Vec<DeviceAvailability>,
    ) -> usize {
        let seed = self.seed;
        self.states
            .par_chunks_mut(64)
            .enumerate()
            .for_each(|(ci, chunk)| {
                for (j, state) in chunk.iter_mut().enumerate() {
                    let i = ci * 64 + j;
                    let mut rng = SmallRng::seed_from_u64(device_stream_seed(
                        seed,
                        TAG_ROUND,
                        round as u64,
                        i,
                    ));
                    let device = fleet.device(DeviceId(i));
                    // Fixed draw order per device: charging, foreground,
                    // connectivity — three coins per round regardless of
                    // state, so streams never drift.
                    let p_charge = if state.charging {
                        STAY_CHARGING
                    } else {
                        config.charge_prob
                    };
                    state.charging = rng.gen_bool(p_charge.clamp(0.0, 1.0));
                    let p_fg = if state.foreground {
                        STAY_FOREGROUND
                    } else {
                        (config.foreground_prob * device.interference_propensity()).clamp(0.0, 1.0)
                    };
                    state.foreground = rng.gen_bool(p_fg);
                    let p_off = if state.online {
                        (config.offline_prob * device.weak_signal_propensity()).clamp(0.0, 1.0)
                    } else {
                        STAY_OFFLINE
                    };
                    state.online = !rng.gen_bool(p_off);
                }
            });
        out.clear();
        let mut ineligible = 0;
        for state in &self.states {
            let eligible = state.eligible(config.min_soc);
            if !eligible {
                ineligible += 1;
            }
            out.push(DeviceAvailability {
                eligible,
                soc: state.soc,
                throttle: state.throttle,
                charging: state.charging,
                foreground: state.foreground,
                online: state.online,
            });
        }
        ineligible
    }

    /// Decides whether participant `id` drops out mid-round, given its
    /// full-round energy `energy_j`, from stream `(seed, TAG_DROP, round,
    /// id)` plus deterministic battery depletion. Returns the fraction of
    /// the round completed before vanishing (`None` = survived).
    pub fn mid_round_dropout(
        &self,
        config: &FleetDynamics,
        fleet: &Fleet,
        round: usize,
        id: DeviceId,
        energy_j: f64,
    ) -> Option<f64> {
        let state = &self.states[id.0];
        let mut fraction: Option<f64> = None;
        // Battery death: unplugged devices die when the round's energy
        // would push SoC below the reserve — deterministic given state.
        if !state.charging && energy_j > 0.0 {
            let capacity =
                fleet.device(id).tier().battery_capacity_j() * config.battery_capacity_scale;
            let budget_j = (state.soc - config.reserve_soc).max(0.0) * capacity;
            if budget_j < energy_j {
                fraction = Some((budget_j / energy_j).clamp(0.0, 1.0));
            }
        }
        // Connectivity churn: one coin + one uniform draw per participant.
        let mut rng =
            SmallRng::seed_from_u64(device_stream_seed(self.seed, TAG_DROP, round as u64, id.0));
        let p_drop = (config.mid_round_drop_prob * fleet.device(id).weak_signal_propensity())
            .clamp(0.0, 1.0);
        let churn_coin = p_drop > 0.0 && rng.gen_bool(p_drop);
        let churn_frac = rng.gen_range(0.05..0.95);
        if churn_coin {
            fraction = Some(match fraction {
                Some(f) => f.min(churn_frac),
                None => churn_frac,
            });
        }
        fraction
    }

    /// Applies one completed round to the lifecycle states: participants
    /// pay battery from their measured energy and heat up for their busy
    /// seconds; everyone else drains (or charges) and cools over the
    /// round duration.
    ///
    /// `busy_s` and `energy_j` are aligned with `participants`.
    pub fn end_round(
        &mut self,
        config: &FleetDynamics,
        fleet: &Fleet,
        round_time_s: f64,
        participants: &[DeviceId],
        busy_s: &[f64],
        energy_j: &[f64],
    ) {
        debug_assert_eq!(participants.len(), busy_s.len());
        debug_assert_eq!(participants.len(), energy_j.len());
        let mut participant_index = vec![usize::MAX; self.states.len()];
        for (i, id) in participants.iter().enumerate() {
            participant_index[id.0] = i;
        }
        // One pass, one clamp per device: a participant's net throttle
        // change must be computed before clamping, otherwise the clamp
        // floor would eat the cooling term and credit spurious heat.
        for (d, state) in self.states.iter_mut().enumerate() {
            let i = participant_index[d];
            if i != usize::MAX {
                if state.charging {
                    state.soc += config.charge_rate_per_s * round_time_s;
                } else {
                    let capacity = fleet.device(DeviceId(d)).tier().battery_capacity_j()
                        * config.battery_capacity_scale;
                    state.soc -= energy_j[i] / capacity;
                }
                // Heats for its busy seconds, cools for the idle
                // remainder of the round.
                let busy = busy_s[i].min(round_time_s);
                state.throttle +=
                    config.heat_per_s * busy - config.cool_per_s * (round_time_s - busy);
            } else {
                if state.charging {
                    state.soc += config.charge_rate_per_s * round_time_s;
                } else {
                    state.soc -= config.idle_drain_per_s * round_time_s;
                }
                state.throttle -= config.cool_per_s * round_time_s;
            }
            state.clamp();
        }
    }
}

/// Normalised aggregation weights over the surviving cohort:
/// `w_i = e_i / Σe`, with the last survivor absorbing the floating-point
/// remainder so the weights sum to *exactly* 1.0 (bit-exact), as partial
/// FedAvg reweighting requires.
///
/// `effective` holds each survivor's effective sample mass
/// (`samples × update fraction`) and must be strictly positive.
pub fn survivor_weights(effective: &[f64]) -> Vec<f64> {
    if effective.is_empty() {
        return Vec::new();
    }
    let total: f64 = effective.iter().sum();
    if total <= 0.0 || total.is_nan() {
        // Degenerate cohort: fall back to uniform, same exact-sum rule.
        let n = effective.len();
        let mut w = vec![1.0 / n as f64; n];
        let head: f64 = w[..n - 1].iter().sum();
        w[n - 1] = 1.0 - head;
        return w;
    }
    let mut w: Vec<f64> = effective.iter().map(|e| e / total).collect();
    let head: f64 = w[..w.len() - 1].iter().sum();
    let last = w.len() - 1;
    w[last] = 1.0 - head;
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> Fleet {
        Fleet::custom(
            &[
                (autofl_device::tier::DeviceTier::High, 4),
                (autofl_device::tier::DeviceTier::Mid, 8),
                (autofl_device::tier::DeviceTier::Low, 12),
            ],
            7,
        )
    }

    #[test]
    fn begin_round_is_deterministic_and_thread_independent() {
        let cfg = FleetDynamics::realistic();
        let f = fleet();
        let run = |threads: &str| {
            let prev = std::env::var("AUTOFL_THREADS").ok();
            std::env::set_var("AUTOFL_THREADS", threads);
            let mut state = FleetState::new(&cfg, &f, 42);
            let mut avail = Vec::new();
            let mut history = Vec::new();
            for round in 0..20 {
                state.begin_round(&cfg, &f, round, &mut avail);
                history.push(avail.clone());
            }
            match prev {
                Some(v) => std::env::set_var("AUTOFL_THREADS", v),
                None => std::env::remove_var("AUTOFL_THREADS"),
            }
            (state, history)
        };
        let (sa, ha) = run("1");
        let (sb, hb) = run("8");
        assert_eq!(sa.states(), sb.states());
        assert_eq!(ha, hb);
    }

    #[test]
    fn sessions_churn_but_most_devices_stay_eligible() {
        let cfg = FleetDynamics::realistic();
        let f = fleet();
        let mut state = FleetState::new(&cfg, &f, 3);
        let mut avail = Vec::new();
        let mut ineligible_rounds = 0;
        for round in 0..50 {
            let ineligible = state.begin_round(&cfg, &f, round, &mut avail);
            assert!(ineligible < f.len(), "whole fleet went dark");
            if ineligible > 0 {
                ineligible_rounds += 1;
            }
        }
        assert!(
            ineligible_rounds > 25,
            "realistic dynamics should churn most rounds ({ineligible_rounds}/50)"
        );
    }

    #[test]
    fn battery_death_is_deterministic_and_proportional() {
        let mut cfg = FleetDynamics::realistic();
        cfg.mid_round_drop_prob = 0.0;
        let f = fleet();
        let mut state = FleetState::new(&cfg, &f, 5);
        let id = DeviceId(0);
        state.states[id.0].soc = cfg.reserve_soc + 0.001;
        state.states[id.0].charging = false;
        let capacity = f.device(id).tier().battery_capacity_j();
        // Ten times the remaining budget: dies at ~10% of the round.
        let energy = 0.001 * capacity * 10.0;
        let frac = state
            .mid_round_dropout(&cfg, &f, 1, id, energy)
            .expect("must die");
        assert!((frac - 0.1).abs() < 1e-12, "died at {frac}");
        // Plugged in: survives the same round.
        state.states[id.0].charging = true;
        assert_eq!(state.mid_round_dropout(&cfg, &f, 1, id, energy), None);
    }

    #[test]
    fn end_round_drains_participants_and_cools_idlers() {
        let mut cfg = FleetDynamics::realistic();
        cfg.charge_prob = 0.0;
        let f = fleet();
        let mut state = FleetState::new(&cfg, &f, 9);
        for s in &mut state.states {
            s.charging = false;
            s.throttle = 0.5;
            s.soc = 0.8;
        }
        let id = DeviceId(1);
        let capacity = f.device(id).tier().battery_capacity_j();
        state.end_round(&cfg, &f, 100.0, &[id], &[100.0], &[0.1 * capacity]);
        let trained = state.states()[id.0];
        let idle = state.states()[0];
        assert!(trained.soc < idle.soc, "training drains more than idling");
        assert!(
            trained.throttle > idle.throttle,
            "training heats while idling cools"
        );
        assert!(idle.throttle < 0.5);
    }

    #[test]
    fn survivor_weights_sum_to_exactly_one() {
        for effective in [
            vec![300.0, 120.0, 77.0],
            vec![1.0],
            vec![0.05, 0.05, 0.9, 1e6],
            vec![3.0; 20],
        ] {
            let w = survivor_weights(&effective);
            assert_eq!(w.len(), effective.len());
            assert!(w.iter().all(|x| *x >= 0.0));
            let sum: f64 = w.iter().sum();
            assert_eq!(sum.to_bits(), 1.0f64.to_bits(), "weights {w:?}");
        }
        assert!(survivor_weights(&[]).is_empty());
    }

    #[test]
    fn straggler_policy_names_and_default() {
        assert_eq!(StragglerPolicy::default(), StragglerPolicy::Drop);
        assert_eq!(StragglerPolicy::Drop.name(), "Drop");
        assert_eq!(
            StragglerPolicy::WaitBounded { grace: 1.5 }.name(),
            "Wait(1.5)"
        );
        assert_eq!(
            StragglerPolicy::OverSelect { extra: 5 }.name(),
            "OverSelect(K+5)"
        );
    }
}

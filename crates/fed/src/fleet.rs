//! Stochastic fleet dynamics: battery, thermal, churn and mid-round
//! dropout, stored as a sharded structure-of-arrays [`FleetStore`].
//!
//! Production FL fleets are unstable — devices are only eligible while
//! idle, charging (or sufficiently charged) and connected; sustained
//! training heats the SoC until the governor throttles it; and selected
//! participants can vanish mid-round when their battery dies or their
//! network drops. [`FleetDynamics`] is the configuration block
//! (`SimConfig::fleet`, off by default) that switches those effects on;
//! [`FleetStore`] carries the per-device lifecycle state across rounds.
//!
//! At million-device fleet sizes the store keeps each lifecycle field
//! (state of charge, throttle, session flags) in its own array, sharded
//! into contiguous device ranges (`SimConfig::shards`) so one parallel
//! task owns one shard outright. Sharding never changes results: every
//! per-round coin is drawn from a per-device RNG stream seeded
//! `(seed, tag, round, id)` with the device's *global* id — the same rule
//! as [`VarianceScenario::sample_into`](autofl_device::scenario::VarianceScenario::sample_into)
//! — and all cross-shard reductions are integer counts, so trajectories
//! are bit-identical at any shard and thread count (pinned by
//! `tests/scale_invariance.rs`).
//!
//! The round engine pairs the dynamics with a [`StragglerPolicy`]
//! deciding what happens to participants that miss the deadline or drop
//! out: cut them at the deadline (`Drop`), wait a bounded grace factor
//! (`WaitBounded`), or over-provision the selection (`OverSelect`) so the
//! surviving cohort still reaches `K`. Partial FedAvg aggregation is
//! reweighted over the survivors through the effective sample masses the
//! engine feeds to `CohortStats`; [`survivor_weights`] is the canonical
//! normalised form of those masses (summing to exactly 1.0), asserted on
//! the engine's aggregation path in debug builds and pinned bit-exact by
//! property tests.

use autofl_device::fleet::{DeviceId, Fleet};
use autofl_device::lifecycle::DeviceLifecycle;
use autofl_device::store::{shard_extents, shard_size, ConditionsStore};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// How the round engine treats participants that miss the deadline
/// (stragglers) on top of mid-round dropouts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum StragglerPolicy {
    /// Cut stragglers at the deadline — FedAvg's conventional behaviour
    /// (partial-update algorithms still keep their partial work).
    #[default]
    Drop,
    /// Wait up to `grace × deadline` for stragglers before cutting them:
    /// fewer lost updates, longer (and more energy-hungry) rounds.
    WaitBounded {
        /// Multiplier (≥ 1) on the nominal straggler deadline.
        grace: f64,
    },
    /// Select `K + extra` participants so that the expected survivor
    /// count stays near `K` under dropout, at the cost of extra active
    /// energy.
    OverSelect {
        /// Additional participants selected beyond `K`.
        extra: usize,
    },
}

impl StragglerPolicy {
    /// Short label used in reports.
    pub fn name(&self) -> String {
        match self {
            StragglerPolicy::Drop => "Drop".to_string(),
            StragglerPolicy::WaitBounded { grace } => format!("Wait({grace})"),
            StragglerPolicy::OverSelect { extra } => format!("OverSelect(K+{extra})"),
        }
    }
}

/// The `fleet` block of [`crate::engine::SimConfig`]: per-round lifecycle
/// dynamics of the device fleet. `None` (the default) reproduces the
/// static fleet bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetDynamics {
    /// Lower bound of the initial per-device state of charge.
    pub initial_soc_min: f64,
    /// Upper bound of the initial per-device state of charge.
    pub initial_soc_max: f64,
    /// Per-round probability an unplugged device gets plugged in.
    pub charge_prob: f64,
    /// State of charge gained per simulated second while plugged in.
    pub charge_rate_per_s: f64,
    /// State of charge lost per simulated second while idle and
    /// unplugged.
    pub idle_drain_per_s: f64,
    /// Multiplier on each tier's nominal battery capacity
    /// ([`autofl_device::tier::DeviceTier::battery_capacity_j`]); values
    /// below 1 make training drain (and kill) batteries faster.
    pub battery_capacity_scale: f64,
    /// Minimum state of charge for an unplugged device to be eligible
    /// (the production check-in rule's battery gate).
    pub min_soc: f64,
    /// State of charge at which a training device dies mid-round.
    pub reserve_soc: f64,
    /// Per-round base probability of a foreground user session (scaled by
    /// each device's interference propensity).
    pub foreground_prob: f64,
    /// Per-round base probability of being offline (scaled by each
    /// device's weak-signal propensity).
    pub offline_prob: f64,
    /// Per-round base probability that a selected participant loses
    /// connectivity mid-round (scaled by its weak-signal propensity).
    pub mid_round_drop_prob: f64,
    /// Thermal throttle gained per second of training.
    pub heat_per_s: f64,
    /// Thermal throttle shed per second while not training.
    pub cool_per_s: f64,
    /// Straggler / dropout handling at aggregation.
    pub straggler: StragglerPolicy,
}

impl Default for FleetDynamics {
    fn default() -> Self {
        FleetDynamics::realistic()
    }
}

impl FleetDynamics {
    /// An in-the-field default: most devices healthy, a noticeable
    /// minority churning, moderate mid-round dropout.
    pub fn realistic() -> Self {
        FleetDynamics {
            initial_soc_min: 0.25,
            initial_soc_max: 1.0,
            charge_prob: 0.35,
            charge_rate_per_s: 4e-4,
            idle_drain_per_s: 2e-5,
            battery_capacity_scale: 1.0,
            min_soc: 0.20,
            reserve_soc: 0.05,
            foreground_prob: 0.15,
            offline_prob: 0.10,
            mid_round_drop_prob: 0.05,
            heat_per_s: 4e-3,
            cool_per_s: 1e-2,
            straggler: StragglerPolicy::Drop,
        }
    }

    /// The realistic profile with the churn knobs scaled to a target
    /// mid-round dropout rate (the x-axis of the `fig16_dropout` sweep).
    pub fn with_dropout_rate(rate: f64) -> Self {
        FleetDynamics {
            mid_round_drop_prob: rate,
            offline_prob: (rate * 0.5).min(1.0),
            ..FleetDynamics::realistic()
        }
    }

    /// Returns `self` with a different straggler policy (builder-style).
    #[must_use]
    pub fn straggler(mut self, policy: StragglerPolicy) -> Self {
        self.straggler = policy;
        self
    }
}

/// What the round engine (and every selection policy through
/// [`crate::selection::RoundContext::availability`]) knows about one
/// device's availability at the start of a round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceAvailability {
    /// Whether the device passes the check-in rule and may be selected.
    pub eligible: bool,
    /// Battery state of charge in `[0, 1]`.
    pub soc: f64,
    /// Thermal throttle level in `[0, 1]`.
    pub throttle: f64,
    /// Whether the device is plugged in.
    pub charging: bool,
    /// Whether a foreground user session is active.
    pub foreground: bool,
    /// Whether the device has connectivity.
    pub online: bool,
}

impl DeviceAvailability {
    /// A fully available device — what every device reports when the
    /// fleet block is disabled.
    pub fn ideal() -> Self {
        DeviceAvailability {
            eligible: true,
            soc: 1.0,
            throttle: 0.0,
            charging: false,
            foreground: false,
            online: true,
        }
    }
}

/// Session stickiness: probability of *staying* plugged in, in a
/// foreground session, or offline from one round to the next. Charging
/// and user sessions span several rounds rather than flickering per
/// round, which is what gives an adaptive selector a signal to learn.
const STAY_CHARGING: f64 = 0.70;
const STAY_FOREGROUND: f64 = 0.40;
const STAY_OFFLINE: f64 = 0.30;

/// Mixes a stream tag into per-device seeds (SplitMix64 finalizer — the
/// same construction as the engine's condition streams, with distinct
/// tags so lifecycle coins, dropout draws and condition samples never
/// share a stream).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seed of device `id`'s RNG stream for `(tag, round)`.
pub(crate) fn device_stream_seed(seed: u64, tag: u64, round: u64, id: usize) -> u64 {
    mix(seed
        .wrapping_add(tag)
        .wrapping_add(round.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        ^ (id as u64).wrapping_mul(0xd1b5_4a32_d192_ed03))
}

const TAG_INIT: u64 = 0x11fe;
const TAG_ROUND: u64 = 0x10fe;
const TAG_DROP: u64 = 0xd109;
const TAG_SHADOW: u64 = 0x5ad0;
/// Per-device link draws (latency + message loss) of the network fabric.
pub(crate) const TAG_NET: u64 = 0x7e70;
/// Stochastic-rounding streams of the update codecs (`Int8Quant`).
pub(crate) const TAG_CODEC: u64 = 0xc0de;
/// Adversary subsystem streams: role assignment (round key 0) and
/// per-round misbehaviour draws (round key `round + 1`) — see
/// [`crate::adversary`].
pub(crate) const TAG_ADV: u64 = 0xadfe;

/// Seed of the shadow selector's per-round RNG stream (`TAG_SHADOW`).
///
/// The shadow selector of [`crate::engine::Simulation::run_round_shadowed`]
/// draws from its own tagged stream so it can never perturb the main
/// run's RNG; routing it through the same `(seed, tag, round, id)`
/// construction as every other stream keeps the seeds collision-free
/// across `(seed, round)` pairs (the previous ad-hoc
/// `seed ^ round * constant` mix collided whenever two pairs XOR-ed to
/// the same value, e.g. any round 0 against any seed).
pub(crate) fn shadow_stream_seed(seed: u64, round: usize) -> u64 {
    device_stream_seed(seed, TAG_SHADOW, round as u64, 0)
}

/// One contiguous range of devices' lifecycle state, one field per array.
/// Device `offset + j` lives at lane `j` of every array.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FleetShard {
    offset: usize,
    soc: Vec<f64>,
    throttle: Vec<f64>,
    charging: Vec<bool>,
    foreground: Vec<bool>,
    online: Vec<bool>,
    eligible: Vec<bool>,
    eligible_count: usize,
}

impl FleetShard {
    fn len(&self) -> usize {
        self.soc.len()
    }
}

/// One shard's availability summary. [`AvailabilityView::eligible_ids`]
/// walks these instead of scanning every device (a bin with
/// `eligible == 0` is skipped outright), and the summed counts
/// ([`AvailabilityView::eligible_count`]) let large-fleet consumers —
/// the AutoFL controller's candidate buffer, the engine's ineligible
/// tally — size and account without a fleet scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardBin {
    /// First global device id covered by the bin.
    pub offset: usize,
    /// Devices covered by the bin.
    pub len: usize,
    /// Check-in-eligible devices in the bin this round.
    pub eligible: usize,
}

/// The carried lifecycle state of every device — battery state of charge,
/// thermal throttle, session flags and check-in eligibility — as a
/// sharded structure-of-arrays, plus the seed its RNG streams derive
/// from.
///
/// The shard count is a layout/parallelism knob only: results are
/// bit-identical at any shard count because every stochastic draw comes
/// from a per-device stream keyed by the global device id.
#[derive(Debug, Clone)]
pub struct FleetStore {
    seed: u64,
    len: usize,
    shard_size: usize,
    shards: Vec<FleetShard>,
    /// Reusable fleet-sized participant-slot scratch for `end_round`.
    participant_slot: Vec<usize>,
}

/// The pre-sharding name of [`FleetStore`], kept as an alias for
/// downstream code written against PR 4's API.
pub type FleetState = FleetStore;

impl FleetStore {
    /// Initial state for a fleet in `shards` contiguous extents:
    /// per-device SoC drawn uniformly from the configured range on stream
    /// `(seed, TAG_INIT, id)`; everyone cool, idle and online.
    pub fn new(config: &FleetDynamics, fleet: &Fleet, seed: u64, shards: usize) -> Self {
        let size = shard_size(fleet.len(), shards);
        let extents = shard_extents(fleet.len(), shards);
        let shards: Vec<FleetShard> = extents
            .into_iter()
            .map(|(offset, n)| {
                let mut soc = Vec::with_capacity(n);
                for j in 0..n {
                    let i = offset + j;
                    let mut rng = SmallRng::seed_from_u64(device_stream_seed(seed, TAG_INIT, 0, i));
                    soc.push(if config.initial_soc_max > config.initial_soc_min {
                        rng.gen_range(config.initial_soc_min..config.initial_soc_max)
                    } else {
                        config.initial_soc_min
                    });
                }
                FleetShard {
                    offset,
                    soc,
                    throttle: vec![0.0; n],
                    charging: vec![false; n],
                    foreground: vec![false; n],
                    online: vec![true; n],
                    eligible: vec![true; n],
                    eligible_count: n,
                }
            })
            .collect();
        FleetStore {
            seed,
            len: fleet.len(),
            shard_size: size,
            shards,
            participant_slot: Vec::new(),
        }
    }

    /// Number of devices covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store covers no devices.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of shards the state is split into.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn locate(&self, i: usize) -> (usize, usize) {
        debug_assert!(i < self.len, "device {i} outside store of {}", self.len);
        (i / self.shard_size, i % self.shard_size)
    }

    /// Materialises device `i`'s lifecycle state.
    pub fn lifecycle(&self, i: usize) -> DeviceLifecycle {
        let (s, j) = self.locate(i);
        let shard = &self.shards[s];
        DeviceLifecycle {
            soc: shard.soc[j],
            charging: shard.charging[j],
            throttle: shard.throttle[j],
            foreground: shard.foreground[j],
            online: shard.online[j],
        }
    }

    /// Materialises device `i`'s availability as of the last
    /// [`FleetStore::begin_round`].
    #[inline]
    pub fn availability(&self, i: usize) -> DeviceAvailability {
        let (s, j) = self.locate(i);
        let shard = &self.shards[s];
        DeviceAvailability {
            eligible: shard.eligible[j],
            soc: shard.soc[j],
            throttle: shard.throttle[j],
            charging: shard.charging[j],
            foreground: shard.foreground[j],
            online: shard.online[j],
        }
    }

    /// Whether device `i` passed the last round's eligibility check-in.
    #[inline]
    pub fn is_eligible(&self, i: usize) -> bool {
        let (s, j) = self.locate(i);
        self.shards[s].eligible[j]
    }

    /// Per-shard availability bins as of the last
    /// [`FleetStore::begin_round`].
    pub fn bins(&self) -> Vec<ShardBin> {
        self.shards
            .iter()
            .map(|s| ShardBin {
                offset: s.offset,
                len: s.len(),
                eligible: s.eligible_count,
            })
            .collect()
    }

    /// Check-in-eligible devices as of the last round start.
    pub fn eligible_count(&self) -> usize {
        self.shards.iter().map(|s| s.eligible_count).sum()
    }

    /// Approximate heap bytes held by the store (the bench suite's
    /// memory-footprint proxy): two `f64` arrays plus four one-byte flag
    /// arrays per shard, plus the participant-slot scratch.
    pub fn size_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.soc.capacity() * 8
                    + s.throttle.capacity() * 8
                    + s.charging.capacity()
                    + s.foreground.capacity()
                    + s.online.capacity()
                    + s.eligible.capacity()
            })
            .sum::<usize>()
            + self.participant_slot.capacity() * 8
    }

    /// Serializes the carried lifecycle state (per-device SoC, throttle,
    /// session flags, eligibility) for a checkpoint. The seed and shard
    /// geometry are *not* captured: both are deterministic functions of
    /// the simulation config, and [`FleetStore::state_restore`] verifies
    /// the geometry instead of trusting the file.
    pub fn state_snapshot(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("len".to_string(), self.len.to_value()),
            ("shards".to_string(), self.shards.to_value()),
        ])
    }

    /// Restores state captured by [`FleetStore::state_snapshot`] onto a
    /// store freshly built from the same config (same fleet size and
    /// shard count).
    pub fn state_restore(&mut self, value: &serde::Value) -> Result<(), serde::Error> {
        let len: usize =
            Deserialize::from_value(serde::field_or_null(value, "len")).map_err(|e| e.at("len"))?;
        let shards: Vec<FleetShard> =
            Deserialize::from_value(serde::field_or_null(value, "shards"))
                .map_err(|e| e.at("shards"))?;
        if len != self.len || shards.len() != self.shards.len() {
            return Err(serde::Error::custom(format!(
                "fleet geometry mismatch: store is {} devices / {} shards, checkpoint holds {} / {}",
                self.len,
                self.shards.len(),
                len,
                shards.len()
            )));
        }
        for (have, got) in self.shards.iter().zip(&shards) {
            if have.offset != got.offset || have.len() != got.len() {
                return Err(serde::Error::custom(
                    "fleet shard extents do not match the checkpoint",
                ));
            }
        }
        self.shards = shards;
        Ok(())
    }

    /// Draws this round's charging / foreground / connectivity sessions
    /// (sticky across rounds), refreshes every device's stored
    /// availability, and returns the number of ineligible devices.
    ///
    /// Shards evolve in parallel; every device draws from its own stream
    /// `(seed, TAG_ROUND, round, id)` and the ineligible total is a sum
    /// of per-shard integer counts, so the result is independent of
    /// shard count, thread count and schedule.
    pub fn begin_round(&mut self, config: &FleetDynamics, fleet: &Fleet, round: usize) -> usize {
        let seed = self.seed;
        self.shards.par_iter_mut().for_each(|shard| {
            let mut eligible_count = 0usize;
            for j in 0..shard.len() {
                let i = shard.offset + j;
                let mut rng =
                    SmallRng::seed_from_u64(device_stream_seed(seed, TAG_ROUND, round as u64, i));
                let device = fleet.device(DeviceId(i));
                // Fixed draw order per device: charging, foreground,
                // connectivity — three coins per round regardless of
                // state, so streams never drift.
                let p_charge = if shard.charging[j] {
                    STAY_CHARGING
                } else {
                    config.charge_prob
                };
                shard.charging[j] = rng.gen_bool(p_charge.clamp(0.0, 1.0));
                let p_fg = if shard.foreground[j] {
                    STAY_FOREGROUND
                } else {
                    (config.foreground_prob * device.interference_propensity()).clamp(0.0, 1.0)
                };
                shard.foreground[j] = rng.gen_bool(p_fg);
                let p_off = if shard.online[j] {
                    (config.offline_prob * device.weak_signal_propensity()).clamp(0.0, 1.0)
                } else {
                    STAY_OFFLINE
                };
                shard.online[j] = !rng.gen_bool(p_off);
                let eligible = autofl_device::lifecycle::check_in_eligible(
                    shard.online[j],
                    shard.foreground[j],
                    shard.charging[j],
                    shard.soc[j],
                    config.min_soc,
                );
                shard.eligible[j] = eligible;
                eligible_count += usize::from(eligible);
            }
            shard.eligible_count = eligible_count;
        });
        self.len - self.eligible_count()
    }

    /// Overlays every device's thermal throttle level onto a sharded
    /// conditions store so the cost model sees the governor's state.
    ///
    /// # Panics
    ///
    /// Panics if the two stores cover a different number of devices or
    /// use different shard geometries (both are built from the same
    /// `SimConfig`, so the engine always passes matching stores).
    pub fn overlay_throttle(&self, conditions: &mut ConditionsStore) {
        assert_eq!(conditions.len(), self.len, "stores must cover one fleet");
        assert_eq!(
            conditions.shards().len(),
            self.shards.len(),
            "stores must share shard geometry"
        );
        for (src, dst) in self.shards.iter().zip(conditions.shards_mut()) {
            debug_assert_eq!(src.offset, dst.offset);
            dst.throttle.copy_from_slice(&src.throttle);
        }
    }

    /// Decides whether participant `id` drops out mid-round, given its
    /// full-round energy `energy_j`, from stream `(seed, TAG_DROP, round,
    /// id)` plus deterministic battery depletion. Returns the fraction of
    /// the round completed before vanishing (`None` = survived).
    pub fn mid_round_dropout(
        &self,
        config: &FleetDynamics,
        fleet: &Fleet,
        round: usize,
        id: DeviceId,
        energy_j: f64,
    ) -> Option<f64> {
        let (s, j) = self.locate(id.0);
        let shard = &self.shards[s];
        let mut fraction: Option<f64> = None;
        // Battery death: unplugged devices die when the round's energy
        // would push SoC below the reserve — deterministic given state.
        if !shard.charging[j] && energy_j > 0.0 {
            let capacity =
                fleet.device(id).tier().battery_capacity_j() * config.battery_capacity_scale;
            let budget_j = (shard.soc[j] - config.reserve_soc).max(0.0) * capacity;
            if budget_j < energy_j {
                fraction = Some((budget_j / energy_j).clamp(0.0, 1.0));
            }
        }
        // Connectivity churn: one coin + one uniform draw per participant.
        let mut rng =
            SmallRng::seed_from_u64(device_stream_seed(self.seed, TAG_DROP, round as u64, id.0));
        let p_drop = (config.mid_round_drop_prob * fleet.device(id).weak_signal_propensity())
            .clamp(0.0, 1.0);
        let churn_coin = p_drop > 0.0 && rng.gen_bool(p_drop);
        let churn_frac = rng.gen_range(0.05..0.95);
        if churn_coin {
            fraction = Some(match fraction {
                Some(f) => f.min(churn_frac),
                None => churn_frac,
            });
        }
        fraction
    }

    /// Applies one completed round to the lifecycle states: participants
    /// pay battery from their measured energy and heat up for their busy
    /// seconds; everyone else drains (or charges) and cools over the
    /// round duration. Shards update in parallel (per-device writes are
    /// independent, so the result is schedule-free).
    ///
    /// `busy_s` and `energy_j` are aligned with `participants`.
    pub fn end_round(
        &mut self,
        config: &FleetDynamics,
        fleet: &Fleet,
        round_time_s: f64,
        participants: &[DeviceId],
        busy_s: &[f64],
        energy_j: &[f64],
    ) {
        debug_assert_eq!(participants.len(), busy_s.len());
        debug_assert_eq!(participants.len(), energy_j.len());
        self.participant_slot.clear();
        self.participant_slot.resize(self.len, usize::MAX);
        for (i, id) in participants.iter().enumerate() {
            self.participant_slot[id.0] = i;
        }
        let slots = std::mem::take(&mut self.participant_slot);
        self.shards.par_iter_mut().for_each(|shard| {
            // One pass, one clamp per device: a participant's net
            // throttle change must be computed before clamping,
            // otherwise the clamp floor would eat the cooling term
            // and credit spurious heat.
            for j in 0..shard.len() {
                let d = shard.offset + j;
                let i = slots[d];
                if i != usize::MAX {
                    if shard.charging[j] {
                        shard.soc[j] += config.charge_rate_per_s * round_time_s;
                    } else {
                        let capacity = fleet.device(DeviceId(d)).tier().battery_capacity_j()
                            * config.battery_capacity_scale;
                        shard.soc[j] -= energy_j[i] / capacity;
                    }
                    // Heats for its busy seconds, cools for the idle
                    // remainder of the round.
                    let busy = busy_s[i].min(round_time_s);
                    shard.throttle[j] +=
                        config.heat_per_s * busy - config.cool_per_s * (round_time_s - busy);
                } else {
                    if shard.charging[j] {
                        shard.soc[j] += config.charge_rate_per_s * round_time_s;
                    } else {
                        shard.soc[j] -= config.idle_drain_per_s * round_time_s;
                    }
                    shard.throttle[j] -= config.cool_per_s * round_time_s;
                }
                shard.soc[j] = shard.soc[j].clamp(0.0, 1.0);
                shard.throttle[j] = shard.throttle[j].clamp(0.0, 1.0);
            }
        });
        self.participant_slot = slots;
    }
}

/// What a round context exposes about per-device availability: either the
/// static all-ideal fleet (no storage, no per-round fill) or a borrowed
/// view of the dynamics [`FleetStore`].
///
/// Selectors read eligibility through this view; large-fleet consumers
/// use [`AvailabilityView::bins`] to skip entirely-dark shards without
/// touching their devices.
#[derive(Debug, Clone, Copy)]
pub enum AvailabilityView<'a> {
    /// A static fleet: every device permanently ideal and eligible.
    Ideal {
        /// Fleet size.
        devices: usize,
    },
    /// A live fleet-dynamics store.
    Dynamic(&'a FleetStore),
    /// A network-partition overlay: the base availability (the dynamics
    /// store, or an ideal fleet when `store` is `None`) intersected with
    /// the round's partition reachability
    /// ([`crate::fabric::PartitionSchedule`]). The engine precomputes the
    /// combined mask once per partitioned round; rounds without an active
    /// partition rule use the plain variants above, so the fabric-disabled
    /// path is untouched.
    Masked {
        /// Per-device combined eligibility (base check-in ∧ reachable),
        /// indexed by raw device id.
        eligible: &'a [bool],
        /// Per-shard bins over the combined mask, same geometry as the
        /// base view's bins.
        bins: &'a [ShardBin],
        /// Total combined-eligible devices (Σ `bins[..].eligible`).
        count: usize,
        /// The dynamics store backing availability materialisation;
        /// `None` when the fleet block is disabled.
        store: Option<&'a FleetStore>,
    },
}

impl AvailabilityView<'_> {
    /// Number of devices covered.
    pub fn devices(&self) -> usize {
        match self {
            AvailabilityView::Ideal { devices } => *devices,
            AvailabilityView::Dynamic(store) => store.len(),
            AvailabilityView::Masked { eligible, .. } => eligible.len(),
        }
    }

    /// Whether device `i` passed this round's eligibility check-in.
    #[inline]
    pub fn is_eligible(&self, i: usize) -> bool {
        match self {
            AvailabilityView::Ideal { .. } => true,
            AvailabilityView::Dynamic(store) => store.is_eligible(i),
            AvailabilityView::Masked { eligible, .. } => eligible[i],
        }
    }

    /// Materialises device `i`'s availability. Under a partition mask an
    /// unreachable device reports `eligible: false` (and, with no
    /// dynamics store, `online: false` — the partition is a connectivity
    /// outage) on top of its base state.
    #[inline]
    pub fn get(&self, i: usize) -> DeviceAvailability {
        match self {
            AvailabilityView::Ideal { .. } => DeviceAvailability::ideal(),
            AvailabilityView::Dynamic(store) => store.availability(i),
            AvailabilityView::Masked {
                eligible, store, ..
            } => {
                let mut a = match store {
                    Some(store) => store.availability(i),
                    None => DeviceAvailability::ideal(),
                };
                if !eligible[i] {
                    a.eligible = false;
                    if store.is_none() {
                        a.online = false;
                    }
                }
                a
            }
        }
    }

    /// Check-in-eligible devices this round.
    pub fn eligible_count(&self) -> usize {
        match self {
            AvailabilityView::Ideal { devices } => *devices,
            AvailabilityView::Dynamic(store) => store.eligible_count(),
            AvailabilityView::Masked { count, .. } => *count,
        }
    }

    /// Per-shard availability bins (a single full bin for a static
    /// fleet).
    pub fn bins(&self) -> Vec<ShardBin> {
        match self {
            AvailabilityView::Ideal { devices } => vec![ShardBin {
                offset: 0,
                len: *devices,
                eligible: *devices,
            }],
            AvailabilityView::Dynamic(store) => store.bins(),
            AvailabilityView::Masked { bins, .. } => bins.to_vec(),
        }
    }

    /// Ids of every eligible device, in fleet order. Walks availability
    /// bins and skips shards with no eligible devices, so a mostly-dark
    /// fleet costs much less than a full scan. Shards are scanned in
    /// parallel and their id runs concatenated in shard order — device
    /// ids are integers, so the result is identical to a sequential scan
    /// at any thread count.
    pub fn eligible_ids(&self) -> Vec<DeviceId> {
        match self {
            AvailabilityView::Ideal { devices } => (0..*devices).map(DeviceId).collect(),
            AvailabilityView::Masked {
                eligible,
                bins,
                count,
                ..
            } => {
                let mut ids = Vec::with_capacity(*count);
                for bin in bins.iter() {
                    if bin.eligible == 0 {
                        continue;
                    }
                    for (j, &e) in eligible[bin.offset..bin.offset + bin.len]
                        .iter()
                        .enumerate()
                    {
                        if e {
                            ids.push(DeviceId(bin.offset + j));
                        }
                    }
                }
                ids
            }
            AvailabilityView::Dynamic(store) => {
                let per_shard: Vec<Vec<DeviceId>> = store
                    .shards
                    .par_iter()
                    .map(|shard| {
                        if shard.eligible_count == 0 {
                            return Vec::new();
                        }
                        let mut ids = Vec::with_capacity(shard.eligible_count);
                        for (j, &e) in shard.eligible.iter().enumerate() {
                            if e {
                                ids.push(DeviceId(shard.offset + j));
                            }
                        }
                        ids
                    })
                    .collect();
                let mut ids = Vec::with_capacity(store.eligible_count());
                for mut run in per_shard {
                    ids.append(&mut run);
                }
                ids
            }
        }
    }
}

/// Normalised aggregation weights over the surviving cohort:
/// `w_i = e_i / Σe`, with the last survivor absorbing the floating-point
/// remainder so the weights sum to *exactly* 1.0 (bit-exact), as partial
/// FedAvg reweighting requires.
///
/// `effective` holds each survivor's effective sample mass
/// (`samples × update fraction`) and must be strictly positive.
pub fn survivor_weights(effective: &[f64]) -> Vec<f64> {
    if effective.is_empty() {
        return Vec::new();
    }
    let total: f64 = effective.iter().sum();
    if total <= 0.0 || total.is_nan() {
        // Degenerate cohort: fall back to uniform, same exact-sum rule.
        let n = effective.len();
        let mut w = vec![1.0 / n as f64; n];
        let head: f64 = w[..n - 1].iter().sum();
        w[n - 1] = 1.0 - head;
        return w;
    }
    let mut w: Vec<f64> = effective.iter().map(|e| e / total).collect();
    let head: f64 = w[..w.len() - 1].iter().sum();
    let last = w.len() - 1;
    w[last] = 1.0 - head;
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> Fleet {
        Fleet::custom(
            &[
                (autofl_device::tier::DeviceTier::High, 4),
                (autofl_device::tier::DeviceTier::Mid, 8),
                (autofl_device::tier::DeviceTier::Low, 12),
            ],
            7,
        )
    }

    fn availabilities(store: &FleetStore) -> Vec<DeviceAvailability> {
        (0..store.len()).map(|i| store.availability(i)).collect()
    }

    #[test]
    fn begin_round_is_deterministic_across_threads_and_shards() {
        let cfg = FleetDynamics::realistic();
        let f = fleet();
        let run = |threads: &str, shards: usize| {
            let prev = std::env::var("AUTOFL_THREADS").ok();
            std::env::set_var("AUTOFL_THREADS", threads);
            rayon::refresh_thread_count();
            let mut store = FleetStore::new(&cfg, &f, 42, shards);
            let mut history = Vec::new();
            for round in 0..20 {
                store.begin_round(&cfg, &f, round);
                history.push(availabilities(&store));
            }
            match prev {
                Some(v) => std::env::set_var("AUTOFL_THREADS", v),
                None => std::env::remove_var("AUTOFL_THREADS"),
            }
            rayon::refresh_thread_count();
            history
        };
        let base = run("1", 1);
        for (threads, shards) in [("8", 1), ("1", 4), ("8", 16), ("4", 24)] {
            assert_eq!(
                base,
                run(threads, shards),
                "diverged at threads={threads}, shards={shards}"
            );
        }
    }

    #[test]
    fn bins_partition_the_fleet_and_count_eligibility() {
        let cfg = FleetDynamics::realistic();
        let f = fleet();
        let mut store = FleetStore::new(&cfg, &f, 11, 4);
        let ineligible = store.begin_round(&cfg, &f, 0);
        let bins = store.bins();
        assert_eq!(bins.iter().map(|b| b.len).sum::<usize>(), f.len());
        assert_eq!(
            bins.iter().map(|b| b.eligible).sum::<usize>(),
            f.len() - ineligible
        );
        let view = AvailabilityView::Dynamic(&store);
        let ids = view.eligible_ids();
        assert_eq!(ids.len(), view.eligible_count());
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "fleet order");
        assert!(ids.iter().all(|id| view.is_eligible(id.0)));
    }

    #[test]
    fn ideal_view_reports_everyone_eligible_without_storage() {
        let view = AvailabilityView::Ideal { devices: 5 };
        assert_eq!(view.devices(), 5);
        assert_eq!(view.eligible_count(), 5);
        assert_eq!(view.get(3), DeviceAvailability::ideal());
        assert_eq!(view.eligible_ids().len(), 5);
        assert_eq!(
            view.bins(),
            vec![ShardBin {
                offset: 0,
                len: 5,
                eligible: 5
            }]
        );
    }

    #[test]
    fn sessions_churn_but_most_devices_stay_eligible() {
        let cfg = FleetDynamics::realistic();
        let f = fleet();
        let mut store = FleetStore::new(&cfg, &f, 3, 1);
        let mut ineligible_rounds = 0;
        for round in 0..50 {
            let ineligible = store.begin_round(&cfg, &f, round);
            assert!(ineligible < f.len(), "whole fleet went dark");
            if ineligible > 0 {
                ineligible_rounds += 1;
            }
        }
        assert!(
            ineligible_rounds > 25,
            "realistic dynamics should churn most rounds ({ineligible_rounds}/50)"
        );
    }

    #[test]
    fn battery_death_is_deterministic_and_proportional() {
        let mut cfg = FleetDynamics::realistic();
        cfg.mid_round_drop_prob = 0.0;
        let f = fleet();
        let mut store = FleetStore::new(&cfg, &f, 5, 2);
        let id = DeviceId(0);
        store.shards[0].soc[0] = cfg.reserve_soc + 0.001;
        store.shards[0].charging[0] = false;
        let capacity = f.device(id).tier().battery_capacity_j();
        // Ten times the remaining budget: dies at ~10% of the round.
        let energy = 0.001 * capacity * 10.0;
        let frac = store
            .mid_round_dropout(&cfg, &f, 1, id, energy)
            .expect("must die");
        assert!((frac - 0.1).abs() < 1e-12, "died at {frac}");
        // Plugged in: survives the same round.
        store.shards[0].charging[0] = true;
        assert_eq!(store.mid_round_dropout(&cfg, &f, 1, id, energy), None);
    }

    #[test]
    fn end_round_drains_participants_and_cools_idlers() {
        let mut cfg = FleetDynamics::realistic();
        cfg.charge_prob = 0.0;
        let f = fleet();
        let mut store = FleetStore::new(&cfg, &f, 9, 3);
        for shard in &mut store.shards {
            for j in 0..shard.len() {
                shard.charging[j] = false;
                shard.throttle[j] = 0.5;
                shard.soc[j] = 0.8;
            }
        }
        let id = DeviceId(1);
        let capacity = f.device(id).tier().battery_capacity_j();
        store.end_round(&cfg, &f, 100.0, &[id], &[100.0], &[0.1 * capacity]);
        let trained = store.lifecycle(id.0);
        let idle = store.lifecycle(0);
        assert!(trained.soc < idle.soc, "training drains more than idling");
        assert!(
            trained.throttle > idle.throttle,
            "training heats while idling cools"
        );
        assert!(idle.throttle < 0.5);
    }

    #[test]
    fn end_round_is_shard_invariant() {
        let cfg = FleetDynamics::realistic();
        let f = fleet();
        let run = |shards: usize| {
            let mut store = FleetStore::new(&cfg, &f, 21, shards);
            for round in 0..6 {
                store.begin_round(&cfg, &f, round);
                let participants = [DeviceId(1), DeviceId(9), DeviceId(17)];
                store.end_round(
                    &cfg,
                    &f,
                    120.0,
                    &participants,
                    &[80.0, 110.0, 60.0],
                    &[900.0, 1800.0, 500.0],
                );
            }
            (0..store.len())
                .map(|i| store.lifecycle(i))
                .collect::<Vec<_>>()
        };
        let base = run(1);
        for shards in [2, 4, 16, 24] {
            assert_eq!(base, run(shards), "shards={shards}");
        }
    }

    #[test]
    fn survivor_weights_sum_to_exactly_one() {
        for effective in [
            vec![300.0, 120.0, 77.0],
            vec![1.0],
            vec![0.05, 0.05, 0.9, 1e6],
            vec![3.0; 20],
        ] {
            let w = survivor_weights(&effective);
            assert_eq!(w.len(), effective.len());
            assert!(w.iter().all(|x| *x >= 0.0));
            let sum: f64 = w.iter().sum();
            assert_eq!(sum.to_bits(), 1.0f64.to_bits(), "weights {w:?}");
        }
        assert!(survivor_weights(&[]).is_empty());
    }

    #[test]
    fn straggler_policy_names_and_default() {
        assert_eq!(StragglerPolicy::default(), StragglerPolicy::Drop);
        assert_eq!(StragglerPolicy::Drop.name(), "Drop");
        assert_eq!(
            StragglerPolicy::WaitBounded { grace: 1.5 }.name(),
            "Wait(1.5)"
        );
        assert_eq!(
            StragglerPolicy::OverSelect { extra: 5 }.name(),
            "OverSelect(K+5)"
        );
    }
}

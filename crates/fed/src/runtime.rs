//! Deterministic discrete-event runtime on logical time.
//!
//! The lockstep engine ([`crate::engine`]) advances one full barrier per
//! round: every participant's upload lands at once, and aggregation,
//! lifecycle advancement and feedback happen immediately. This module
//! replays the same per-cohort work as *timestamped events* on a logical
//! clock — device check-in/training/upload durations come from the
//! existing per-device cost model — so the server can aggregate
//! asynchronously, FedBuff-style: updates accumulate in a buffer of size
//! `M` and each is discounted by its staleness (the number of global
//! aggregation steps that happened since its cohort was dispatched) with
//! weight `1 / (1 + staleness)^a`.
//!
//! Two contracts make this safe to adopt incrementally:
//!
//! 1. **Barrier equivalence.** [`AsyncRuntime::barrier`] (buffer = whole
//!    cohort, staleness exponent 0, one cohort in flight) reproduces the
//!    lockstep engine *bit for bit* — same selections, plans, energies,
//!    accuracies and logical times — pinned for every registered policy
//!    in `tests/async_runtime.rs`.
//! 2. **Determinism.** The event loop runs in-process on a
//!    [`std::collections::BinaryHeap`] ordered by `(time, sequence)`;
//!    all stochastic inputs flow through the engine's existing seeded
//!    streams, so the same seed reproduces a run bit for bit at any
//!    `AUTOFL_THREADS` or shard count (see `docs/async-runtime.md`).

use crate::engine::{DispatchOutcome, RoundRecord, SimResult, Simulation};
use crate::observe::RoundObserver;
use crate::selection::{RoundFeedback, Selector};
use autofl_device::fleet::DeviceId;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Configuration of the event-driven asynchronous aggregation runtime.
///
/// Attach one to a simulation with
/// [`crate::builder::SimBuilder::runtime`] (or by setting
/// [`crate::engine::SimConfig::runtime`] on a profile); `None` keeps the
/// classic lockstep loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsyncRuntime {
    /// Server aggregation buffer size `M`: the global model folds in
    /// buffered updates as soon as `M` have arrived. `None` is the full
    /// barrier — each cohort aggregates exactly when its slowest
    /// surviving member finishes, reproducing lockstep FedAvg.
    pub buffer_size: Option<usize>,
    /// Staleness-discount exponent `a` in `1 / (1 + staleness)^a`.
    /// `0.0` weights every update fully regardless of staleness.
    pub staleness_exponent: f64,
    /// Number of cohorts in flight at once. The scheduler keeps this
    /// many dispatched: a new cohort starts the moment one completes.
    /// `1` is sequential dispatch (required for barrier equivalence).
    pub concurrent_cohorts: usize,
}

impl AsyncRuntime {
    /// The full-barrier special case: aggregate each cohort exactly at
    /// its completion event, no staleness discount, one cohort in
    /// flight. Bit-identical to the lockstep engine.
    pub fn barrier() -> Self {
        AsyncRuntime {
            buffer_size: None,
            staleness_exponent: 0.0,
            concurrent_cohorts: 1,
        }
    }

    /// Buffered asynchronous aggregation: fold the global model forward
    /// whenever `buffer_size` updates have arrived, discounting each by
    /// `1 / (1 + staleness)^staleness_exponent`.
    pub fn buffered(buffer_size: usize, staleness_exponent: f64) -> Self {
        AsyncRuntime {
            buffer_size: Some(buffer_size),
            staleness_exponent,
            concurrent_cohorts: 1,
        }
    }

    /// Returns `self` with `cohorts` cohorts kept in flight at once.
    pub fn concurrent_cohorts(mut self, cohorts: usize) -> Self {
        self.concurrent_cohorts = cohorts;
        self
    }
}

/// The staleness discount `1 / (1 + staleness)^exponent` applied to an
/// update that waited `staleness` global aggregation steps in the buffer.
///
/// Exactly `1.0` (not merely approximately) when `staleness == 0` or
/// `exponent == 0.0`, so a fresh update's fraction passes through the
/// multiplication bit-unchanged — the identity the barrier-equivalence
/// contract rests on. Deterministic: a pure function of its arguments.
pub fn staleness_weight(staleness: u64, exponent: f64) -> f64 {
    if staleness == 0 || exponent == 0.0 {
        1.0
    } else {
        (1.0 + staleness as f64).powf(exponent).recip()
    }
}

/// What the scheduler does when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum EventKind {
    /// One participant's update arrives at the server (buffered mode
    /// only; the barrier aggregates whole cohorts at `CohortDone`).
    Upload { round: usize, slot: usize },
    /// A cohort's slowest surviving member finished: close out the
    /// round — aggregate, advance lifecycles, emit the record.
    CohortDone { round: usize },
}

/// A timestamped event. Ordered by `(time, seq)`: `seq` is the global
/// scheduling counter, so simultaneous events fire in the deterministic
/// order they were scheduled (uploads before their cohort's completion).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// A dispatched cohort waiting for its events to fire.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct InFlight {
    /// Logical time the cohort was dispatched.
    dispatch_time_s: f64,
    /// Global aggregation version at dispatch; staleness of this
    /// cohort's updates is measured against it.
    version_at_dispatch: u64,
    /// Sum of the staleness values its aggregated updates carried.
    staleness_sum: f64,
    /// How many of its updates have been folded into the global model.
    aggregated: usize,
    /// The cohort's execution outcome, held until completion.
    outcome: DispatchOutcome,
}

/// One update sitting in the server's aggregation buffer.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct BufferedUpdate {
    round: usize,
    slot: usize,
    id: DeviceId,
    fraction: f64,
}

/// The scheduler state threaded through the event loop.
struct EventLoop {
    rt: AsyncRuntime,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    in_flight: BTreeMap<usize, InFlight>,
    buffer: Vec<BufferedUpdate>,
    /// Global aggregation version: the number of flushes applied so far.
    version: u64,
}

impl EventLoop {
    fn schedule(&mut self, time: f64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Event { time, seq, kind }));
    }

    /// Dispatches cohort `round` at logical time `at`: check-in,
    /// selection and execution run immediately (consuming the engine's
    /// sequential RNG in dispatch order); upload/completion land on the
    /// heap at their cost-model times.
    fn dispatch(
        &mut self,
        sim: &mut Simulation,
        selector: &mut dyn Selector,
        observers: &mut [&mut dyn RoundObserver],
        round: usize,
        at: f64,
    ) -> std::io::Result<()> {
        for obs in observers.iter_mut() {
            obs.on_round_start(round)?;
        }
        let (outcome, _) = sim.dispatch_round(selector, round, None);
        if self.rt.buffer_size.is_some() {
            // Uploads are scheduled before the cohort's completion so
            // an upload tied with CohortDone at the same instant (the
            // slowest survivor's own update) is buffered first.
            for slot in 0..outcome.participants.len() {
                if outcome.fractions[slot] > 0.0 {
                    self.schedule(
                        at + outcome.completion[slot],
                        EventKind::Upload { round, slot },
                    );
                }
            }
        }
        self.schedule(at + outcome.round_time_s, EventKind::CohortDone { round });
        self.in_flight.insert(
            round,
            InFlight {
                dispatch_time_s: at,
                version_at_dispatch: self.version,
                staleness_sum: 0.0,
                aggregated: 0,
                outcome,
            },
        );
        Ok(())
    }

    /// Folds `entries` into the global model as one aggregation step and
    /// returns the new accuracy. Entries are ordered by `(round, slot)`
    /// — dispatch order, never arrival order — so aggregation is
    /// independent of how uploads interleaved on the clock. Always
    /// aggregates, even with zero entries: the surrogate engine draws
    /// from its RNG once per aggregation step (exactly as the lockstep
    /// loop does for a fully-dropped round), and the barrier contract
    /// needs that draw count preserved.
    fn flush(&mut self, sim: &mut Simulation, mut entries: Vec<BufferedUpdate>) -> f64 {
        entries.sort_by_key(|e| (e.round, e.slot));
        let mut ids = Vec::with_capacity(entries.len());
        let mut fractions = Vec::with_capacity(entries.len());
        for e in &entries {
            let fl = self
                .in_flight
                .get_mut(&e.round)
                .expect("buffered update from a cohort not in flight");
            let staleness = self.version - fl.version_at_dispatch;
            fl.staleness_sum += staleness as f64;
            fl.aggregated += 1;
            ids.push(e.id);
            // Both discounts are exactly 1.0 in their disabled cases
            // (fresh update / no fabric), so each multiply passes the
            // fraction through bit-unchanged — the barrier-equivalence
            // and fabric-off contracts rest on this. `codec_fidelity` is
            // read per entry: a mixed flush may span cohorts.
            fractions.push(
                e.fraction
                    * staleness_weight(staleness, self.rt.staleness_exponent)
                    * fl.outcome.codec_fidelity,
            );
        }
        let accuracy = sim.aggregate_update(ids, fractions);
        self.version += 1;
        accuracy
    }
}

/// A resumable event-driven run: the scheduler state of
/// [`run_event_driven`] lifted into a struct that can stop after any
/// emitted record, serialize itself into a checkpoint
/// ([`crate::serve`]), and continue — on this process or a later one —
/// bit-identically to a run that never stopped.
pub(crate) struct EventDrivenRun {
    ev: EventLoop,
    target: f64,
    max_rounds: usize,
    barrier: bool,
    /// Completed records in *emission* order (completion order, not round
    /// order): the order round traces stream in, and therefore the order
    /// a checkpoint must replay them in.
    records: Vec<RoundRecord>,
    next_round: usize,
    dispatching: bool,
}

impl EventDrivenRun {
    /// An empty scheduler for `sim` (nothing dispatched yet). Call
    /// [`EventDrivenRun::prime`] to start a fresh run, or
    /// [`EventDrivenRun::state_restore`] to continue a checkpointed one.
    pub(crate) fn new(sim: &Simulation) -> Self {
        let rt = sim
            .config()
            .runtime
            .expect("EventDrivenRun requires config.runtime");
        EventDrivenRun {
            ev: EventLoop {
                rt,
                heap: BinaryHeap::new(),
                seq: 0,
                in_flight: BTreeMap::new(),
                buffer: Vec::new(),
                version: 0,
            },
            target: sim.config().target(),
            max_rounds: sim.config().max_rounds,
            barrier: rt.buffer_size.is_none(),
            records: Vec::new(),
            next_round: 0,
            dispatching: true,
        }
    }

    /// Primes the pipeline: `concurrent_cohorts` cohorts dispatched at
    /// t = 0 in round order.
    pub(crate) fn prime(
        &mut self,
        sim: &mut Simulation,
        selector: &mut dyn Selector,
        observers: &mut [&mut dyn RoundObserver],
    ) -> std::io::Result<()> {
        let initial = self.ev.rt.concurrent_cohorts.max(1).min(self.max_rounds);
        for _ in 0..initial {
            self.ev
                .dispatch(sim, selector, observers, self.next_round, 0.0)?;
            self.next_round += 1;
        }
        Ok(())
    }

    /// Records emitted so far, in emission order.
    pub(crate) fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Fires events until the next cohort completes and returns its
    /// record (also appended to [`EventDrivenRun::records`]), or `None`
    /// when the run has drained. The state between two `step` calls is
    /// exactly what [`EventDrivenRun::state_snapshot`] captures.
    pub(crate) fn step(
        &mut self,
        sim: &mut Simulation,
        selector: &mut dyn Selector,
        observers: &mut [&mut dyn RoundObserver],
    ) -> std::io::Result<Option<RoundRecord>> {
        while let Some(Reverse(event)) = self.ev.heap.pop() {
            let now = event.time;
            match event.kind {
                EventKind::Upload { round, slot } => {
                    let fl = &self.ev.in_flight[&round];
                    self.ev.buffer.push(BufferedUpdate {
                        round,
                        slot,
                        id: fl.outcome.participants[slot],
                        fraction: fl.outcome.fractions[slot],
                    });
                    if let Some(m) = self.ev.rt.buffer_size {
                        if self.ev.buffer.len() >= m {
                            let entries = std::mem::take(&mut self.ev.buffer);
                            self.ev.flush(sim, entries);
                        }
                    }
                }
                EventKind::CohortDone { round } => {
                    // The closing aggregation step: the cohort's own
                    // survivors under a barrier; everything still buffered
                    // (this cohort's tail plus any other cohort's early
                    // uploads) under buffered aggregation.
                    let entries: Vec<BufferedUpdate> = if self.barrier {
                        let fl = &self.ev.in_flight[&round];
                        fl.outcome
                            .participants
                            .iter()
                            .enumerate()
                            .filter(|(slot, _)| fl.outcome.fractions[*slot] > 0.0)
                            .map(|(slot, &id)| BufferedUpdate {
                                round,
                                slot,
                                id,
                                fraction: fl.outcome.fractions[slot],
                            })
                            .collect()
                    } else {
                        std::mem::take(&mut self.ev.buffer)
                    };
                    let accuracy = self.ev.flush(sim, entries);
                    let fl = self
                        .ev
                        .in_flight
                        .remove(&round)
                        .expect("completed cohort not in flight");
                    let outcome = fl.outcome;
                    let idle_energy =
                        sim.idle_energy_for(&outcome.participants, outcome.round_time_s);
                    sim.end_round_lifecycle(
                        outcome.round_time_s,
                        &outcome.participants,
                        &outcome.completion,
                        &outcome.per_participant_energy,
                    );
                    let mean_staleness = if fl.aggregated > 0 {
                        fl.staleness_sum / fl.aggregated as f64
                    } else {
                        0.0
                    };
                    let idle_per_device = if sim.fleet().len() > outcome.participants.len() {
                        idle_energy / (sim.fleet().len() - outcome.participants.len()) as f64
                    } else {
                        0.0
                    };
                    selector.observe(&RoundFeedback {
                        round,
                        participants: &outcome.participants,
                        per_participant_energy_j: &outcome.per_participant_energy,
                        idle_energy_per_device_j: idle_per_device,
                        global_energy_j: outcome.active_energy_j + idle_energy,
                        round_time_s: outcome.round_time_s,
                        accuracy,
                        prev_accuracy: outcome.prev_accuracy,
                        dropped: &outcome.dropped,
                        dropouts: &outcome.dropouts,
                        mean_staleness,
                        bytes_uplinked: outcome.net.map_or(0, |n| n.bytes_uplinked),
                    });
                    let record = RoundRecord {
                        round,
                        participants: outcome.participants,
                        plans: outcome.plans,
                        round_time_s: outcome.round_time_s,
                        active_energy_j: outcome.active_energy_j,
                        idle_energy_j: idle_energy,
                        accuracy,
                        dropped: outcome.dropped,
                        update_fractions: outcome.fractions,
                        dropouts: outcome.dropouts,
                        ineligible: outcome.ineligible,
                        dispatch_time_s: fl.dispatch_time_s,
                        logical_time_s: now,
                        mean_staleness,
                        net: outcome.net,
                        adversarial: outcome.adversarial,
                        flagged: outcome.flagged,
                    };
                    for obs in observers.iter_mut() {
                        obs.on_round_end(&record)?;
                    }
                    if record.accuracy >= self.target {
                        // Stop dispatching; cohorts already in flight
                        // drain to completion so no consumed device work
                        // is lost.
                        self.dispatching = false;
                    }
                    self.records.push(record.clone());
                    if self.dispatching && self.next_round < self.max_rounds {
                        self.ev
                            .dispatch(sim, selector, observers, self.next_round, now)?;
                        self.next_round += 1;
                    }
                    return Ok(Some(record));
                }
            }
        }
        Ok(None)
    }

    /// Finishes the run: sorts the emitted records by round (cohorts can
    /// complete out of dispatch order; reports and sinks expect
    /// round-ordered records — logical times stay monotone in
    /// `logical_time_s`, not in round index) and wraps them in a
    /// [`SimResult`].
    pub(crate) fn into_result(self, policy: String) -> SimResult {
        let mut records = self.records;
        records.sort_by_key(|r| r.round);
        SimResult {
            policy,
            target_accuracy: self.target,
            records,
        }
    }

    /// Serializes the full scheduler state — pending events in pop
    /// order, in-flight cohorts (with their execution outcomes), the
    /// aggregation buffer and version, the dispatch cursor, and every
    /// record emitted so far (in emission order, so a resumed trace
    /// replays byte-identically).
    pub(crate) fn state_snapshot(&self) -> serde::Value {
        let mut events: Vec<&Event> = self.ev.heap.iter().map(|Reverse(e)| e).collect();
        events.sort_by(|a, b| a.time.total_cmp(&b.time).then_with(|| a.seq.cmp(&b.seq)));
        let in_flight: Vec<serde::Value> = self
            .ev
            .in_flight
            .iter()
            .map(|(round, fl)| {
                serde::Value::Map(vec![
                    ("round".to_string(), round.to_value()),
                    ("state".to_string(), fl.to_value()),
                ])
            })
            .collect();
        serde::Value::Map(vec![
            ("seq".to_string(), self.ev.seq.to_value()),
            ("version".to_string(), self.ev.version.to_value()),
            ("events".to_string(), events.to_value()),
            ("in_flight".to_string(), serde::Value::Seq(in_flight)),
            ("buffer".to_string(), self.ev.buffer.to_value()),
            ("records".to_string(), self.records.to_value()),
            ("next_round".to_string(), self.next_round.to_value()),
            ("dispatching".to_string(), self.dispatching.to_value()),
        ])
    }

    /// Restores the state captured by
    /// [`EventDrivenRun::state_snapshot`] onto a fresh
    /// [`EventDrivenRun::new`] for the same config. Do *not* call
    /// [`EventDrivenRun::prime`] afterwards: the snapshot's cohorts are
    /// already dispatched.
    pub(crate) fn state_restore(&mut self, value: &serde::Value) -> Result<(), serde::Error> {
        fn field<T: Deserialize>(value: &serde::Value, name: &str) -> Result<T, serde::Error> {
            T::from_value(serde::field_or_null(value, name)).map_err(|e| e.at(name))
        }
        self.ev.seq = field(value, "seq")?;
        self.ev.version = field(value, "version")?;
        let events: Vec<Event> = field(value, "events")?;
        self.ev.heap = events.into_iter().map(Reverse).collect();
        self.ev.in_flight = match serde::field_or_null(value, "in_flight") {
            serde::Value::Seq(items) => items
                .iter()
                .map(|item| {
                    Ok((
                        field::<usize>(item, "round")?,
                        field::<InFlight>(item, "state")?,
                    ))
                })
                .collect::<Result<BTreeMap<usize, InFlight>, serde::Error>>()
                .map_err(|e| e.at("in_flight"))?,
            other => return Err(serde::Error::invalid_type("sequence", other).at("in_flight")),
        };
        self.ev.buffer = field(value, "buffer")?;
        self.records = field(value, "records")?;
        self.next_round = field(value, "next_round")?;
        self.dispatching = field(value, "dispatching")?;
        Ok(())
    }
}

/// Runs `sim` to convergence (or `max_rounds` dispatches) through the
/// event-driven scheduler. Called by [`Simulation::run`] and friends when
/// [`crate::engine::SimConfig::runtime`] is set.
pub(crate) fn run_event_driven(
    sim: &mut Simulation,
    selector: &mut dyn Selector,
    policy: String,
    observers: &mut [&mut dyn RoundObserver],
) -> std::io::Result<SimResult> {
    let mut run = EventDrivenRun::new(sim);
    run.prime(sim, selector, observers)?;
    while run.step(sim, selector, observers)?.is_some() {}
    let result = run.into_result(policy);
    if result.converged() {
        for obs in observers.iter_mut() {
            obs.on_converged(&result)?;
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staleness_weight_is_exactly_one_when_fresh_or_flat() {
        for exponent in [0.0, 0.3, 1.0, 2.5] {
            assert_eq!(staleness_weight(0, exponent).to_bits(), 1.0f64.to_bits());
        }
        for staleness in [0u64, 1, 5, 1000] {
            assert_eq!(staleness_weight(staleness, 0.0).to_bits(), 1.0f64.to_bits());
        }
    }

    #[test]
    fn staleness_weight_decays_monotonically() {
        let mut prev = staleness_weight(0, 0.5);
        for s in 1..20 {
            let w = staleness_weight(s, 0.5);
            assert!(w < prev, "weight must strictly decay at staleness {s}");
            assert!(w > 0.0);
            prev = w;
        }
    }

    #[test]
    fn events_order_by_time_then_sequence() {
        let mut heap = BinaryHeap::new();
        let k = EventKind::CohortDone { round: 0 };
        for (time, seq) in [(2.0, 0), (1.0, 2), (1.0, 1), (3.0, 3)] {
            heap.push(Reverse(Event { time, seq, kind: k }));
        }
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop().map(|Reverse(e)| e.seq)).collect();
        assert_eq!(order, vec![1, 2, 0, 3]);
    }

    #[test]
    fn barrier_constructor_is_the_lockstep_special_case() {
        let rt = AsyncRuntime::barrier();
        assert_eq!(rt.buffer_size, None);
        assert_eq!(rt.staleness_exponent, 0.0);
        assert_eq!(rt.concurrent_cohorts, 1);
        let buffered = AsyncRuntime::buffered(8, 0.5).concurrent_cohorts(3);
        assert_eq!(buffered.buffer_size, Some(8));
        assert_eq!(buffered.concurrent_cohorts, 3);
    }
}

//! # autofl-fed
//!
//! The federated-learning framework substrate of the AutoFL reproduction:
//!
//! * [`global`] — the `(B, E, K)` parameter sets S1–S4 (Table 5).
//! * [`clusters`] — the characterization compositions C0–C7 (Table 4).
//! * [`algorithms`] — FedAvg plus the comparators FedProx, FedNova, FEDL,
//!   the Byzantine-robust aggregators (coordinate-wise median, trimmed
//!   mean, Krum) behind the [`algorithms::Aggregator`] trait, and the
//!   exact-summation hierarchical aggregation path
//!   ([`algorithms::AggregationAlgorithm::aggregate_sharded`]).
//! * [`adversary`] — opt-in adversarial fleet roles (label-flipping
//!   poisoners, scaled-gradient attackers, free-riders, faulty sensors)
//!   on dedicated tagged RNG streams, countered by the robust
//!   aggregators.
//! * [`selection`] — the [`selection::Selector`] trait, the
//!   Random/Performance/Power baselines, and the deterministic partial
//!   top-K primitive ([`selection::top_k_by`]).
//! * [`oracle`] — the `O_participant` and `O_FL` oracles.
//! * [`accuracy`] — real-training and surrogate accuracy engines.
//! * [`estimate`] — round-level time/energy estimation (Eqs. 5–6 inputs).
//! * [`fleet`] — stochastic fleet dynamics (battery, thermal, churn,
//!   mid-round dropout) stored in the sharded structure-of-arrays
//!   [`fleet::FleetStore`], the straggler policies
//!   (`Drop`/`WaitBounded`/`OverSelect`) the engine pairs them with, and
//!   the [`fleet::AvailabilityView`] selectors read eligibility through.
//! * [`engine`] — the round simulator with straggler handling and energy
//!   accounting, producing [`engine::SimResult`]s whose `ppw_*` ratios are
//!   the paper's reported numbers.
//! * [`runtime`] — the deterministic discrete-event scheduler on logical
//!   time: FedBuff-style buffered aggregation with staleness-weighted
//!   updates ([`runtime::AsyncRuntime`]), whose full-barrier special case
//!   reproduces the lockstep engine bit for bit.
//! * [`fabric`] — the opt-in network fabric between dispatch and
//!   aggregation: per-device link latency/loss on tagged RNG streams,
//!   scripted [`fabric::PartitionSchedule`]s, and communication-efficient
//!   [`fabric::UpdateCodec`]s (top-k, int8/QSGD, periodic full-sync) with
//!   exact byte accounting wired into the Eq. 3 comm-energy path.
//!
//! The experiment-facing API layers on top:
//!
//! * [`builder`] — fluent, validating [`builder::SimBuilder`]
//!   construction (`Simulation::builder(workload)…build()`).
//! * [`policy`] — the open [`policy::Policy`] trait and the name-addressed
//!   [`policy::PolicyRegistry`] of baselines.
//! * [`observe`] — [`observe::RoundObserver`] hooks with CSV/JSONL sinks
//!   and live progress.
//! * [`spec`] — declarative, serde-backed [`spec::ExperimentSpec`] files.
//! * [`mod@serve`] — the checkpoint/resume experiment daemon: a queue of spec
//!   files streamed to JSONL traces with bit-identical crash recovery,
//!   plus per-round convergence control ([`serve::ConvergenceController`])
//!   driving [`policy::Policy::tune`] toward an energy budget or accuracy
//!   floor.
//!
//! # Examples
//!
//! ```
//! use autofl_fed::engine::Simulation;
//! use autofl_fed::global::GlobalParams;
//! use autofl_fed::policy::{baseline_registry, run_policy};
//! use autofl_nn::zoo::Workload;
//!
//! let config = Simulation::builder(Workload::TinyTest)
//!     .devices(12)
//!     .params(GlobalParams::new(8, 1, 4))
//!     .samples_per_device(24)
//!     .test_samples(48)
//!     .max_rounds(60)
//!     .seed(1)
//!     .build_config()
//!     .expect("valid configuration");
//! let registry = baseline_registry();
//! let result = run_policy(&config, registry.expect("FedAvg-Random"));
//! assert!(result.final_accuracy() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accuracy;
pub mod adversary;
pub mod algorithms;
pub mod builder;
pub mod clusters;
pub mod engine;
pub mod estimate;
pub mod fabric;
pub mod fleet;
pub mod global;
pub mod observe;
pub mod oracle;
pub mod policy;
pub mod runtime;
pub mod selection;
pub mod serve;
pub mod spec;

pub use adversary::{AdversaryConfig, AdversaryRole};
pub use algorithms::{
    AggregationAlgorithm, Aggregator, ExactF32Sum, KrumAggregator, LinearAggregator,
    MedianAggregator, TrimmedMeanAggregator,
};
pub use builder::{ConfigError, SimBuilder};
pub use clusters::CharacterizationCluster;
pub use engine::{Fidelity, RoundRecord, SimConfig, SimResult, Simulation};
pub use fabric::{
    CodecSpec, IdentityCodec, Int8Quant, LinkModel, NetworkFabric, PartitionRule,
    PartitionSchedule, PeriodicFullSync, RoundNetStats, TopK, TopKInt8, UpdateCodec,
};
pub use fleet::{
    survivor_weights, AvailabilityView, DeviceAvailability, FleetDynamics, FleetState, FleetStore,
    ShardBin, StragglerPolicy,
};
pub use global::GlobalParams;
pub use observe::{CsvSink, JsonlSink, Progress, RoundObserver};
pub use oracle::OracleSelector;
pub use policy::{
    baseline_registry, run_policy, run_policy_observed, ClusterPolicy, OraclePolicy, Policy,
    PolicyRegistry, RandomPolicy, TunedPolicy,
};
pub use runtime::{staleness_weight, AsyncRuntime};
pub use selection::{
    top_k_by, ClusterSelector, RandomSelector, RoundContext, RoundFeedback, SelectionDecision,
    Selector,
};
pub use serve::{
    serve, Controlled, ControllerState, ConvergeTarget, ConvergenceController, ExperimentRun,
    ServeError, ServeOptions, ServeReport, UnitSummary,
};
pub use spec::{ExperimentSpec, SpecError, SpecRun};

//! # autofl-fed
//!
//! The federated-learning framework substrate of the AutoFL reproduction:
//!
//! * [`global`] — the `(B, E, K)` parameter sets S1–S4 (Table 5).
//! * [`clusters`] — the characterization compositions C0–C7 (Table 4).
//! * [`algorithms`] — FedAvg plus the comparators FedProx, FedNova, FEDL.
//! * [`selection`] — the [`selection::Selector`] trait and the
//!   Random/Performance/Power baselines.
//! * [`oracle`] — the `O_participant` and `O_FL` oracles.
//! * [`accuracy`] — real-training and surrogate accuracy engines.
//! * [`estimate`] — round-level time/energy estimation (Eqs. 5–6 inputs).
//! * [`engine`] — the round simulator with straggler handling and energy
//!   accounting, producing [`engine::SimResult`]s whose `ppw_*` ratios are
//!   the paper's reported numbers.
//!
//! # Examples
//!
//! ```
//! use autofl_fed::engine::{SimConfig, Simulation};
//! use autofl_fed::selection::RandomSelector;
//!
//! let mut sim = Simulation::new(SimConfig::tiny_test(1));
//! let result = sim.run(&mut RandomSelector::new());
//! assert!(result.final_accuracy() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accuracy;
pub mod algorithms;
pub mod clusters;
pub mod engine;
pub mod estimate;
pub mod global;
pub mod oracle;
pub mod selection;

pub use algorithms::AggregationAlgorithm;
pub use clusters::CharacterizationCluster;
pub use engine::{Fidelity, RoundRecord, SimConfig, SimResult, Simulation};
pub use global::GlobalParams;
pub use oracle::OracleSelector;
pub use selection::{
    ClusterSelector, RandomSelector, RoundContext, RoundFeedback, SelectionDecision, Selector,
};

//! FL global parameters `(B, E, K)` — Table 5 of the paper.

use serde::{Deserialize, Serialize};

/// The FL service's global parameters, fixed for the lifetime of a use
/// case: mini-batch size `B`, local epochs `E`, and participants per round
/// `K`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GlobalParams {
    /// Local mini-batch size `B`.
    pub batch_size: usize,
    /// Local epochs per round `E`.
    pub local_epochs: usize,
    /// Participants per round `K`.
    pub num_participants: usize,
}

impl Default for GlobalParams {
    /// The paper's most-used setting, S3 (`B=16, E=5, K=20`).
    fn default() -> Self {
        GlobalParams::s3()
    }
}

impl GlobalParams {
    /// Creates a parameter set.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(batch_size: usize, local_epochs: usize, num_participants: usize) -> Self {
        assert!(
            batch_size > 0 && local_epochs > 0 && num_participants > 0,
            "global parameters must be positive"
        );
        GlobalParams {
            batch_size,
            local_epochs,
            num_participants,
        }
    }

    /// Table 5, setting S1: `B=32, E=10, K=20`.
    pub fn s1() -> Self {
        GlobalParams::new(32, 10, 20)
    }

    /// Table 5, setting S2: `B=32, E=5, K=20`.
    pub fn s2() -> Self {
        GlobalParams::new(32, 5, 20)
    }

    /// Table 5, setting S3: `B=16, E=5, K=20`.
    pub fn s3() -> Self {
        GlobalParams::new(16, 5, 20)
    }

    /// Table 5, setting S4: `B=16, E=5, K=10`.
    pub fn s4() -> Self {
        GlobalParams::new(16, 5, 10)
    }

    /// All four Table 5 settings with their labels.
    pub fn paper_settings() -> [(&'static str, GlobalParams); 4] {
        [
            ("S1", GlobalParams::s1()),
            ("S2", GlobalParams::s2()),
            ("S3", GlobalParams::s3()),
            ("S4", GlobalParams::s4()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_settings() {
        assert_eq!(GlobalParams::s1(), GlobalParams::new(32, 10, 20));
        assert_eq!(GlobalParams::s2(), GlobalParams::new(32, 5, 20));
        assert_eq!(GlobalParams::s3(), GlobalParams::new(16, 5, 20));
        assert_eq!(GlobalParams::s4(), GlobalParams::new(16, 5, 10));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_k() {
        let _ = GlobalParams::new(16, 5, 0);
    }
}

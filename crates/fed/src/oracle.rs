//! The oracle baselines `O_participant` and `O_FL` (Section 5.1).
//!
//! Both oracles see the *current round's* true device conditions and the
//! data partition — information a deployed policy would have to learn —
//! and optimise over the Table 4 composition space:
//!
//! * [`OracleSelector::participant`] (`O_participant`): the best cluster of
//!   `K` participants given heterogeneity and runtime variance, trained at
//!   CPU-max like every other baseline.
//! * [`OracleSelector::full`] (`O_FL`): additionally assigns each selected
//!   device the energy-minimal execution target and DVFS step that still
//!   meets the round's pace, exploiting straggler slack.

use crate::clusters::CharacterizationCluster;
use crate::estimate::estimate_round;
use crate::selection::{top_k_by, RoundContext, SelectionDecision, Selector};
use autofl_device::cost::{execute, ExecutionPlan};
use autofl_device::dvfs::{DvfsTable, ExecutionTarget};
use autofl_device::fleet::DeviceId;
use autofl_device::tier::DeviceTier;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

/// An oracle policy with perfect knowledge of round conditions.
#[derive(Debug, Clone)]
pub struct OracleSelector {
    optimize_targets: bool,
    label: &'static str,
}

impl OracleSelector {
    /// `O_participant`: oracle participant selection, CPU-max execution.
    pub fn participant() -> Self {
        OracleSelector {
            optimize_targets: false,
            label: "O_participant",
        }
    }

    /// `O_FL`: oracle participants plus per-device execution targets and
    /// DVFS settings.
    pub fn full() -> Self {
        OracleSelector {
            optimize_targets: true,
            label: "O_FL",
        }
    }

    /// Ranks the best `k` of a tier's devices for this round: fastest
    /// expected completion first, with non-IID (low class coverage)
    /// devices pushed back.
    ///
    /// Scores are computed once per device (`O(N)` cost-model calls) and
    /// the ranking is a deterministic partial top-`k`
    /// ([`top_k_by`], `O(N + K log K)`): no composition ever takes more
    /// than `k` devices from one tier, so the full-pool sort this used to
    /// do was wasted work at fleet scale. Ties (identical scores) keep
    /// the shuffled order, exactly as the previous stable sort did.
    fn rank_tier(
        ctx: &RoundContext<'_>,
        tier: DeviceTier,
        k: usize,
        rng: &mut SmallRng,
    ) -> Vec<DeviceId> {
        let mut pool = ctx.eligible_ids_of_tier(tier);
        // Random tie-break order first (the paper randomises among equals
        // to avoid biased selection).
        pool.shuffle(rng);
        let classes = ctx.partition.num_classes() as f64;
        let score = |id: &DeviceId| -> f64 {
            let cost = execute(
                tier,
                ExecutionPlan::cpu_max(tier),
                ctx.task_for(*id),
                &ctx.conditions.get(id.0),
            );
            let samples = ctx.partition.device_sample_count(id.0).max(1) as f64;
            let coverage = ctx.partition.num_classes_present(id.0) as f64 / classes;
            let skew = ctx.partition.device_divergence(id.0);
            // Time per useful sample: devices with little or skewed data
            // contribute less convergence per second, so normalising by
            // sample count keeps the oracle from "winning" rounds with
            // data-starved non-IID devices; label skew adds client drift.
            cost.total_time_s() / samples * (1.0 + 2.0 * (1.0 - coverage) + skew)
        };
        let mut scored: Vec<(DeviceId, f64, usize)> = pool
            .iter()
            .enumerate()
            .map(|(pos, id)| (*id, score(id), pos))
            .collect();
        top_k_by(&mut scored, k, |a, b| {
            a.1.partial_cmp(&b.1)
                .expect("finite scores")
                .then_with(|| a.2.cmp(&b.2))
        });
        scored.into_iter().map(|(id, _, _)| id).collect()
    }

    /// Picks the energy-minimal `(target, step)` whose completion stays
    /// within `deadline_s`; falls back to CPU-max.
    fn best_plan(ctx: &RoundContext<'_>, id: DeviceId, deadline_s: f64) -> ExecutionPlan {
        let tier = ctx.fleet.device(id).tier();
        let task = ctx.task_for(id);
        let mut best = ExecutionPlan::cpu_max(tier);
        let mut best_energy = f64::INFINITY;
        for target in ExecutionTarget::all() {
            let table = DvfsTable::for_tier(tier, target);
            for step in 1..=table.num_steps() {
                let plan = ExecutionPlan {
                    target,
                    freq_step: step,
                };
                let cost = execute(tier, plan, task, &ctx.conditions.get(id.0));
                if cost.total_time_s() <= deadline_s && cost.total_energy_j() < best_energy {
                    best_energy = cost.total_energy_j();
                    best = plan;
                }
            }
        }
        if best_energy.is_infinite() {
            // Nothing meets the deadline; run as fast as possible on the
            // least-bad target.
            let cpu = execute(
                tier,
                ExecutionPlan::cpu_max(tier),
                task,
                &ctx.conditions.get(id.0),
            );
            let gpu_table = DvfsTable::for_tier(tier, ExecutionTarget::Gpu);
            let gpu_plan = ExecutionPlan {
                target: ExecutionTarget::Gpu,
                freq_step: gpu_table.num_steps(),
            };
            let gpu = execute(tier, gpu_plan, task, &ctx.conditions.get(id.0));
            if gpu.total_time_s() < cpu.total_time_s() {
                return gpu_plan;
            }
        }
        best
    }
}

impl Selector for OracleSelector {
    fn select(&mut self, ctx: &RoundContext<'_>, rng: &mut SmallRng) -> SelectionDecision {
        let k = ctx.params.num_participants;
        let ranked: Vec<(DeviceTier, Vec<DeviceId>)> = DeviceTier::all()
            .into_iter()
            .map(|t| (t, Self::rank_tier(ctx, t, k, rng)))
            .collect();

        // Evaluate every Table 4 composition with the best devices of each
        // tier and pick the one minimising estimated energy-to-converge.
        let mut best: Option<(f64, Vec<DeviceId>)> = None;
        for cluster in CharacterizationCluster::fixed() {
            let (h, m, l) = cluster.composition(k).expect("fixed cluster");
            let mut participants = Vec::with_capacity(k);
            for (tier, want) in [
                (DeviceTier::High, h),
                (DeviceTier::Mid, m),
                (DeviceTier::Low, l),
            ] {
                let pool = &ranked
                    .iter()
                    .find(|(t, _)| *t == tier)
                    .expect("ranked all tiers")
                    .1;
                participants.extend(pool.iter().copied().take(want));
            }
            if participants.len() < k {
                continue; // fleet cannot realise this composition
            }
            let plans: Vec<ExecutionPlan> = participants
                .iter()
                .map(|id| ExecutionPlan::cpu_max(ctx.fleet.device(*id).tier()))
                .collect();
            let tasks: Vec<_> = participants.iter().map(|id| ctx.task_for(*id)).collect();
            let est = estimate_round(ctx.fleet, &participants, &plans, &tasks, ctx.conditions);
            let ids: Vec<usize> = participants.iter().map(|id| id.0).collect();
            let coverage = ctx.partition.cohort_class_coverage(&ids);
            let divergence = ctx.partition.cohort_divergence(&ids);
            // Client drift of the candidate cohort: individually-skewed
            // members slow or stall convergence, so a composition that can
            // draw flatter devices (even from slower tiers) may beat the
            // energy-optimal one — the paper's "optimal cluster shifts
            // with data heterogeneity".
            let member_div = ids
                .iter()
                .map(|&d| ctx.partition.device_divergence(d))
                .sum::<f64>()
                / ids.len().max(1) as f64;
            let drift = (member_div / 2.0) * (1.0 - 0.35 * (1.0 - divergence / 2.0));
            // Steep: a composition that stalls convergence is useless no
            // matter how little energy its rounds draw.
            let drift_factor =
                (1.0 - 20.0 * (drift - crate::accuracy::DRIFT_KNEE).max(0.0)).max(0.05);
            let quality =
                (coverage * coverage * (1.0 - divergence / 2.0).max(0.05) * drift_factor).max(0.01);
            // Energy to converge ∝ per-round energy / convergence quality.
            let score = est.global_energy_j() / quality;
            if best.as_ref().map(|(s, _)| score < *s).unwrap_or(true) {
                best = Some((score, participants));
            }
        }
        let participants = best.map(|(_, p)| p).unwrap_or_else(|| {
            let mut ids = ctx.eligible_ids();
            ids.shuffle(rng);
            ids.truncate(k);
            ids
        });

        if !self.optimize_targets {
            return SelectionDecision::cpu_max(ctx.fleet, participants);
        }

        // O_FL: exploit straggler slack — the slowest CPU-max participant
        // sets the pace; everyone else slows down or switches target to
        // save energy while staying within that pace.
        let pace = participants
            .iter()
            .map(|id| {
                execute(
                    ctx.fleet.device(*id).tier(),
                    ExecutionPlan::cpu_max(ctx.fleet.device(*id).tier()),
                    ctx.task_for(*id),
                    &ctx.conditions.get(id.0),
                )
                .total_time_s()
            })
            .fold(0.0f64, f64::max);
        let plans: Vec<ExecutionPlan> = participants
            .iter()
            .map(|id| Self::best_plan(ctx, *id, pace))
            .collect();
        SelectionDecision {
            participants,
            plans,
        }
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulation};
    use crate::selection::RandomSelector;
    use autofl_data::partition::DataDistribution;
    use autofl_device::scenario::VarianceScenario;
    use autofl_nn::zoo::Workload;

    fn short_cfg() -> SimConfig {
        let mut cfg = SimConfig::paper_default(Workload::CnnMnist);
        cfg.max_rounds = 120;
        cfg
    }

    #[test]
    fn oracle_beats_random_on_global_ppw() {
        let oracle = Simulation::new(short_cfg()).run(&mut OracleSelector::participant());
        let random = Simulation::new(short_cfg()).run(&mut RandomSelector::new());
        assert!(
            oracle.ppw_global() > 1.5 * random.ppw_global(),
            "oracle {} vs random {}",
            oracle.ppw_global(),
            random.ppw_global()
        );
    }

    #[test]
    fn ofl_is_at_least_as_energy_efficient_as_oparticipant() {
        let part = Simulation::new(short_cfg()).run(&mut OracleSelector::participant());
        let full = Simulation::new(short_cfg()).run(&mut OracleSelector::full());
        assert!(
            full.ppw_local() >= part.ppw_local() * 0.98,
            "O_FL local {} vs O_participant {}",
            full.ppw_local(),
            part.ppw_local()
        );
    }

    #[test]
    fn oracle_avoids_non_iid_devices() {
        let mut cfg = short_cfg();
        cfg.distribution = DataDistribution::non_iid_percent(50);
        cfg.max_rounds = 40;
        let mut sim = Simulation::new(cfg);
        let mut oracle = OracleSelector::participant();
        let rec = sim.run_round(&mut oracle, 0);
        let partition = sim.data().partition.clone();
        let non_iid_selected = rec
            .participants
            .iter()
            .filter(|id| partition.is_non_iid(id.0))
            .count();
        assert!(
            non_iid_selected <= rec.participants.len() / 3,
            "{} of {} selected were non-IID",
            non_iid_selected,
            rec.participants.len()
        );
    }

    #[test]
    fn ofl_downclocks_fast_devices_under_variance() {
        let mut cfg = short_cfg();
        cfg.scenario = VarianceScenario::with_interference();
        let mut sim = Simulation::new(cfg);
        let mut ofl = OracleSelector::full();
        let mut saw_non_max = false;
        for round in 0..5 {
            let rec = sim.run_round(&mut ofl, round);
            for (id, plan) in rec.participants.iter().zip(&rec.plans) {
                let tier = sim.fleet().device(*id).tier();
                let table = DvfsTable::for_tier(tier, plan.target);
                if plan.freq_step < table.num_steps() || plan.target == ExecutionTarget::Gpu {
                    saw_non_max = true;
                }
            }
        }
        assert!(saw_non_max, "O_FL never used DVFS slack or the GPU");
    }
}

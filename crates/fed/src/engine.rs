//! The FL simulation engine: rounds, straggler handling, energy accounting
//! and convergence metrics.

use crate::accuracy::{
    AccuracyEngine, CohortStats, ConvergenceProfile, RealTrainingEngine, SurrogateEngine,
};
use crate::adversary::{adv_stream, AdversaryConfig, AdversaryRole};
use crate::algorithms::AggregationAlgorithm;
use crate::estimate::participant_costs;
use crate::fabric::{NetworkFabric, RoundNetStats, UpdateCodec};
use crate::fleet::{AvailabilityView, FleetDynamics, FleetStore, ShardBin, StragglerPolicy};
use crate::global::GlobalParams;
use crate::selection::{RoundContext, RoundFeedback, SelectionDecision, Selector};
use autofl_data::partition::DataDistribution;
use autofl_data::FlData;
use autofl_device::cost::{ExecutionPlan, TrainingTask};
use autofl_device::fleet::{DeviceId, Fleet};
use autofl_device::idle_energy_j;
use autofl_device::scenario::VarianceScenario;
use autofl_device::store::ConditionsStore;
use autofl_device::tier::DeviceTier;
use autofl_nn::zoo::Workload;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which accuracy engine drives convergence.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Fidelity {
    /// Calibrated learning-curve surrogate (fast; used by figure sweeps).
    #[default]
    Surrogate,
    /// Real training of the scaled-down model (ground truth; slower).
    RealTraining {
        /// Client SGD learning rate.
        lr: f32,
        /// Max test samples used per evaluation.
        eval_samples: usize,
    },
}

/// Full configuration of one simulated FL deployment.
///
/// Prefer building configurations through [`Simulation::builder`] (or the
/// `tiny_test`/`smoke`/`paper_default` profiles): the builder validates
/// before the engine runs, and spec files deserialize straight into this
/// type. Struct-literal construction is considered an internal detail of
/// this crate and may lose field-by-field stability in a future release.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The FL use case.
    pub workload: Workload,
    /// `(B, E, K)`.
    pub params: GlobalParams,
    /// Data heterogeneity scenario.
    pub distribution: DataDistribution,
    /// Runtime-variance scenario.
    pub scenario: VarianceScenario,
    /// Stochastic fleet dynamics (battery, thermal, churn, mid-round
    /// dropout and the straggler policy). `None` — the default — keeps
    /// the fleet static and reproduces pre-dynamics runs bit for bit.
    pub fleet: Option<FleetDynamics>,
    /// Event-driven asynchronous aggregation
    /// ([`crate::runtime::AsyncRuntime`]). `None` — the default — runs
    /// the classic lockstep round loop; `Some(AsyncRuntime::barrier())`
    /// routes through the discrete-event scheduler and reproduces the
    /// lockstep engine bit for bit (see `docs/async-runtime.md`).
    /// Deserializes to `None` when absent from serialized specs, so
    /// pre-runtime spec files keep loading.
    pub runtime: Option<crate::runtime::AsyncRuntime>,
    /// Network fabric between dispatch and aggregation: per-device link
    /// latency/loss, scripted partitions and update codecs
    /// ([`crate::fabric`]). `None` — the default — bypasses every fabric
    /// code path and reproduces pre-fabric runs bit for bit. Deserializes
    /// to `None` when absent from serialized specs.
    pub network: Option<NetworkFabric>,
    /// Adversarial fleet roles (label-flipping poisoners, scaled-gradient
    /// attackers, free-riders, faulty sensors — [`crate::adversary`]).
    /// `None` — the default — bypasses every adversary code path and
    /// reproduces honest-fleet runs bit for bit. Deserializes to `None`
    /// when absent from serialized specs.
    pub adversary: Option<AdversaryConfig>,
    /// Aggregation algorithm.
    pub algorithm: AggregationAlgorithm,
    /// Accuracy engine.
    pub fidelity: Fidelity,
    /// Fleet size `N`.
    pub num_devices: usize,
    /// Number of contiguous device shards the per-device stores (and the
    /// hierarchical aggregation tree) are split into. Purely a layout /
    /// parallelism / topology knob: results are bit-identical at every
    /// value (clamped to `[1, N]`). Rule of thumb for large fleets:
    /// a few shards per worker thread (see `docs/scaling.md`).
    pub shards: usize,
    /// Mean local training samples per device.
    pub samples_per_device: usize,
    /// Held-out test samples.
    pub test_samples: usize,
    /// Round deadline as a multiple of the cohort's median completion
    /// time; participants beyond it are stragglers.
    pub straggler_deadline_factor: f64,
    /// Convergence threshold; `None` uses the workload profile's target.
    pub target_accuracy: Option<f64>,
    /// Maximum rounds to simulate.
    pub max_rounds: usize,
    /// Master seed.
    pub seed: u64,
}

impl SimConfig {
    /// A paper-shaped configuration: 200 devices, S3 parameters, FedAvg,
    /// ideal IID data, calm runtime, surrogate accuracy.
    pub fn paper_default(workload: Workload) -> Self {
        SimConfig {
            workload,
            params: GlobalParams::s3(),
            distribution: DataDistribution::IidIdeal,
            scenario: VarianceScenario::calm(),
            fleet: None,
            runtime: None,
            network: None,
            adversary: None,
            algorithm: AggregationAlgorithm::FedAvg,
            fidelity: Fidelity::Surrogate,
            num_devices: 200,
            shards: 1,
            samples_per_device: 300,
            test_samples: 512,
            straggler_deadline_factor: 2.0,
            target_accuracy: None,
            max_rounds: 1000,
            seed: 42,
        }
    }

    /// A miniature configuration for fast tests: few devices, tiny
    /// workload data, short horizon.
    pub fn tiny_test(seed: u64) -> Self {
        SimConfig {
            workload: Workload::TinyTest,
            params: GlobalParams::new(8, 1, 4),
            distribution: DataDistribution::IidIdeal,
            scenario: VarianceScenario::calm(),
            fleet: None,
            runtime: None,
            network: None,
            adversary: None,
            algorithm: AggregationAlgorithm::FedAvg,
            fidelity: Fidelity::Surrogate,
            num_devices: 12,
            shards: 1,
            samples_per_device: 24,
            test_samples: 48,
            straggler_deadline_factor: 2.0,
            target_accuracy: None,
            max_rounds: 60,
            seed,
        }
    }

    /// A reduced smoke profile: paper-shaped behaviour (same 15/35/50%
    /// tier mix, S3 parameters, surrogate accuracy, CNN-MNIST) at a
    /// fraction of the fleet and horizon, so end-to-end checks finish in
    /// well under a second. Deterministic in `seed`.
    pub fn smoke(seed: u64) -> Self {
        SimConfig {
            num_devices: 40,
            samples_per_device: 120,
            test_samples: 256,
            max_rounds: 250,
            seed,
            ..Self::paper_default(Workload::CnnMnist)
        }
    }

    /// The effective convergence target.
    pub fn target(&self) -> f64 {
        self.target_accuracy
            .unwrap_or_else(|| ConvergenceProfile::for_workload(self.workload).target_accuracy)
    }
}

/// Everything measured in one aggregation round.
///
/// Serialization is hand-written (not derived) with one quirk: the
/// opt-in subsystem fields — `net` (network fabric) and
/// `adversarial`/`flagged` (adversary roles) — are *omitted*, not
/// `null`, when their subsystem is off, so subsystem-less round traces
/// stay byte-identical to earlier releases (pinned by the golden
/// `smoke_trace.jsonl`). Absent fields deserialize to `None`, so older
/// traces keep loading.
#[derive(Debug, Clone)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: usize,
    /// Selected participants.
    pub participants: Vec<DeviceId>,
    /// Execution plans, aligned with `participants`.
    pub plans: Vec<ExecutionPlan>,
    /// Wall-clock duration of the round in seconds.
    pub round_time_s: f64,
    /// Active energy of participants in joules.
    pub active_energy_j: f64,
    /// Idle energy of non-participants in joules.
    pub idle_energy_j: f64,
    /// Test accuracy after aggregation.
    pub accuracy: f64,
    /// Participants dropped as stragglers (FedAvg) this round.
    pub dropped: Vec<DeviceId>,
    /// Fraction of nominal work each participant's aggregated update
    /// represents (0 for dropped participants and dropouts).
    pub update_fractions: Vec<f64>,
    /// Participants that vanished mid-round (battery death or
    /// connectivity churn); disjoint from `dropped`. Empty unless
    /// [`SimConfig::fleet`] dynamics are enabled.
    pub dropouts: Vec<DeviceId>,
    /// Devices that failed the eligibility check-in before selection.
    pub ineligible: usize,
    /// Logical time at which this round's cohort was dispatched, in
    /// simulated seconds since the start of the run. Under the lockstep
    /// loop this is the cumulative duration of all earlier rounds; under
    /// the event-driven runtime it is the scheduler clock at dispatch.
    pub dispatch_time_s: f64,
    /// Logical time at which this round's cohort completed (its record
    /// was emitted): `dispatch_time_s + round_time_s`. Monotone across
    /// rounds under the lockstep loop; under the event-driven runtime
    /// with concurrent cohorts, completion order may differ from
    /// dispatch order.
    pub logical_time_s: f64,
    /// Mean staleness (in aggregation versions) of this cohort's updates
    /// at the moment they were aggregated. Always 0 under the lockstep
    /// loop and the full-barrier runtime with one cohort in flight.
    pub mean_staleness: f64,
    /// Network-fabric accounting (bytes, drops, partitions). `Some` iff
    /// [`SimConfig::network`] is attached.
    pub net: Option<RoundNetStats>,
    /// Number of *adversarial* devices (any non-honest role) among this
    /// round's participants. `Some` iff [`SimConfig::adversary`] is
    /// attached; omitted from serialized records when `None`, so
    /// adversary-less traces stay byte-identical to earlier releases.
    pub adversarial: Option<usize>,
    /// Number of adversarial updates the server-side defenses neutralised
    /// this round: free-riders' zero-mass updates always count; poisoners
    /// and scalers count iff the configured aggregator has positive
    /// [`AggregationAlgorithm::poison_robustness`]. `Some` iff
    /// [`SimConfig::adversary`] is attached; omitted when `None`.
    pub flagged: Option<usize>,
}

impl Serialize for RoundRecord {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("round".to_string(), self.round.to_value()),
            ("participants".to_string(), self.participants.to_value()),
            ("plans".to_string(), self.plans.to_value()),
            ("round_time_s".to_string(), self.round_time_s.to_value()),
            (
                "active_energy_j".to_string(),
                self.active_energy_j.to_value(),
            ),
            ("idle_energy_j".to_string(), self.idle_energy_j.to_value()),
            ("accuracy".to_string(), self.accuracy.to_value()),
            ("dropped".to_string(), self.dropped.to_value()),
            (
                "update_fractions".to_string(),
                self.update_fractions.to_value(),
            ),
            ("dropouts".to_string(), self.dropouts.to_value()),
            ("ineligible".to_string(), self.ineligible.to_value()),
            (
                "dispatch_time_s".to_string(),
                self.dispatch_time_s.to_value(),
            ),
            ("logical_time_s".to_string(), self.logical_time_s.to_value()),
            ("mean_staleness".to_string(), self.mean_staleness.to_value()),
        ];
        if let Some(net) = &self.net {
            fields.push(("net".to_string(), net.to_value()));
        }
        if let Some(adversarial) = &self.adversarial {
            fields.push(("adversarial".to_string(), adversarial.to_value()));
        }
        if let Some(flagged) = &self.flagged {
            fields.push(("flagged".to_string(), flagged.to_value()));
        }
        serde::Value::Map(fields)
    }
}

impl Deserialize for RoundRecord {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        fn field<T: Deserialize>(value: &serde::Value, name: &str) -> Result<T, serde::Error> {
            T::from_value(serde::field_or_null(value, name)).map_err(|e| e.at(name))
        }
        Ok(RoundRecord {
            round: field(value, "round")?,
            participants: field(value, "participants")?,
            plans: field(value, "plans")?,
            round_time_s: field(value, "round_time_s")?,
            active_energy_j: field(value, "active_energy_j")?,
            idle_energy_j: field(value, "idle_energy_j")?,
            accuracy: field(value, "accuracy")?,
            dropped: field(value, "dropped")?,
            update_fractions: field(value, "update_fractions")?,
            dropouts: field(value, "dropouts")?,
            ineligible: field(value, "ineligible")?,
            dispatch_time_s: field(value, "dispatch_time_s")?,
            logical_time_s: field(value, "logical_time_s")?,
            mean_staleness: field(value, "mean_staleness")?,
            net: field(value, "net")?,
            adversarial: field(value, "adversarial")?,
            flagged: field(value, "flagged")?,
        })
    }
}

impl RoundRecord {
    /// Total energy of the round (Eq. 6).
    pub fn total_energy_j(&self) -> f64 {
        self.active_energy_j + self.idle_energy_j
    }

    /// Participants whose updates were aggregated (positive update
    /// fraction), in participant order.
    pub fn survivors(&self) -> Vec<DeviceId> {
        self.participants
            .iter()
            .zip(&self.update_fractions)
            .filter(|(_, &f)| f > 0.0)
            .map(|(id, _)| *id)
            .collect()
    }
}

/// Aggregated result of a simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Policy that produced the run.
    pub policy: String,
    /// The convergence target used.
    pub target_accuracy: f64,
    /// Per-round records.
    pub records: Vec<RoundRecord>,
}

impl SimResult {
    /// First round (0-based) whose accuracy reached the target.
    pub fn converged_round(&self) -> Option<usize> {
        self.records
            .iter()
            .position(|r| r.accuracy >= self.target_accuracy)
    }

    /// Whether the run reached the target within the horizon.
    pub fn converged(&self) -> bool {
        self.converged_round().is_some()
    }

    /// Simulated seconds until convergence (or the whole run if it never
    /// converged).
    pub fn time_to_target_s(&self) -> f64 {
        let upto = self
            .converged_round()
            .map(|r| r + 1)
            .unwrap_or(self.records.len());
        self.records[..upto].iter().map(|r| r.round_time_s).sum()
    }

    /// Total energy in joules until convergence (or the whole run).
    pub fn energy_to_target_j(&self) -> f64 {
        let upto = self
            .converged_round()
            .map(|r| r + 1)
            .unwrap_or(self.records.len());
        self.records[..upto]
            .iter()
            .map(|r| r.total_energy_j())
            .sum()
    }

    /// Active (participant-side) energy until convergence.
    pub fn local_energy_to_target_j(&self) -> f64 {
        let upto = self
            .converged_round()
            .map(|r| r + 1)
            .unwrap_or(self.records.len());
        self.records[..upto].iter().map(|r| r.active_energy_j).sum()
    }

    /// Final test accuracy.
    pub fn final_accuracy(&self) -> f64 {
        self.records.last().map(|r| r.accuracy).unwrap_or(0.0)
    }

    /// Best accuracy seen.
    pub fn best_accuracy(&self) -> f64 {
        self.records.iter().map(|r| r.accuracy).fold(0.0, f64::max)
    }

    /// Convergence progress in `[0, 1]`: best accuracy relative to target.
    pub fn progress(&self) -> f64 {
        (self.best_accuracy() / self.target_accuracy).min(1.0)
    }

    /// Global performance-per-watt figure of merit: progress per joule of
    /// cluster energy. Ratios of this quantity are the paper's "PPW
    /// improvement" numbers; non-converged runs are penalised through both
    /// lower progress and the full-horizon energy.
    pub fn ppw_global(&self) -> f64 {
        self.progress() / self.energy_to_target_j().max(1e-9)
    }

    /// Local performance-per-watt: progress per joule of participant
    /// (active) energy.
    pub fn ppw_local(&self) -> f64 {
        self.progress() / self.local_energy_to_target_j().max(1e-9)
    }

    /// Mean round time in seconds over the effective horizon.
    pub fn mean_round_time_s(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let upto = self
            .converged_round()
            .map(|r| r + 1)
            .unwrap_or(self.records.len());
        self.records[..upto]
            .iter()
            .map(|r| r.round_time_s)
            .sum::<f64>()
            / upto as f64
    }
}

/// Reusable per-round working memory. Everything here is overwritten at
/// the start of (or during) each round, so holding it on the
/// [`Simulation`] turns per-round `Vec` rebuilds into amortised-free
/// buffer reuse — the round hot loop allocates only what escapes into the
/// returned [`RoundRecord`].
#[derive(Debug, Default)]
struct RoundScratch {
    /// Per-device sampled conditions (sharded structure-of-arrays),
    /// indexed by raw device id.
    conditions: ConditionsStore,
    /// Per-participant training tasks.
    tasks: Vec<TrainingTask>,
    /// Fleet-sized participant membership mask.
    is_participant: Vec<bool>,
    /// Per-device tiers, one byte-sized entry per device in fleet order.
    /// Filled once on first use: the idle-energy scan walks this compact
    /// array instead of re-reading whole `Device` structs every round.
    tiers: Vec<DeviceTier>,
    /// Sort buffer for the median.
    median: Vec<f64>,
    /// Fleet-sized reachability mask under active network partitions
    /// (eligible *and* not partitioned). Only touched when a fabric with
    /// an active partition rule is attached.
    reachable: Vec<bool>,
    /// Shard bins with per-bin eligible counts recomputed under the
    /// partition mask, backing [`AvailabilityView::Masked`].
    masked_bins: Vec<ShardBin>,
    /// The conditions devices *report* to the server — the true sampled
    /// conditions with faulty sensors' lies overlaid. Selection (and the
    /// AutoFL state bins) read this store; cost execution keeps reading
    /// the true conditions. Only touched when an adversary config with
    /// faulty sensors is attached.
    reported: ConditionsStore,
    /// Per-participant adversary roles, in participant order. Only
    /// touched when an adversary config is attached.
    roles: Vec<AdversaryRole>,
}

/// Everything a dispatched cohort carries between check-in/execution
/// ([`Simulation::dispatch_round`]) and the aggregation + lifecycle +
/// feedback steps that complete it. The lockstep loop completes a cohort
/// immediately; the event-driven runtime ([`crate::runtime`]) holds the
/// outcome in flight until its scheduled upload/completion events fire.
/// Serializable so a checkpoint ([`crate::serve`]) can capture cohorts
/// that are in flight when the process dies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct DispatchOutcome {
    /// Devices excluded from this round's pool by fleet dynamics.
    pub ineligible: usize,
    /// Global accuracy at dispatch time (before this cohort aggregates).
    pub prev_accuracy: f64,
    /// The selected cohort, in selection order.
    pub participants: Vec<DeviceId>,
    /// Per-participant execution plans.
    pub plans: Vec<ExecutionPlan>,
    /// Per-participant completion times (deadline-clamped, dropout-truncated).
    pub completion: Vec<f64>,
    /// Per-participant surviving update fractions (0 = no update).
    pub fractions: Vec<f64>,
    /// Per-participant active energy actually burned.
    pub per_participant_energy: Vec<f64>,
    /// Participants cut at the straggler deadline with no update.
    pub dropped: Vec<DeviceId>,
    /// Participants lost mid-round to battery death or churn.
    pub dropouts: Vec<DeviceId>,
    /// Cohort makespan: the slowest surviving completion time.
    pub round_time_s: f64,
    /// Total active energy across the cohort.
    pub active_energy_j: f64,
    /// Network-fabric accounting; `Some` iff a fabric is attached.
    pub net: Option<RoundNetStats>,
    /// The codec's surrogate update-quality multiplier for this round.
    /// Exactly `1.0` without a fabric (or on full-sync rounds), so
    /// multiplying update fractions by it is bit-exact a no-op.
    pub codec_fidelity: f64,
    /// Adversarial participants this round; `Some` iff an adversary
    /// config is attached (see [`RoundRecord::adversarial`]).
    pub adversarial: Option<usize>,
    /// Neutralised adversarial updates; `Some` iff an adversary config
    /// is attached (see [`RoundRecord::flagged`]).
    pub flagged: Option<usize>,
}

/// The simulation: owns the fleet, the data, the accuracy engine and the
/// per-round stochastic state.
pub struct Simulation {
    config: SimConfig,
    fleet: Fleet,
    data: FlData,
    engine: Box<dyn AccuracyEngine>,
    rng: SmallRng,
    scratch: RoundScratch,
    /// Per-device lifecycle state; `Some` iff `config.fleet` is enabled.
    fleet_state: Option<FleetStore>,
    /// Logical clock in simulated seconds: the cumulative duration of
    /// every completed round (the lockstep counterpart of the event
    /// scheduler's clock).
    clock_s: f64,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("workload", &self.config.workload.name())
            .field("devices", &self.fleet.len())
            .finish()
    }
}

impl Simulation {
    /// Starts a validating [`crate::builder::SimBuilder`] from the
    /// paper-shaped defaults for `workload` — the supported way to
    /// configure an experiment.
    ///
    /// # Examples
    ///
    /// ```
    /// use autofl_fed::engine::Simulation;
    /// use autofl_fed::selection::RandomSelector;
    /// use autofl_nn::zoo::Workload;
    ///
    /// let mut sim = Simulation::builder(Workload::CnnMnist)
    ///     .devices(1_000)   // the paper's 15/35/50% tier mix at any N
    ///     .shards(4)        // layout/parallelism only: results are bit-identical
    ///     .samples_per_device(16)
    ///     .max_rounds(3)
    ///     .target_accuracy(1.1)
    ///     .seed(42)
    ///     .build()
    ///     .expect("a consistent configuration");
    /// let result = sim.run(&mut RandomSelector::new());
    /// assert_eq!(result.records.len(), 3);
    /// ```
    ///
    /// Inconsistent configurations are rejected with a typed
    /// [`crate::builder::ConfigError`] instead of panicking inside the
    /// engine:
    ///
    /// ```
    /// use autofl_fed::builder::ConfigError;
    /// use autofl_fed::engine::Simulation;
    /// use autofl_nn::zoo::Workload;
    ///
    /// let err = Simulation::builder(Workload::CnnMnist)
    ///     .shards(0)
    ///     .build_config()
    ///     .unwrap_err();
    /// assert_eq!(err, ConfigError::NoShards);
    /// ```
    pub fn builder(workload: Workload) -> crate::builder::SimBuilder {
        crate::builder::SimBuilder::new(workload)
    }

    /// Builds a simulation from a configuration (deterministic in
    /// `config.seed`).
    pub fn new(config: SimConfig) -> Self {
        let fleet = if config.num_devices == 200 {
            Fleet::paper_fleet(config.seed)
        } else {
            // Keep the paper's 15/35/50% tier mix at any scale.
            let h = (config.num_devices * 15 / 100).max(1);
            let l = (config.num_devices * 50 / 100).max(1);
            let m = config.num_devices - h - l;
            Fleet::custom(
                &[
                    (autofl_device::tier::DeviceTier::High, h),
                    (autofl_device::tier::DeviceTier::Mid, m),
                    (autofl_device::tier::DeviceTier::Low, l),
                ],
                config.seed,
            )
        };
        // The surrogate engine never touches sample features — only the
        // partition statistics — so surrogate runs build a labels-only
        // dataset. At a million devices this is the difference between
        // megabytes and many gigabytes of synthetic pixels (and the
        // labels, hence the partition, are identical either way).
        let data = match config.fidelity {
            Fidelity::Surrogate => FlData::generate_stats_only(
                config.workload,
                config.num_devices,
                config.samples_per_device,
                config.test_samples,
                config.distribution,
                config.seed,
            ),
            Fidelity::RealTraining { .. } => FlData::generate(
                config.workload,
                config.num_devices,
                config.samples_per_device,
                config.test_samples,
                config.distribution,
                config.seed,
            ),
        };
        let engine: Box<dyn AccuracyEngine> = match config.fidelity {
            Fidelity::Surrogate => Box::new(SurrogateEngine::new(
                config.workload,
                config.algorithm,
                (config.params.num_participants * config.samples_per_device) as f64,
                config.params.local_epochs as f64,
                config.seed ^ 0xacc,
            )),
            Fidelity::RealTraining { lr, eval_samples } => Box::new(RealTrainingEngine::new(
                config.workload,
                data.clone(),
                config.algorithm,
                lr,
                eval_samples,
                config.seed,
                config.shards,
                config.network.as_ref().map(|f| f.build_codec()),
                config.adversary,
            )),
        };
        let rng = SmallRng::seed_from_u64(config.seed ^ 0x51b);
        let fleet_state = config.fleet.as_ref().map(|dynamics| {
            FleetStore::new(dynamics, &fleet, config.seed ^ 0xf1ee7, config.shards)
        });
        Simulation {
            config,
            fleet,
            data,
            engine,
            rng,
            scratch: RoundScratch::default(),
            fleet_state,
            clock_s: 0.0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The fleet.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The federated dataset.
    pub fn data(&self) -> &FlData {
        &self.data
    }

    /// Approximate heap bytes held by the per-device round stores (the
    /// conditions store plus, under fleet dynamics, the lifecycle
    /// store). The `fig_scale` bench reports this as the memory-footprint
    /// proxy where `/proc/self/status` is unavailable; it deliberately
    /// excludes the dataset and fleet, whose sizes are layout-independent.
    pub fn store_bytes(&self) -> usize {
        self.scratch.conditions.size_bytes()
            + self
                .fleet_state
                .as_ref()
                .map(|s| s.size_bytes())
                .unwrap_or(0)
    }

    /// Current global accuracy.
    pub fn accuracy(&self) -> f64 {
        self.engine.accuracy()
    }

    /// Runs one aggregation round under `selector` and returns its record.
    pub fn run_round(&mut self, selector: &mut dyn Selector, round: usize) -> RoundRecord {
        self.run_round_shadowed(selector, round, None).0
    }

    /// Like [`Simulation::run_round`], but additionally asks `shadow` what
    /// it *would* have decided for the same round context, without
    /// executing it. Used to measure prediction accuracy against the
    /// oracle (Figure 12).
    pub fn run_round_shadowed(
        &mut self,
        selector: &mut dyn Selector,
        round: usize,
        shadow: Option<&mut dyn Selector>,
    ) -> (RoundRecord, Option<SelectionDecision>) {
        let (outcome, shadow_decision) = self.dispatch_round(selector, round, shadow);
        let idle_energy = self.idle_energy_for(&outcome.participants, outcome.round_time_s);

        // Aggregate: update global accuracy from the surviving cohort
        // (every update at staleness 0 — the lockstep loop aggregates a
        // round the instant it completes).
        let survivors: Vec<DeviceId> = outcome
            .participants
            .iter()
            .zip(&outcome.fractions)
            .filter(|(_, &f)| f > 0.0)
            .map(|(id, _)| *id)
            .collect();
        // The codec's surrogate fidelity scales the surviving update
        // fractions at the aggregation input (and only there — records
        // report raw fractions): a lossy uplink contributes a slightly
        // weaker update. Exactly 1.0 without a fabric, so the multiply is
        // a bit-exact pass-through.
        let survivor_fractions: Vec<f64> = outcome
            .fractions
            .iter()
            .copied()
            .filter(|&f| f > 0.0)
            .map(|f| f * outcome.codec_fidelity)
            .collect();
        let accuracy = self.aggregate_update(survivors, survivor_fractions);

        self.end_round_lifecycle(
            outcome.round_time_s,
            &outcome.participants,
            &outcome.completion,
            &outcome.per_participant_energy,
        );

        // Feed the outcome back to learning selectors.
        let idle_per_device = if self.fleet.len() > outcome.participants.len() {
            idle_energy / (self.fleet.len() - outcome.participants.len()) as f64
        } else {
            0.0
        };
        selector.observe(&RoundFeedback {
            round,
            participants: &outcome.participants,
            per_participant_energy_j: &outcome.per_participant_energy,
            idle_energy_per_device_j: idle_per_device,
            global_energy_j: outcome.active_energy_j + idle_energy,
            round_time_s: outcome.round_time_s,
            accuracy,
            prev_accuracy: outcome.prev_accuracy,
            dropped: &outcome.dropped,
            dropouts: &outcome.dropouts,
            mean_staleness: 0.0,
            bytes_uplinked: outcome.net.map_or(0, |n| n.bytes_uplinked),
        });

        let dispatch_time_s = self.clock_s;
        let logical_time_s = dispatch_time_s + outcome.round_time_s;
        self.clock_s = logical_time_s;
        let record = RoundRecord {
            round,
            participants: outcome.participants,
            plans: outcome.plans,
            round_time_s: outcome.round_time_s,
            active_energy_j: outcome.active_energy_j,
            idle_energy_j: idle_energy,
            accuracy,
            dropped: outcome.dropped,
            update_fractions: outcome.fractions,
            dropouts: outcome.dropouts,
            ineligible: outcome.ineligible,
            dispatch_time_s,
            logical_time_s,
            mean_staleness: 0.0,
            net: outcome.net,
            adversarial: outcome.adversarial,
            flagged: outcome.flagged,
        };
        (record, shadow_decision)
    }

    /// Check-in, selection and execution of one cohort — everything up to
    /// (but not including) aggregation, lifecycle advancement and
    /// feedback, which the lockstep loop performs immediately and the
    /// event-driven runtime (`crate::runtime`) defers to scheduled
    /// events. Both drivers call this in strictly increasing dispatch
    /// order, so the sequential engine RNG consumes draws identically.
    pub(crate) fn dispatch_round(
        &mut self,
        selector: &mut dyn Selector,
        round: usize,
        mut shadow: Option<&mut dyn Selector>,
    ) -> (DispatchOutcome, Option<SelectionDecision>) {
        // 0. Fleet dynamics: evolve per-device lifecycle sessions
        // (charging, foreground, connectivity) shard-parallel and refresh
        // the stored availability. Disabled dynamics report every device
        // as ideal through a storage-free view, reproducing the static
        // fleet bit for bit.
        let ineligible = match (&self.config.fleet, &mut self.fleet_state) {
            (Some(dynamics), Some(store)) => store.begin_round(dynamics, &self.fleet, round),
            _ => 0,
        };

        // 1. Sample per-device runtime conditions into the sharded
        // structure-of-arrays store — in parallel, each device on its own
        // RNG stream derived from (seed, round, id), so the sample is
        // independent of thread count, shard count and fleet iteration
        // order. Thermal throttle levels carried by the lifecycle store
        // are overlaid on top (a per-shard array copy).
        let cond_seed = round_stream_seed(self.config.seed, round);
        self.scratch
            .conditions
            .reshape(self.fleet.len(), self.config.shards);
        self.config
            .scenario
            .sample_into(&self.fleet, cond_seed, &mut self.scratch.conditions);
        if let Some(store) = &self.fleet_state {
            store.overlay_throttle(&mut self.scratch.conditions);
        }
        // 1c. Faulty sensors lie to the server: the conditions *reported*
        // to selection (and through it the AutoFL state bins) are
        // overwritten with an always-healthy fabrication drawn on the
        // device's `(seed, TAG_ADV, round + 1, id)` stream, while the
        // true sampled conditions keep driving cost execution below.
        // Without faulty sensors the reported store is never built and
        // selection reads the true store directly.
        let lying_sensors = self
            .config
            .adversary
            .as_ref()
            .is_some_and(|a| a.faulty_sensor_fraction > 0.0);
        if lying_sensors {
            let adv = self.config.adversary.as_ref().expect("lying_sensors");
            self.scratch.reported.clone_from(&self.scratch.conditions);
            for id in 0..self.fleet.len() {
                if adv.role_of(self.config.seed, id) == AdversaryRole::FaultySensor {
                    let mut rng = adv_stream(self.config.seed, round, id);
                    let lie = AdversaryConfig::corrupt_report(&mut rng);
                    self.scratch.reported.set(id, &lie);
                }
            }
        }
        let base_availability = match &self.fleet_state {
            Some(store) => AvailabilityView::Dynamic(store),
            None => AvailabilityView::Ideal {
                devices: self.fleet.len(),
            },
        };
        // 1b. Scripted network partitions: devices inside an active rule
        // cannot reach the server this round, so they fail check-in on
        // top of whatever the fleet dynamics decided. Rounds without an
        // active rule (and every run without a fabric) use the base view
        // untouched — no mask is built, no allocation happens.
        let partition_active = self
            .config
            .network
            .as_ref()
            .is_some_and(|f| f.partitions.is_active(round));
        let mut partitioned = 0usize;
        let availability = if partition_active {
            let fabric = self.config.network.as_ref().expect("partition_active");
            self.scratch.reachable.clear();
            self.scratch.reachable.resize(self.fleet.len(), false);
            self.scratch.masked_bins.clear();
            self.scratch.masked_bins.extend(base_availability.bins());
            let mut count = 0usize;
            for bin in &mut self.scratch.masked_bins {
                let mut eligible_in_bin = 0usize;
                for j in 0..bin.len {
                    let id = bin.offset + j;
                    let ok = base_availability.is_eligible(id)
                        && !fabric.partitions.unreachable(round, id);
                    self.scratch.reachable[id] = ok;
                    eligible_in_bin += ok as usize;
                }
                bin.eligible = eligible_in_bin;
                count += eligible_in_bin;
            }
            partitioned = base_availability.eligible_count() - count;
            AvailabilityView::Masked {
                eligible: &self.scratch.reachable,
                bins: &self.scratch.masked_bins,
                count,
                store: self.fleet_state.as_ref(),
            }
        } else {
            base_availability
        };

        // 2. Ask the policy for participants + execution plans. Under
        // OverSelect the context advertises K + extra so every policy
        // over-provisions without knowing about the straggler layer.
        // The advertisement is clamped to the round's *eligible* pool:
        // validation already rejects K + extra > N, so the fleet size
        // never binds, but under dynamics fewer than K + extra devices
        // may have checked in — advertising more than the pool holds
        // would promise a cohort no policy can realise (and skew
        // learning selectors that scale rewards by the advertised K).
        let prev_accuracy = self.engine.accuracy();
        let params = match self.config.fleet.as_ref().map(|f| f.straggler) {
            Some(StragglerPolicy::OverSelect { extra }) => {
                let mut p = self.config.params;
                p.num_participants = p
                    .num_participants
                    .saturating_add(extra)
                    .min(availability.eligible_count());
                p
            }
            _ => self.config.params,
        };
        let ctx = RoundContext {
            round,
            fleet: &self.fleet,
            conditions: if lying_sensors {
                &self.scratch.reported
            } else {
                &self.scratch.conditions
            },
            availability,
            partition: &self.data.partition,
            params: &params,
            workload: self.config.workload,
            layer_counts: self.config.workload.reference_layer_counts(),
            prev_accuracy,
        };
        let SelectionDecision {
            participants,
            plans,
        } = selector.select(&ctx, &mut self.rng);
        assert_eq!(participants.len(), plans.len(), "selector plan mismatch");
        // Per-participant adversary roles — a pure function of
        // `(seed, device)`, so any thread or shard count computes the
        // same assignment. Empty (and never read) without an adversary.
        self.scratch.roles.clear();
        if let Some(adv) = &self.config.adversary {
            self.scratch.roles.extend(
                participants
                    .iter()
                    .map(|id| adv.role_of(self.config.seed, id.0)),
            );
        }
        let shadow_decision = shadow.as_mut().map(|s| {
            // The shadow gets its own tagged RNG stream (TAG_SHADOW in
            // the (seed, tag, round, id) discipline of
            // docs/determinism.md) so it cannot perturb the main run's
            // determinism and never collides with another stream across
            // (seed, round) pairs.
            let mut shadow_rng =
                SmallRng::seed_from_u64(crate::fleet::shadow_stream_seed(self.config.seed, round));
            s.select(&ctx, &mut shadow_rng)
        });
        // Task construction is two field reads per participant; the heavy
        // per-device work (cost execution) fans out inside estimate_round.
        self.scratch.tasks.clear();
        self.scratch
            .tasks
            .extend(participants.iter().map(|id| ctx.task_for(*id)));
        // 2b. Fabric codec: the uplink carries the *encoded* update, so
        // the communication time/energy path (Eq. 3) prices the exact
        // encoded byte count and compression savings flow into PPW.
        let codec: Option<Box<dyn UpdateCodec>> =
            self.config.network.as_ref().map(|f| f.build_codec());
        let model_params = (self.config.workload.reference_model_bytes() / 4) as usize;
        let encoded_bytes = codec.as_ref().map(|c| c.encoded_bytes(model_params, round));
        let codec_fidelity = codec.as_ref().map_or(1.0, |c| c.fidelity(round));
        if let Some(bytes) = encoded_bytes {
            for task in &mut self.scratch.tasks {
                task.upload_bytes = bytes;
            }
        }

        // 3. Execute: per-device costs (parallel fan-out), straggler
        // deadline, drops/partials. The engine reduces times and energies
        // itself with deadline clamping, so it asks only for the
        // per-participant costs — not estimate_round's idle sweep.
        let costs = participant_costs(
            &self.fleet,
            &participants,
            &plans,
            &self.scratch.tasks,
            &self.scratch.conditions,
        );
        let mut completion: Vec<f64> = costs.iter().map(|c| c.total_time_s()).collect();
        // 3a. Free-riders skip local training entirely: their round is
        // pure communication (they still download the model and upload a
        // zero-work update), so their completion time — and, in step 4,
        // their energy — is comm-only. Applied before the link-latency
        // draw and the deadline median, exactly like fast compute.
        if self.config.adversary.is_some() {
            for (i, c) in completion.iter_mut().enumerate() {
                if self.scratch.roles[i] == AdversaryRole::FreeRider {
                    *c = costs[i].comm_time_s;
                }
            }
        }
        // 3b. Fabric link: per-participant latency and loss drawn on the
        // tagged `(seed, TAG_NET, round, id)` streams of
        // `docs/determinism.md`. Latency lands in the completion time
        // *before* the median, so a slow link makes a straggler exactly
        // like slow compute does; the loss coin is applied after the
        // mid-round dropouts below.
        let mut net_lost: Vec<bool> = Vec::new();
        if let Some(fabric) = self.config.network.as_ref() {
            net_lost.resize(participants.len(), false);
            for (i, id) in participants.iter().enumerate() {
                let mut link_rng = crate::fabric::net_stream(self.config.seed, round, id.0);
                let weak = self.scratch.conditions.get(id.0).network.signal
                    == autofl_device::network::SignalStrength::Weak;
                let draw = fabric
                    .link
                    .draw(self.fleet.device(*id).tier(), weak, &mut link_rng);
                completion[i] += draw.latency_s;
                net_lost[i] = draw.dropped;
            }
        }
        // The deadline is *projected*: the median of the completion times
        // the server estimates at dispatch, before any mid-round dropout
        // truncates a device's actual runtime. This is deliberate — a
        // real server sets the round deadline when it hands out work and
        // cannot foresee that a device will die at 10% of the round, so
        // a dropout still contributes its full projected time to the
        // median. Pinned by `deadline_is_projected_not_truncated_by_dropouts`.
        let mut deadline = median_into(&mut self.scratch.median, &completion)
            * self.config.straggler_deadline_factor;
        if let Some(StragglerPolicy::WaitBounded { grace }) =
            self.config.fleet.as_ref().map(|f| f.straggler)
        {
            // Bounded waiting: the server holds the round open longer
            // before cutting stragglers.
            deadline *= grace;
        }
        let accepts_partial = self.config.algorithm.accepts_partial_updates();
        let mut dropped = Vec::new();
        let mut dropouts = Vec::new();
        let mut fractions = vec![1.0f64; participants.len()];
        // Share of the full-round energy each participant actually burned
        // (1.0 unless it left early or was cut at the deadline).
        let mut energy_shares = vec![1.0f64; participants.len()];
        let mut is_dropout = vec![false; participants.len()];
        // (a) Mid-round dropouts: battery death or connectivity churn
        // removes the update entirely; the device still burned energy for
        // the fraction of the round it survived.
        if let (Some(dynamics), Some(state)) = (&self.config.fleet, &self.fleet_state) {
            for i in 0..participants.len() {
                if let Some(frac) = state.mid_round_dropout(
                    dynamics,
                    &self.fleet,
                    round,
                    participants[i],
                    costs[i].total_energy_j(),
                ) {
                    fractions[i] = 0.0;
                    energy_shares[i] = frac;
                    completion[i] *= frac;
                    is_dropout[i] = true;
                    dropouts.push(participants[i]);
                }
            }
        }
        // (c) Fabric message loss: the device trained and transmitted —
        // full energy, full completion time — but its upload was lost on
        // the wire, so it contributes no update. Routed through the
        // dropout path so downstream accounting (records, feedback,
        // lifecycle) needs no new case; devices that already died
        // mid-round never transmitted, so their loss coin is moot.
        let mut net_drops = 0usize;
        for i in 0..net_lost.len() {
            if net_lost[i] && !is_dropout[i] {
                fractions[i] = 0.0;
                is_dropout[i] = true;
                dropouts.push(participants[i]);
                net_drops += 1;
            } else {
                net_lost[i] = false;
            }
        }
        // (b) Straggler deadline over the devices that are still there.
        for i in 0..completion.len() {
            if is_dropout[i] {
                // A dropout never gates the round past the deadline.
                completion[i] = completion[i].min(deadline);
                continue;
            }
            let t = completion[i];
            if t > deadline {
                if accepts_partial {
                    // Straggler submits whatever fraction of local steps it
                    // finished before the deadline (communication still
                    // happens, modelled inside the fraction).
                    fractions[i] = (deadline / t).clamp(0.05, 1.0);
                    completion[i] = deadline;
                    energy_shares[i] = fractions[i];
                } else {
                    fractions[i] = 0.0;
                    dropped.push(participants[i]);
                    completion[i] = deadline; // it burned energy until cut off
                    energy_shares[i] = (deadline / t).clamp(0.0, 1.0);
                }
            }
        }
        let round_time_s = completion.iter().copied().fold(0.0, f64::max).max(1e-9);

        // 4. Active-energy accounting: participants pay active energy
        // scaled by the share of work they performed (Eq. 5 selected
        // branch). Summed in participant order (never first-come) so the
        // totals are bit-identical at any thread count upstream.
        let mut per_participant_energy = Vec::with_capacity(costs.len());
        let mut active_energy_j = 0.0;
        for (i, cost) in costs.iter().enumerate() {
            // A free-rider burned no compute: it pays the uplink/downlink
            // energy only (Eq. 3 without the Eq. 2 compute term).
            let base = if self.config.adversary.is_some()
                && self.scratch.roles[i] == AdversaryRole::FreeRider
            {
                cost.comm_energy_j
            } else {
                cost.total_energy_j()
            };
            let e = base * energy_shares[i];
            active_energy_j += e;
            per_participant_energy.push(e);
        }

        // Byte accounting: everyone who actually transmitted pays the
        // encoded uplink — survivors, partial stragglers, deadline-cut
        // stragglers (the device uploads; the *server* discards the late
        // update — the same "energy burned, update dropped" semantics the
        // straggler reward penalty documents), and uploads the fabric
        // lost after transmission. Only mid-round dropouts never finished
        // sending (`is_dropout` without `net_lost`). Every participant
        // received the full model on the downlink at dispatch.
        let net = encoded_bytes.map(|bytes| {
            let transmitted = (0..participants.len())
                .filter(|&i| !is_dropout[i] || net_lost[i])
                .count() as u64;
            RoundNetStats {
                bytes_uplinked: transmitted * bytes,
                bytes_downlinked: participants.len() as u64
                    * self.config.workload.reference_model_bytes(),
                net_drops,
                partitioned,
            }
        });

        // Adversary accounting for the round record: how many selected
        // participants misbehave, and how many of their surviving updates
        // the server neutralises (free-riders' zero-work updates always;
        // poisoned/scaled updates only under a robust aggregator).
        let (adversarial, flagged) = if self.config.adversary.is_some() {
            let adversarial = self
                .scratch
                .roles
                .iter()
                .filter(|r| r.is_adversarial())
                .count();
            let robust = self.config.algorithm.poison_robustness() > 0.0;
            let flagged = (0..participants.len())
                .filter(|&i| fractions[i] > 0.0)
                .filter(|&i| match self.scratch.roles[i] {
                    AdversaryRole::FreeRider => true,
                    AdversaryRole::Poisoner | AdversaryRole::Scaler => robust,
                    _ => false,
                })
                .count();
            (Some(adversarial), Some(flagged))
        } else {
            (None, None)
        };

        let outcome = DispatchOutcome {
            ineligible: ineligible + partitioned,
            prev_accuracy,
            participants,
            plans,
            completion,
            fractions,
            per_participant_energy,
            dropped,
            dropouts,
            round_time_s,
            active_energy_j,
            net,
            codec_fidelity,
            adversarial,
            flagged,
        };
        (outcome, shadow_decision)
    }

    /// Idle energy of every non-participant over a round of
    /// `round_time_s` seconds (Eq. 5 else branch), summed in fleet order.
    pub(crate) fn idle_energy_for(&mut self, participants: &[DeviceId], round_time_s: f64) -> f64 {
        let is_participant = &mut self.scratch.is_participant;
        is_participant.clear();
        is_participant.resize(self.fleet.len(), false);
        for id in participants {
            is_participant[id.0] = true;
        }
        if self.scratch.tiers.len() != self.fleet.len() {
            self.scratch.tiers = self.fleet.iter().map(|d| d.tier()).collect();
        }
        // `idle_energy_j` is a pure function of the (three-valued) tier,
        // so the three possible addends are computed once and the fleet
        // walk reduces to a mask test plus a table lookup. The sum still
        // visits devices in fleet order, one addition each — bit-identical
        // to calling `idle_energy_j` per device.
        let idle = |tier| idle_energy_j(tier, round_time_s);
        let per_tier = [
            idle(DeviceTier::High),
            idle(DeviceTier::Mid),
            idle(DeviceTier::Low),
        ];
        let mut idle_energy = 0.0;
        for (tier, participant) in self.scratch.tiers.iter().zip(&self.scratch.is_participant) {
            if !participant {
                idle_energy += per_tier[match tier {
                    DeviceTier::High => 0,
                    DeviceTier::Mid => 1,
                    DeviceTier::Low => 2,
                }];
            }
        }
        idle_energy
    }

    /// Applies one aggregation step: folds the surviving updates —
    /// `survivors` with their (possibly staleness-discounted) update
    /// fractions, in `(round, participant-slot)` order — into the global
    /// model and returns the new test accuracy. Called exactly once per
    /// lockstep round; the event-driven runtime calls it once per buffer
    /// flush, with updates that may span several dispatched cohorts.
    pub(crate) fn aggregate_update(
        &mut self,
        survivors: Vec<DeviceId>,
        mut survivor_fractions: Vec<f64>,
    ) -> f64 {
        // Adversary accounting, before any mass is computed. Free-riders
        // transmitted a zero-work update, so the server holds no usable
        // update mass for them — their fraction is zeroed here, removing
        // them from every downstream statistic exactly like a lost
        // upload. Poisoners and scalers *do* contribute mass, but it is
        // hostile: the severity-weighted share of cohort mass they
        // control becomes the surrogate's poison-impact input (real
        // training applies their actually-corrupted deltas instead).
        // Exactly 0.0 — and no branch taken — when the subsystem is off.
        let mut poison = 0.0f64;
        if let Some(adv) = self.config.adversary {
            let mut total_mass = 0.0f64;
            let mut poisoned_mass = 0.0f64;
            for (id, f) in survivors.iter().zip(survivor_fractions.iter_mut()) {
                let role = adv.role_of(self.config.seed, id.0);
                if role == AdversaryRole::FreeRider {
                    *f = 0.0;
                }
                let w = self.data.partition.device_sample_count(id.0) as f64 * *f;
                total_mass += w;
                poisoned_mass += w * role.poison_severity(adv.scale_factor);
            }
            if total_mass > 0.0 {
                poison = (poisoned_mass / total_mass).clamp(0.0, 1.0);
            }
        }
        let effective_samples: f64 = survivors
            .iter()
            .zip(&survivor_fractions)
            .map(|(id, f)| self.data.partition.device_sample_count(id.0) as f64 * f)
            .sum();
        let survivor_ids: Vec<usize> = if self.config.adversary.is_some() {
            // Zero-mass (free-rider) survivors contributed no gradient,
            // so they must not count toward class coverage either.
            survivors
                .iter()
                .zip(&survivor_fractions)
                .filter(|(_, &f)| f > 0.0)
                .map(|(id, _)| id.0)
                .collect()
        } else {
            survivors.iter().map(|id| id.0).collect()
        };
        #[cfg(debug_assertions)]
        if effective_samples > 0.0 {
            // The aggregation invariant behind partial FedAvg: the
            // survivors' effective sample masses renormalise to weights
            // summing to exactly 1.0.
            let effectives: Vec<f64> = survivors
                .iter()
                .zip(&survivor_fractions)
                .map(|(id, f)| self.data.partition.device_sample_count(id.0) as f64 * f)
                .collect();
            let weights = crate::fleet::survivor_weights(&effectives);
            debug_assert_eq!(
                weights.iter().sum::<f64>().to_bits(),
                1.0f64.to_bits(),
                "partial aggregation must reweight survivors to exactly 1"
            );
        }
        let mean_member_divergence = if effective_samples > 0.0 {
            survivors
                .iter()
                .zip(&survivor_fractions)
                .map(|(id, f)| {
                    let w = self.data.partition.device_sample_count(id.0) as f64 * f;
                    self.data.partition.device_divergence(id.0) * w
                })
                .sum::<f64>()
                / effective_samples
        } else {
            0.0
        };
        let stats = CohortStats {
            participants: survivors,
            update_fractions: survivor_fractions,
            effective_samples,
            class_coverage: self.data.partition.cohort_class_coverage(&survivor_ids),
            divergence: self.data.partition.cohort_divergence(&survivor_ids),
            mean_member_divergence,
            local_epochs: self.config.params.local_epochs,
            batch_size: self.config.params.batch_size,
            poison,
        };
        self.engine.apply_round(&stats)
    }

    /// Advances the lifecycle states with what the cohort's round
    /// actually cost each device (battery drain, heating, cooling).
    /// Non-members idle-cool over `round_time_s` seconds. The lockstep
    /// loop calls this once per round; the event runtime calls it at the
    /// cohort's completion event.
    pub(crate) fn end_round_lifecycle(
        &mut self,
        round_time_s: f64,
        participants: &[DeviceId],
        completion: &[f64],
        per_participant_energy: &[f64],
    ) {
        if let (Some(dynamics), Some(state)) = (&self.config.fleet, &mut self.fleet_state) {
            state.end_round(
                dynamics,
                &self.fleet,
                round_time_s,
                participants,
                completion,
                per_participant_energy,
            );
        }
    }

    /// Runs until the target accuracy is reached (plus nothing) or
    /// `max_rounds`, whichever comes first, and returns the result.
    pub fn run(&mut self, selector: &mut dyn Selector) -> SimResult {
        self.run_with(selector, &mut [])
            .expect("a run without observers cannot fail")
    }

    /// Like [`Simulation::run`], with [`crate::observe::RoundObserver`]s
    /// seeing every round as it completes (and the final result, if the
    /// run converges). Observers cannot perturb the simulation: they only
    /// borrow the records the run produces anyway. An observer whose
    /// writer fails (closed pipe, full disk) stops the run at that round
    /// and surfaces the error.
    pub fn run_with(
        &mut self,
        selector: &mut dyn Selector,
        observers: &mut [&mut dyn crate::observe::RoundObserver],
    ) -> std::io::Result<SimResult> {
        let label = selector.name().to_string();
        self.run_labeled(selector, label, observers)
    }

    /// Like [`Simulation::run_with`], labelling the result `policy`
    /// instead of the selector's own name — so observers (and the
    /// returned result) agree on the reporting name when a
    /// [`crate::policy::Policy`] labels itself differently from the
    /// selector it mints (e.g. [`crate::policy::TunedPolicy`]).
    pub fn run_labeled(
        &mut self,
        selector: &mut dyn Selector,
        policy: String,
        observers: &mut [&mut dyn crate::observe::RoundObserver],
    ) -> std::io::Result<SimResult> {
        if self.config.runtime.is_some() {
            // Event-driven scheduling on logical time; the full-barrier
            // special case reproduces this lockstep loop bit for bit
            // (pinned in tests/async_runtime.rs).
            return crate::runtime::run_event_driven(self, selector, policy, observers);
        }
        let target = self.config.target();
        let mut records = Vec::new();
        for round in 0..self.config.max_rounds {
            for obs in observers.iter_mut() {
                obs.on_round_start(round)?;
            }
            let record = self.run_round(selector, round);
            for obs in observers.iter_mut() {
                obs.on_round_end(&record)?;
            }
            let reached = record.accuracy >= target;
            records.push(record);
            if reached {
                break;
            }
        }
        let result = SimResult {
            policy,
            target_accuracy: target,
            records,
        };
        if result.converged() {
            for obs in observers.iter_mut() {
                obs.on_converged(&result)?;
            }
        }
        Ok(result)
    }

    /// Replaces the global training parameters `(B, E, K)` mid-run — the
    /// mutation hook behind per-round convergence control
    /// ([`crate::serve::ConvergenceController`] driving
    /// [`crate::policy::Policy::tune`] each round). The surrogate
    /// engine's nominal cohort mass stays pinned to the *initial*
    /// parameters, so tuning `K` shifts the effective-sample factor
    /// exactly as fielding a smaller cohort would.
    pub fn set_params(&mut self, params: GlobalParams) {
        self.config.params = params;
    }

    /// Serializes the simulation's live mutable state — the sequential
    /// engine RNG position, the accuracy engine (global model or
    /// surrogate curve + noise stream), the fleet lifecycle store, the
    /// logical clock and the (possibly controller-tuned) global
    /// parameters. Everything else (fleet, dataset, scratch, condition
    /// streams) is a deterministic function of [`SimConfig`] and is
    /// rebuilt by [`Simulation::new`] on resume, not checkpointed.
    pub fn state_snapshot(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("clock_s".to_string(), self.clock_s.to_value()),
            ("rng".to_string(), self.rng.state().to_vec().to_value()),
            ("params".to_string(), self.config.params.to_value()),
            ("engine".to_string(), self.engine.state_snapshot()),
            (
                "fleet_state".to_string(),
                match &self.fleet_state {
                    Some(store) => store.state_snapshot(),
                    None => serde::Value::Null,
                },
            ),
        ])
    }

    /// Restores the state captured by [`Simulation::state_snapshot`] onto
    /// a freshly built simulation of the *same* [`SimConfig`]. After
    /// this, continuing the run reproduces the uninterrupted run bit for
    /// bit (pinned in `tests/checkpoint.rs`).
    pub fn state_restore(&mut self, value: &serde::Value) -> Result<(), serde::Error> {
        fn field<T: Deserialize>(value: &serde::Value, name: &str) -> Result<T, serde::Error> {
            T::from_value(serde::field_or_null(value, name)).map_err(|e| e.at(name))
        }
        self.clock_s = field(value, "clock_s")?;
        let rng_words: Vec<u64> = field(value, "rng")?;
        let rng_state: [u64; 4] = rng_words
            .try_into()
            .map_err(|_| serde::Error::custom("engine rng state must have 4 words").at("rng"))?;
        self.rng = SmallRng::from_state(rng_state);
        self.config.params = field(value, "params")?;
        self.engine
            .state_restore(serde::field_or_null(value, "engine"))
            .map_err(|e| e.at("engine"))?;
        match (
            &mut self.fleet_state,
            serde::field_or_null(value, "fleet_state"),
        ) {
            (Some(store), v @ serde::Value::Map(_)) => {
                store.state_restore(v).map_err(|e| e.at("fleet_state"))?
            }
            (None, serde::Value::Null) => {}
            (state, v) => {
                return Err(serde::Error::custom(format!(
                    "fleet_state mismatch: config {} dynamics, checkpoint holds {}",
                    if state.is_some() {
                        "enables"
                    } else {
                        "disables"
                    },
                    v.kind(),
                )))
            }
        }
        Ok(())
    }
}

/// Mixes the master seed and the round index into the seed of the round's
/// per-device condition streams (SplitMix64 finalizer, so neighbouring
/// rounds land far apart in seed space).
fn round_stream_seed(seed: u64, round: usize) -> u64 {
    let mut z = seed
        .wrapping_add(0x001c_0d17_1015_u64)
        .wrapping_add((round as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Median via a caller-provided sort buffer (no per-call allocation).
fn median_into(scratch: &mut Vec<f64>, values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    scratch.clear();
    scratch.extend_from_slice(values);
    scratch.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let mid = scratch.len() / 2;
    if scratch.len() % 2 == 1 {
        scratch[mid]
    } else {
        (scratch[mid - 1] + scratch[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::{ClusterSelector, RandomSelector};

    #[test]
    fn tiny_simulation_runs_and_converges() {
        let mut sim = Simulation::new(SimConfig::tiny_test(1));
        let result = sim.run(&mut RandomSelector::new());
        assert!(!result.records.is_empty());
        assert!(result.converged(), "final acc {}", result.final_accuracy());
        assert!(result.energy_to_target_j() > 0.0);
        assert!(result.time_to_target_s() > 0.0);
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let run = || {
            let mut sim = Simulation::new(SimConfig::tiny_test(7));
            sim.run(&mut RandomSelector::new())
        };
        let (a, b) = (run(), run());
        assert_eq!(a.records.len(), b.records.len());
        for (ra, rb) in a.records.iter().zip(b.records.iter()) {
            assert_eq!(ra.participants, rb.participants);
            assert_eq!(ra.accuracy, rb.accuracy);
            assert_eq!(ra.total_energy_j(), rb.total_energy_j());
        }
    }

    #[test]
    fn smoke_profile_converges_quickly() {
        let mut sim = Simulation::new(SimConfig::smoke(1));
        let result = sim.run(&mut RandomSelector::new());
        assert!(
            result.converged(),
            "smoke run stalled at {}",
            result.final_accuracy()
        );
        // Pin the fast-smoke contract: convergence must land well inside
        // the 250-round horizon, not scrape against it.
        assert!(
            result.records.len() < 200,
            "smoke profile slowed down: {} rounds",
            result.records.len()
        );
    }

    #[test]
    fn performance_policy_has_faster_rounds_than_power() {
        let mut cfg = SimConfig::paper_default(Workload::CnnMnist);
        cfg.max_rounds = 30;
        let perf = Simulation::new(cfg.clone()).run(&mut ClusterSelector::performance());
        let power = Simulation::new(cfg).run(&mut ClusterSelector::power());
        assert!(
            perf.mean_round_time_s() < power.mean_round_time_s(),
            "perf {} vs power {}",
            perf.mean_round_time_s(),
            power.mean_round_time_s()
        );
    }

    #[test]
    fn fedavg_drops_stragglers_but_fednova_keeps_partial() {
        let mut cfg = SimConfig::paper_default(Workload::CnnMnist);
        cfg.scenario = VarianceScenario::with_interference();
        cfg.max_rounds = 20;
        cfg.straggler_deadline_factor = 1.3;
        let avg = Simulation::new(cfg.clone()).run(&mut RandomSelector::new());
        cfg.algorithm = AggregationAlgorithm::FedNova;
        let nova = Simulation::new(cfg).run(&mut RandomSelector::new());
        let drops = |r: &SimResult| -> usize { r.records.iter().map(|x| x.dropped.len()).sum() };
        assert!(drops(&avg) > 0, "interference should create stragglers");
        assert_eq!(drops(&nova), 0, "FedNova accepts partial updates");
    }

    #[test]
    fn round_energy_includes_idle_fleet() {
        let mut sim = Simulation::new(SimConfig::tiny_test(3));
        let rec = sim.run_round(&mut RandomSelector::new(), 0);
        assert!(rec.idle_energy_j > 0.0);
        assert!(rec.active_energy_j > 0.0);
        assert_eq!(rec.participants.len(), 4);
    }

    #[test]
    fn disabled_fleet_block_reports_a_static_available_fleet() {
        let mut cfg = SimConfig::tiny_test(5);
        cfg.max_rounds = 6;
        cfg.target_accuracy = Some(1.1);
        let result = Simulation::new(cfg).run(&mut RandomSelector::new());
        for rec in &result.records {
            assert!(rec.dropouts.is_empty(), "static fleets never drop out");
            assert_eq!(rec.ineligible, 0, "static fleets are always eligible");
        }
    }

    #[test]
    fn fleet_dynamics_create_dropouts_churn_and_reweighted_survivors() {
        let mut cfg = SimConfig::smoke(8);
        cfg.max_rounds = 30;
        cfg.target_accuracy = Some(1.1);
        cfg.fleet = Some(crate::fleet::FleetDynamics::with_dropout_rate(0.4));
        let result = Simulation::new(cfg).run(&mut RandomSelector::new());
        let dropouts: usize = result.records.iter().map(|r| r.dropouts.len()).sum();
        assert!(dropouts > 0, "40% churn must produce mid-round dropouts");
        assert!(
            result.records.iter().any(|r| r.ineligible > 0),
            "sessions and battery gates must make some devices ineligible"
        );
        for rec in &result.records {
            for id in &rec.dropouts {
                assert!(
                    rec.participants.contains(id),
                    "dropout outside the selection"
                );
                assert!(
                    !rec.dropped.contains(id),
                    "dropouts and stragglers must stay disjoint"
                );
                let i = rec.participants.iter().position(|p| p == id).unwrap();
                assert_eq!(
                    rec.update_fractions[i], 0.0,
                    "a dropout contributes no update"
                );
            }
            assert_eq!(
                rec.survivors().len(),
                rec.participants.len() - rec.dropouts.len() - rec.dropped.len(),
                "survivors = participants minus dropouts minus stragglers"
            );
        }
    }

    #[test]
    fn overselect_provisions_extra_participants() {
        let mut cfg = SimConfig::smoke(3);
        cfg.max_rounds = 8;
        cfg.target_accuracy = Some(1.1);
        // Calm dynamics: nobody churns, so the whole fleet is eligible
        // and the over-provisioned K is always realised.
        let calm = crate::fleet::FleetDynamics {
            foreground_prob: 0.0,
            offline_prob: 0.0,
            mid_round_drop_prob: 0.0,
            initial_soc_min: 1.0,
            initial_soc_max: 1.0,
            ..crate::fleet::FleetDynamics::realistic()
        };
        cfg.fleet = Some(calm.straggler(crate::fleet::StragglerPolicy::OverSelect { extra: 5 }));
        let k = cfg.params.num_participants;
        let result = Simulation::new(cfg).run(&mut RandomSelector::new());
        for rec in &result.records {
            assert_eq!(rec.participants.len(), k + 5, "round {}", rec.round);
        }
    }

    #[test]
    fn overselect_clamps_to_the_eligible_pool_under_dynamics() {
        // Validation rejects K + extra > N, so the fleet size never
        // binds at dispatch; under dynamics the advertised cohort is
        // bounded by the round's *eligible* pool instead — never a
        // promise the policy cannot realise.
        let mut cfg = SimConfig::smoke(9);
        cfg.max_rounds = 12;
        cfg.target_accuracy = Some(1.1);
        let stormy = crate::fleet::FleetDynamics {
            foreground_prob: 0.5,
            offline_prob: 0.4,
            ..crate::fleet::FleetDynamics::realistic()
        };
        cfg.fleet = Some(stormy.straggler(crate::fleet::StragglerPolicy::OverSelect { extra: 19 }));
        let n = cfg.num_devices;
        let k = cfg.params.num_participants;
        let result = Simulation::new(cfg).run(&mut RandomSelector::new());
        assert!(
            result.records.iter().any(|r| n - r.ineligible < k + 19),
            "dynamics must shrink the eligible pool below K + extra"
        );
        for rec in &result.records {
            assert_eq!(
                rec.participants.len(),
                (n - rec.ineligible).min(k + 19),
                "round {}: cohort must fill min(K + extra, eligible)",
                rec.round
            );
        }
    }

    #[test]
    fn deadline_is_projected_not_truncated_by_dropouts() {
        // The straggler deadline is the median of completion times
        // *projected at dispatch*: a device that dies at 10% of the
        // round still contributes its full projected time, because the
        // server sets the deadline when it hands out work and cannot
        // foresee deaths. Two fleets differing only in mid-round dropout
        // probability therefore cut exactly the same stragglers — minus
        // those that dropped out before the deadline could cut them.
        let run = |drop_prob: f64| {
            let mut cfg = SimConfig::smoke(17);
            cfg.scenario = VarianceScenario::with_interference();
            cfg.straggler_deadline_factor = 1.3;
            let calm = crate::fleet::FleetDynamics {
                foreground_prob: 0.0,
                offline_prob: 0.0,
                initial_soc_min: 1.0,
                initial_soc_max: 1.0,
                mid_round_drop_prob: drop_prob,
                ..crate::fleet::FleetDynamics::realistic()
            };
            cfg.fleet = Some(calm.straggler(crate::fleet::StragglerPolicy::Drop));
            Simulation::new(cfg).run_round(&mut RandomSelector::new(), 0)
        };
        let without = run(0.0);
        let with = run(0.9);
        assert_eq!(
            without.participants, with.participants,
            "dropout probability must not perturb dispatch"
        );
        assert!(!with.dropouts.is_empty(), "90% churn must kill devices");
        assert!(
            !without.dropped.is_empty(),
            "interference must create stragglers"
        );
        let expected: Vec<DeviceId> = without
            .dropped
            .iter()
            .copied()
            .filter(|id| !with.dropouts.contains(id))
            .collect();
        assert_eq!(
            with.dropped, expected,
            "dropouts must not move the deadline for the survivors"
        );
    }

    #[test]
    fn wait_bounded_keeps_updates_that_drop_would_cut() {
        let mut cfg = SimConfig::smoke(6);
        cfg.scenario = VarianceScenario::with_interference();
        cfg.straggler_deadline_factor = 1.3;
        cfg.max_rounds = 15;
        cfg.target_accuracy = Some(1.1);
        let calm = crate::fleet::FleetDynamics {
            foreground_prob: 0.0,
            offline_prob: 0.0,
            mid_round_drop_prob: 0.0,
            ..crate::fleet::FleetDynamics::realistic()
        };
        let misses = |straggler| {
            let mut cfg = cfg.clone();
            cfg.fleet = Some(calm.clone().straggler(straggler));
            let result = Simulation::new(cfg).run(&mut RandomSelector::new());
            result
                .records
                .iter()
                .map(|r| r.dropped.len())
                .sum::<usize>()
        };
        let dropped = misses(crate::fleet::StragglerPolicy::Drop);
        let waited = misses(crate::fleet::StragglerPolicy::WaitBounded { grace: 2.0 });
        assert!(dropped > 0, "interference must create stragglers");
        assert!(
            waited < dropped,
            "waiting must keep updates: {waited} vs {dropped}"
        );
    }
}

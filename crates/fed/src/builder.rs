//! Fluent construction and validation of simulations.
//!
//! [`SimBuilder`] is the supported way to configure an experiment:
//!
//! ```
//! use autofl_fed::engine::Simulation;
//! use autofl_fed::global::GlobalParams;
//! use autofl_fed::selection::RandomSelector;
//! use autofl_nn::zoo::Workload;
//!
//! let mut sim = Simulation::builder(Workload::TinyTest)
//!     .devices(12)
//!     .params(GlobalParams::new(8, 1, 4))
//!     .samples_per_device(24)
//!     .test_samples(48)
//!     .max_rounds(60)
//!     .seed(1)
//!     .build()
//!     .expect("valid configuration");
//! let result = sim.run(&mut RandomSelector::new());
//! assert!(result.final_accuracy() > 0.0);
//! ```
//!
//! Every knob starts from the paper-shaped defaults of
//! [`SimConfig::paper_default`], so a builder chain only names what an
//! experiment changes. [`SimBuilder::build`] rejects inconsistent
//! configurations with a typed [`ConfigError`] instead of panicking deep
//! inside the engine; the same checks run on configurations deserialized
//! from spec files via [`SimConfig::validate`].

use crate::algorithms::AggregationAlgorithm;
use crate::engine::{Fidelity, SimConfig, Simulation};
use crate::global::GlobalParams;
use autofl_data::partition::DataDistribution;
use autofl_device::scenario::VarianceScenario;
use autofl_nn::zoo::Workload;

/// Why a configuration cannot be simulated.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The fleet is empty.
    NoDevices,
    /// More participants per round than devices in the fleet.
    ParticipantsExceedFleet {
        /// Participants per round `K`.
        participants: usize,
        /// Fleet size `N`.
        devices: usize,
    },
    /// A global parameter (`B`, `E` or `K`) is zero.
    ZeroGlobalParam,
    /// Devices hold no training samples.
    NoSamples,
    /// No held-out test samples.
    NoTestSamples,
    /// The horizon is zero rounds.
    NoRounds,
    /// The straggler deadline factor is below 1 or not finite.
    BadDeadlineFactor(f64),
    /// The convergence target is non-positive or not finite.
    BadTargetAccuracy(f64),
    /// Real-training fidelity with a non-positive learning rate.
    BadLearningRate(f32),
    /// Real-training fidelity with zero evaluation samples.
    NoEvalSamples,
    /// A non-IID fraction outside `[0, 1]` or a non-positive Dirichlet
    /// concentration.
    BadDistribution {
        /// Fraction of non-IID devices.
        fraction_non_iid: f64,
        /// Dirichlet concentration α.
        alpha: f64,
    },
    /// A variance probability outside `[0, 1]`.
    BadVarianceProbability(f64),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoDevices => write!(f, "the fleet must contain at least one device"),
            ConfigError::ParticipantsExceedFleet {
                participants,
                devices,
            } => write!(
                f,
                "K = {participants} participants per round exceeds the fleet of {devices} devices"
            ),
            ConfigError::ZeroGlobalParam => {
                write!(f, "global parameters (B, E, K) must all be positive")
            }
            ConfigError::NoSamples => write!(f, "samples_per_device must be positive"),
            ConfigError::NoTestSamples => write!(f, "test_samples must be positive"),
            ConfigError::NoRounds => write!(f, "max_rounds must be positive"),
            ConfigError::BadDeadlineFactor(v) => write!(
                f,
                "straggler_deadline_factor must be finite and >= 1, got {v}"
            ),
            ConfigError::BadTargetAccuracy(v) => {
                write!(f, "target_accuracy must be finite and positive, got {v}")
            }
            ConfigError::BadLearningRate(v) => {
                write!(f, "real-training learning rate must be positive, got {v}")
            }
            ConfigError::NoEvalSamples => {
                write!(f, "real-training eval_samples must be positive")
            }
            ConfigError::BadDistribution {
                fraction_non_iid,
                alpha,
            } => write!(
                f,
                "non-IID distribution needs fraction in [0, 1] and alpha > 0, \
                 got fraction {fraction_non_iid}, alpha {alpha}"
            ),
            ConfigError::BadVarianceProbability(v) => {
                write!(f, "variance probabilities must lie in [0, 1], got {v}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl SimConfig {
    /// Checks the configuration for the inconsistencies [`ConfigError`]
    /// enumerates. Runs automatically in [`SimBuilder::build`] and on
    /// every spec-file load.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_devices == 0 {
            return Err(ConfigError::NoDevices);
        }
        if self.params.batch_size == 0
            || self.params.local_epochs == 0
            || self.params.num_participants == 0
        {
            return Err(ConfigError::ZeroGlobalParam);
        }
        if self.params.num_participants > self.num_devices {
            return Err(ConfigError::ParticipantsExceedFleet {
                participants: self.params.num_participants,
                devices: self.num_devices,
            });
        }
        if self.samples_per_device == 0 {
            return Err(ConfigError::NoSamples);
        }
        if self.test_samples == 0 {
            return Err(ConfigError::NoTestSamples);
        }
        if self.max_rounds == 0 {
            return Err(ConfigError::NoRounds);
        }
        if !self.straggler_deadline_factor.is_finite() || self.straggler_deadline_factor < 1.0 {
            return Err(ConfigError::BadDeadlineFactor(
                self.straggler_deadline_factor,
            ));
        }
        if let Some(target) = self.target_accuracy {
            // Targets above 1 are allowed on purpose: they mean "never
            // converge", which the figure sweeps use to record the full
            // horizon.
            if !target.is_finite() || target <= 0.0 {
                return Err(ConfigError::BadTargetAccuracy(target));
            }
        }
        if let Fidelity::RealTraining { lr, eval_samples } = self.fidelity {
            if !lr.is_finite() || lr <= 0.0 {
                return Err(ConfigError::BadLearningRate(lr));
            }
            if eval_samples == 0 {
                return Err(ConfigError::NoEvalSamples);
            }
        }
        if let DataDistribution::NonIid {
            fraction_non_iid,
            alpha,
        } = self.distribution
        {
            if !(0.0..=1.0).contains(&fraction_non_iid) || !alpha.is_finite() || alpha <= 0.0 {
                return Err(ConfigError::BadDistribution {
                    fraction_non_iid,
                    alpha,
                });
            }
        }
        for p in [
            self.scenario.interference_prob,
            self.scenario.weak_network_prob,
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(ConfigError::BadVarianceProbability(p));
            }
        }
        Ok(())
    }
}

/// Fluent, validating constructor for [`Simulation`]s — see the
/// [module-level example](self).
#[derive(Debug, Clone)]
pub struct SimBuilder {
    config: SimConfig,
}

impl SimBuilder {
    /// Starts from the paper-shaped defaults for `workload`
    /// ([`SimConfig::paper_default`]).
    pub fn new(workload: Workload) -> Self {
        SimBuilder {
            config: SimConfig::paper_default(workload),
        }
    }

    /// Fleet size `N` (the paper's 15/35/50% tier mix is kept at any
    /// scale).
    #[must_use]
    pub fn devices(mut self, n: usize) -> Self {
        self.config.num_devices = n;
        self
    }

    /// The `(B, E, K)` global parameters.
    #[must_use]
    pub fn params(mut self, params: GlobalParams) -> Self {
        self.config.params = params;
        self
    }

    /// Data heterogeneity scenario.
    #[must_use]
    pub fn distribution(mut self, distribution: DataDistribution) -> Self {
        self.config.distribution = distribution;
        self
    }

    /// Runtime-variance scenario.
    #[must_use]
    pub fn scenario(mut self, scenario: VarianceScenario) -> Self {
        self.config.scenario = scenario;
        self
    }

    /// Aggregation algorithm.
    #[must_use]
    pub fn algorithm(mut self, algorithm: AggregationAlgorithm) -> Self {
        self.config.algorithm = algorithm;
        self
    }

    /// Accuracy engine (surrogate or real training).
    #[must_use]
    pub fn fidelity(mut self, fidelity: Fidelity) -> Self {
        self.config.fidelity = fidelity;
        self
    }

    /// Mean local training samples per device.
    #[must_use]
    pub fn samples_per_device(mut self, n: usize) -> Self {
        self.config.samples_per_device = n;
        self
    }

    /// Held-out test samples.
    #[must_use]
    pub fn test_samples(mut self, n: usize) -> Self {
        self.config.test_samples = n;
        self
    }

    /// Round deadline as a multiple of the cohort's median completion
    /// time.
    #[must_use]
    pub fn straggler_deadline_factor(mut self, factor: f64) -> Self {
        self.config.straggler_deadline_factor = factor;
        self
    }

    /// Convergence target; values above 1 never trigger, recording the
    /// full horizon.
    #[must_use]
    pub fn target_accuracy(mut self, target: f64) -> Self {
        self.config.target_accuracy = Some(target);
        self
    }

    /// Restores the workload profile's default convergence target.
    #[must_use]
    pub fn default_target(mut self) -> Self {
        self.config.target_accuracy = None;
        self
    }

    /// Maximum rounds to simulate.
    #[must_use]
    pub fn max_rounds(mut self, rounds: usize) -> Self {
        self.config.max_rounds = rounds;
        self
    }

    /// Master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validates and returns the configuration without building the
    /// simulation (useful for sweeps that clone one base config).
    pub fn build_config(self) -> Result<SimConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }

    /// Validates the configuration and builds the simulation.
    pub fn build(self) -> Result<Simulation, ConfigError> {
        self.build_config().map(Simulation::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper_default() {
        let built = SimBuilder::new(Workload::CnnMnist)
            .build_config()
            .expect("defaults are valid");
        assert_eq!(built, SimConfig::paper_default(Workload::CnnMnist));
    }

    #[test]
    fn builder_reproduces_hand_built_configs_exactly() {
        let mut by_hand = SimConfig::paper_default(Workload::CnnMnist);
        by_hand.scenario = VarianceScenario::with_interference();
        by_hand.max_rounds = 400;
        by_hand.seed = 9;
        let built = Simulation::builder(Workload::CnnMnist)
            .scenario(VarianceScenario::with_interference())
            .max_rounds(400)
            .seed(9)
            .build_config()
            .expect("valid");
        assert_eq!(built, by_hand);
    }

    #[test]
    fn zero_devices_is_rejected() {
        let err = Simulation::builder(Workload::TinyTest)
            .devices(0)
            .build_config()
            .unwrap_err();
        assert_eq!(err, ConfigError::NoDevices);
    }

    #[test]
    fn oversubscribed_k_is_rejected() {
        let err = Simulation::builder(Workload::TinyTest)
            .devices(10)
            .params(GlobalParams::new(8, 1, 20))
            .build_config()
            .unwrap_err();
        assert!(matches!(err, ConfigError::ParticipantsExceedFleet { .. }));
    }

    #[test]
    fn bad_deadline_and_target_are_rejected() {
        assert!(matches!(
            Simulation::builder(Workload::TinyTest)
                .straggler_deadline_factor(0.5)
                .build_config(),
            Err(ConfigError::BadDeadlineFactor(_))
        ));
        assert!(matches!(
            Simulation::builder(Workload::TinyTest)
                .target_accuracy(-0.1)
                .build_config(),
            Err(ConfigError::BadTargetAccuracy(_))
        ));
        // Above-1 targets are the "record the full horizon" idiom.
        assert!(Simulation::builder(Workload::TinyTest)
            .target_accuracy(1.1)
            .build_config()
            .is_ok());
    }

    #[test]
    fn real_training_knobs_are_checked() {
        assert!(matches!(
            Simulation::builder(Workload::TinyTest)
                .fidelity(Fidelity::RealTraining {
                    lr: 0.0,
                    eval_samples: 16,
                })
                .build_config(),
            Err(ConfigError::BadLearningRate(_))
        ));
        assert!(matches!(
            Simulation::builder(Workload::TinyTest)
                .fidelity(Fidelity::RealTraining {
                    lr: 0.1,
                    eval_samples: 0,
                })
                .build_config(),
            Err(ConfigError::NoEvalSamples)
        ));
    }

    #[test]
    fn malformed_deserialized_configs_are_caught() {
        // Bypasses GlobalParams::new, as a hand-edited spec file would.
        let mut cfg = SimConfig::tiny_test(1);
        cfg.params.num_participants = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroGlobalParam));

        let mut cfg = SimConfig::tiny_test(1);
        cfg.distribution = DataDistribution::NonIid {
            fraction_non_iid: 1.5,
            alpha: 0.1,
        };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadDistribution { .. })
        ));
    }
}

//! Fluent construction and validation of simulations.
//!
//! [`SimBuilder`] is the supported way to configure an experiment:
//!
//! ```
//! use autofl_fed::engine::Simulation;
//! use autofl_fed::global::GlobalParams;
//! use autofl_fed::selection::RandomSelector;
//! use autofl_nn::zoo::Workload;
//!
//! let mut sim = Simulation::builder(Workload::TinyTest)
//!     .devices(12)
//!     .params(GlobalParams::new(8, 1, 4))
//!     .samples_per_device(24)
//!     .test_samples(48)
//!     .max_rounds(60)
//!     .seed(1)
//!     .build()
//!     .expect("valid configuration");
//! let result = sim.run(&mut RandomSelector::new());
//! assert!(result.final_accuracy() > 0.0);
//! ```
//!
//! Every knob starts from the paper-shaped defaults of
//! [`SimConfig::paper_default`], so a builder chain only names what an
//! experiment changes. [`SimBuilder::build`] rejects inconsistent
//! configurations with a typed [`ConfigError`] instead of panicking deep
//! inside the engine; the same checks run on configurations deserialized
//! from spec files via [`SimConfig::validate`].

use crate::adversary::AdversaryConfig;
use crate::algorithms::AggregationAlgorithm;
use crate::engine::{Fidelity, SimConfig, Simulation};
use crate::fabric::{CodecSpec, NetworkFabric};
use crate::fleet::{FleetDynamics, StragglerPolicy};
use crate::global::GlobalParams;
use crate::runtime::AsyncRuntime;
use autofl_data::partition::DataDistribution;
use autofl_device::scenario::VarianceScenario;
use autofl_nn::zoo::Workload;

/// Why a configuration cannot be simulated.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The fleet is empty.
    NoDevices,
    /// More participants per round than devices in the fleet.
    ParticipantsExceedFleet {
        /// Participants per round `K`.
        participants: usize,
        /// Fleet size `N`.
        devices: usize,
    },
    /// A global parameter (`B`, `E` or `K`) is zero.
    ZeroGlobalParam,
    /// Devices hold no training samples.
    NoSamples,
    /// No held-out test samples.
    NoTestSamples,
    /// The horizon is zero rounds.
    NoRounds,
    /// The shard count is zero (at least one shard must exist; values
    /// above the fleet size are merely clamped).
    NoShards,
    /// The straggler deadline factor is below 1 or not finite.
    BadDeadlineFactor(f64),
    /// The convergence target is non-positive or not finite.
    BadTargetAccuracy(f64),
    /// Real-training fidelity with a non-positive learning rate.
    BadLearningRate(f32),
    /// Real-training fidelity with zero evaluation samples.
    NoEvalSamples,
    /// A non-IID fraction outside `[0, 1]` or a non-positive Dirichlet
    /// concentration.
    BadDistribution {
        /// Fraction of non-IID devices.
        fraction_non_iid: f64,
        /// Dirichlet concentration α.
        alpha: f64,
    },
    /// A variance probability outside `[0, 1]`.
    BadVarianceProbability(f64),
    /// A fleet-dynamics probability (charging, foreground, offline,
    /// mid-round drop) outside `[0, 1]`.
    BadFleetProbability(f64),
    /// An inconsistent state-of-charge pair: bounds outside `[0, 1]` or
    /// `low > high` (initial SoC range, or reserve vs. eligibility SoC).
    BadSocRange {
        /// The lower bound (initial minimum, or reserve SoC).
        low: f64,
        /// The upper bound (initial maximum, or eligibility SoC).
        high: f64,
    },
    /// A fleet-dynamics rate or scale that must be finite and
    /// non-negative (capacity scale additionally positive) is not.
    BadFleetRate(f64),
    /// A `WaitBounded` grace factor below 1 or not finite.
    BadWaitFactor(f64),
    /// `OverSelect` would select more participants than the fleet holds.
    OverSelectExceedsFleet {
        /// `K + extra` participants per round.
        selected: usize,
        /// Fleet size `N`.
        devices: usize,
    },
    /// The async runtime's aggregation buffer holds zero updates
    /// (use `buffer_size: None` for the full barrier instead).
    NoBufferCapacity,
    /// A staleness exponent that is negative or not finite.
    BadStalenessExponent(f64),
    /// The async runtime keeps zero cohorts in flight, so no round
    /// would ever dispatch.
    NoConcurrency,
    /// A network-fabric link parameter (latency mean/spread, weak-signal
    /// factor) that must be finite and non-negative is not.
    BadLinkParameter(f64),
    /// A network-fabric drop probability outside `[0, 1]`.
    BadDropProbability(f64),
    /// A sparsifying codec's kept fraction outside `(0, 1]`.
    BadCodecFraction(f64),
    /// A periodic full-sync cadence of zero rounds (omit `full_sync_every`
    /// to disable full syncs instead).
    NoSyncPeriod,
    /// A partition rule with an empty round span, an empty device span,
    /// or a device span reaching past the fleet.
    BadPartitionRule {
        /// First partitioned round (inclusive).
        from_round: usize,
        /// First round after the partition heals (exclusive).
        until_round: usize,
        /// First unreachable device id (inclusive).
        device_begin: usize,
        /// First reachable device id after the span (exclusive).
        device_end: usize,
    },
    /// An adversary role fraction outside `[0, 1]`, or role fractions
    /// summing past 1.
    BadAdversaryFraction(f64),
    /// A scaled-gradient attack factor that is non-finite, zero, or
    /// absurdly large.
    BadScaleFactor(f64),
    /// A trimmed-mean trim fraction outside `[0, 0.5)` (each end must
    /// keep a strict majority of values).
    BadTrimFraction(f64),
    /// A flat-only aggregation rule (no exact per-shard combine exists —
    /// [`AggregationAlgorithm::exact_sharded`]) paired with `shards > 1`.
    FlatOnlyAggregator {
        /// The offending rule's name.
        algorithm: &'static str,
        /// The configured shard count.
        shards: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoDevices => write!(f, "the fleet must contain at least one device"),
            ConfigError::ParticipantsExceedFleet {
                participants,
                devices,
            } => write!(
                f,
                "K = {participants} participants per round exceeds the fleet of {devices} devices"
            ),
            ConfigError::ZeroGlobalParam => {
                write!(f, "global parameters (B, E, K) must all be positive")
            }
            ConfigError::NoSamples => write!(f, "samples_per_device must be positive"),
            ConfigError::NoTestSamples => write!(f, "test_samples must be positive"),
            ConfigError::NoRounds => write!(f, "max_rounds must be positive"),
            ConfigError::NoShards => write!(f, "shards must be positive (1 = unsharded)"),
            ConfigError::BadDeadlineFactor(v) => write!(
                f,
                "straggler_deadline_factor must be finite and >= 1, got {v}"
            ),
            ConfigError::BadTargetAccuracy(v) => {
                write!(f, "target_accuracy must be finite and positive, got {v}")
            }
            ConfigError::BadLearningRate(v) => {
                write!(f, "real-training learning rate must be positive, got {v}")
            }
            ConfigError::NoEvalSamples => {
                write!(f, "real-training eval_samples must be positive")
            }
            ConfigError::BadDistribution {
                fraction_non_iid,
                alpha,
            } => write!(
                f,
                "non-IID distribution needs fraction in [0, 1] and alpha > 0, \
                 got fraction {fraction_non_iid}, alpha {alpha}"
            ),
            ConfigError::BadVarianceProbability(v) => {
                write!(f, "variance probabilities must lie in [0, 1], got {v}")
            }
            ConfigError::BadFleetProbability(v) => {
                write!(
                    f,
                    "fleet-dynamics probabilities must lie in [0, 1], got {v}"
                )
            }
            ConfigError::BadSocRange { low, high } => write!(
                f,
                "state-of-charge bounds must lie in [0, 1] with low <= high, \
                 got [{low}, {high}]"
            ),
            ConfigError::BadFleetRate(v) => write!(
                f,
                "fleet-dynamics rates must be finite and non-negative \
                 (capacity scale positive), got {v}"
            ),
            ConfigError::BadWaitFactor(v) => write!(
                f,
                "WaitBounded grace factor must be finite and >= 1, got {v}"
            ),
            ConfigError::OverSelectExceedsFleet { selected, devices } => write!(
                f,
                "OverSelect asks for {selected} participants per round but \
                 the fleet has only {devices} devices"
            ),
            ConfigError::NoBufferCapacity => write!(
                f,
                "async runtime buffer_size must hold at least one update \
                 (None = full barrier)"
            ),
            ConfigError::BadStalenessExponent(v) => write!(
                f,
                "async runtime staleness_exponent must be finite and >= 0, got {v}"
            ),
            ConfigError::NoConcurrency => {
                write!(f, "async runtime concurrent_cohorts must be positive")
            }
            ConfigError::BadLinkParameter(v) => write!(
                f,
                "network link parameters must be finite and non-negative, got {v}"
            ),
            ConfigError::BadDropProbability(v) => {
                write!(f, "network drop probability must lie in [0, 1], got {v}")
            }
            ConfigError::BadCodecFraction(v) => {
                write!(f, "codec kept fraction k_frac must lie in (0, 1], got {v}")
            }
            ConfigError::NoSyncPeriod => write!(
                f,
                "full_sync_every must be at least one round (None = never full-sync)"
            ),
            ConfigError::BadPartitionRule {
                from_round,
                until_round,
                device_begin,
                device_end,
            } => write!(
                f,
                "partition rule needs from_round < until_round and \
                 device_begin < device_end <= fleet size, got rounds \
                 [{from_round}, {until_round}) over devices \
                 [{device_begin}, {device_end})"
            ),
            ConfigError::BadAdversaryFraction(v) => write!(
                f,
                "adversary role fractions must each lie in [0, 1] and sum \
                 to at most 1, got {v}"
            ),
            ConfigError::BadScaleFactor(v) => write!(
                f,
                "adversary scale_factor must be finite, nonzero and \
                 |factor| <= 1e6, got {v}"
            ),
            ConfigError::BadTrimFraction(v) => write!(
                f,
                "trimmed-mean trim fraction must lie in [0, 0.5), got {v}"
            ),
            ConfigError::FlatOnlyAggregator { algorithm, shards } => write!(
                f,
                "{algorithm} is flat-only (no exact per-shard combine \
                 exists) and cannot run with shards = {shards}; use \
                 shards = 1"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl SimConfig {
    /// Checks the configuration for the inconsistencies [`ConfigError`]
    /// enumerates. Runs automatically in [`SimBuilder::build`] and on
    /// every spec-file load.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_devices == 0 {
            return Err(ConfigError::NoDevices);
        }
        if self.params.batch_size == 0
            || self.params.local_epochs == 0
            || self.params.num_participants == 0
        {
            return Err(ConfigError::ZeroGlobalParam);
        }
        if self.params.num_participants > self.num_devices {
            return Err(ConfigError::ParticipantsExceedFleet {
                participants: self.params.num_participants,
                devices: self.num_devices,
            });
        }
        if self.samples_per_device == 0 {
            return Err(ConfigError::NoSamples);
        }
        if self.test_samples == 0 {
            return Err(ConfigError::NoTestSamples);
        }
        if self.max_rounds == 0 {
            return Err(ConfigError::NoRounds);
        }
        if self.shards == 0 {
            return Err(ConfigError::NoShards);
        }
        if !self.straggler_deadline_factor.is_finite() || self.straggler_deadline_factor < 1.0 {
            return Err(ConfigError::BadDeadlineFactor(
                self.straggler_deadline_factor,
            ));
        }
        if let Some(target) = self.target_accuracy {
            // Targets above 1 are allowed on purpose: they mean "never
            // converge", which the figure sweeps use to record the full
            // horizon.
            if !target.is_finite() || target <= 0.0 {
                return Err(ConfigError::BadTargetAccuracy(target));
            }
        }
        if let Fidelity::RealTraining { lr, eval_samples } = self.fidelity {
            if !lr.is_finite() || lr <= 0.0 {
                return Err(ConfigError::BadLearningRate(lr));
            }
            if eval_samples == 0 {
                return Err(ConfigError::NoEvalSamples);
            }
        }
        if let DataDistribution::NonIid {
            fraction_non_iid,
            alpha,
        } = self.distribution
        {
            if !(0.0..=1.0).contains(&fraction_non_iid) || !alpha.is_finite() || alpha <= 0.0 {
                return Err(ConfigError::BadDistribution {
                    fraction_non_iid,
                    alpha,
                });
            }
        }
        for p in [
            self.scenario.interference_prob,
            self.scenario.weak_network_prob,
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(ConfigError::BadVarianceProbability(p));
            }
        }
        if let Some(fleet) = &self.fleet {
            for p in [
                fleet.charge_prob,
                fleet.foreground_prob,
                fleet.offline_prob,
                fleet.mid_round_drop_prob,
            ] {
                if !(0.0..=1.0).contains(&p) {
                    return Err(ConfigError::BadFleetProbability(p));
                }
            }
            let soc = |v: f64| (0.0..=1.0).contains(&v);
            if !soc(fleet.initial_soc_min)
                || !soc(fleet.initial_soc_max)
                || fleet.initial_soc_min > fleet.initial_soc_max
            {
                return Err(ConfigError::BadSocRange {
                    low: fleet.initial_soc_min,
                    high: fleet.initial_soc_max,
                });
            }
            if !soc(fleet.reserve_soc) || !soc(fleet.min_soc) || fleet.reserve_soc > fleet.min_soc {
                return Err(ConfigError::BadSocRange {
                    low: fleet.reserve_soc,
                    high: fleet.min_soc,
                });
            }
            for r in [
                fleet.charge_rate_per_s,
                fleet.idle_drain_per_s,
                fleet.heat_per_s,
                fleet.cool_per_s,
            ] {
                if !r.is_finite() || r < 0.0 {
                    return Err(ConfigError::BadFleetRate(r));
                }
            }
            if !fleet.battery_capacity_scale.is_finite() || fleet.battery_capacity_scale <= 0.0 {
                return Err(ConfigError::BadFleetRate(fleet.battery_capacity_scale));
            }
            match fleet.straggler {
                StragglerPolicy::Drop => {}
                StragglerPolicy::WaitBounded { grace } => {
                    if !grace.is_finite() || grace < 1.0 {
                        return Err(ConfigError::BadWaitFactor(grace));
                    }
                }
                StragglerPolicy::OverSelect { extra } => {
                    let selected = self.params.num_participants.saturating_add(extra);
                    if selected > self.num_devices {
                        return Err(ConfigError::OverSelectExceedsFleet {
                            selected,
                            devices: self.num_devices,
                        });
                    }
                }
            }
        }
        if let Some(rt) = &self.runtime {
            if rt.buffer_size == Some(0) {
                return Err(ConfigError::NoBufferCapacity);
            }
            if !rt.staleness_exponent.is_finite() || rt.staleness_exponent < 0.0 {
                return Err(ConfigError::BadStalenessExponent(rt.staleness_exponent));
            }
            if rt.concurrent_cohorts == 0 {
                return Err(ConfigError::NoConcurrency);
            }
        }
        if let Some(net) = &self.network {
            for v in [
                net.link.latency_mean_s,
                net.link.latency_std_s,
                net.link.weak_latency_factor,
                net.link.weak_drop_factor,
            ] {
                if !v.is_finite() || v < 0.0 {
                    return Err(ConfigError::BadLinkParameter(v));
                }
            }
            if !(0.0..=1.0).contains(&net.link.drop_prob) {
                return Err(ConfigError::BadDropProbability(net.link.drop_prob));
            }
            match net.codec {
                CodecSpec::Identity | CodecSpec::Int8Quant => {}
                CodecSpec::TopK { k_frac } | CodecSpec::TopKInt8 { k_frac } => {
                    if !k_frac.is_finite() || k_frac <= 0.0 || k_frac > 1.0 {
                        return Err(ConfigError::BadCodecFraction(k_frac));
                    }
                }
            }
            if net.full_sync_every == Some(0) {
                return Err(ConfigError::NoSyncPeriod);
            }
            for rule in &net.partitions.rules {
                if rule.from_round >= rule.until_round
                    || rule.device_begin >= rule.device_end
                    || rule.device_end > self.num_devices
                {
                    return Err(ConfigError::BadPartitionRule {
                        from_round: rule.from_round,
                        until_round: rule.until_round,
                        device_begin: rule.device_begin,
                        device_end: rule.device_end,
                    });
                }
            }
        }
        if let AggregationAlgorithm::TrimmedMean { trim } = self.algorithm {
            if !trim.is_finite() || !(0.0..0.5).contains(&trim) {
                return Err(ConfigError::BadTrimFraction(trim));
            }
        }
        if !self.algorithm.exact_sharded() && self.shards > 1 {
            return Err(ConfigError::FlatOnlyAggregator {
                algorithm: self.algorithm.name(),
                shards: self.shards,
            });
        }
        if let Some(adv) = &self.adversary {
            let fractions = [
                adv.poisoner_fraction,
                adv.scaler_fraction,
                adv.free_rider_fraction,
                adv.faulty_sensor_fraction,
            ];
            for f in fractions {
                if !f.is_finite() || !(0.0..=1.0).contains(&f) {
                    return Err(ConfigError::BadAdversaryFraction(f));
                }
            }
            let total: f64 = fractions.iter().sum();
            if total > 1.0 {
                return Err(ConfigError::BadAdversaryFraction(total));
            }
            let s = adv.scale_factor;
            if !s.is_finite() || s == 0.0 || s.abs() > 1e6 {
                return Err(ConfigError::BadScaleFactor(s));
            }
        }
        Ok(())
    }
}

/// Fluent, validating constructor for [`Simulation`]s — see the
/// [module-level example](self).
#[derive(Debug, Clone)]
pub struct SimBuilder {
    config: SimConfig,
}

impl SimBuilder {
    /// Starts from the paper-shaped defaults for `workload`
    /// ([`SimConfig::paper_default`]).
    pub fn new(workload: Workload) -> Self {
        SimBuilder {
            config: SimConfig::paper_default(workload),
        }
    }

    /// Fleet size `N` (the paper's 15/35/50% tier mix is kept at any
    /// scale).
    #[must_use]
    pub fn devices(mut self, n: usize) -> Self {
        self.config.num_devices = n;
        self
    }

    /// Number of contiguous device shards for the per-device stores and
    /// the hierarchical aggregation tree (default 1). Purely a layout /
    /// parallelism knob: results are bit-identical at every value.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// The `(B, E, K)` global parameters.
    #[must_use]
    pub fn params(mut self, params: GlobalParams) -> Self {
        self.config.params = params;
        self
    }

    /// Data heterogeneity scenario.
    #[must_use]
    pub fn distribution(mut self, distribution: DataDistribution) -> Self {
        self.config.distribution = distribution;
        self
    }

    /// Runtime-variance scenario.
    #[must_use]
    pub fn scenario(mut self, scenario: VarianceScenario) -> Self {
        self.config.scenario = scenario;
        self
    }

    /// Enables stochastic fleet dynamics (battery, thermal, churn,
    /// mid-round dropout) with the given block.
    #[must_use]
    pub fn fleet_dynamics(mut self, dynamics: FleetDynamics) -> Self {
        self.config.fleet = Some(dynamics);
        self
    }

    /// Disables fleet dynamics (the default): a static, always-available
    /// fleet.
    #[must_use]
    pub fn static_fleet(mut self) -> Self {
        self.config.fleet = None;
        self
    }

    /// Routes the simulation through the event-driven scheduler
    /// ([`crate::runtime`]) with the given runtime block.
    /// [`AsyncRuntime::barrier`] reproduces the lockstep engine bit for
    /// bit; [`AsyncRuntime::buffered`] enables FedBuff-style
    /// staleness-weighted aggregation.
    #[must_use]
    pub fn runtime(mut self, runtime: AsyncRuntime) -> Self {
        self.config.runtime = Some(runtime);
        self
    }

    /// Restores the classic lockstep round loop (the default).
    #[must_use]
    pub fn lockstep(mut self) -> Self {
        self.config.runtime = None;
        self
    }

    /// Attaches a network fabric ([`crate::fabric`]) between dispatch and
    /// aggregation: per-device link latency and loss, scripted partitions,
    /// and a communication-efficient update codec with exact byte
    /// accounting.
    #[must_use]
    pub fn network(mut self, fabric: NetworkFabric) -> Self {
        self.config.network = Some(fabric);
        self
    }

    /// Removes the network fabric (the default): instantaneous, lossless
    /// links and uncompressed updates, bit-identical to the pre-fabric
    /// engine.
    #[must_use]
    pub fn no_network(mut self) -> Self {
        self.config.network = None;
        self
    }

    /// Installs the adversary subsystem: a fraction of the fleet plays
    /// one of the roles in [`crate::adversary::AdversaryRole`], driven on
    /// dedicated tagged RNG streams so results stay bit-reproducible at
    /// any thread or shard count.
    #[must_use]
    pub fn adversary(mut self, adversary: AdversaryConfig) -> Self {
        self.config.adversary = Some(adversary);
        self
    }

    /// Removes the adversary subsystem (the default): every device is
    /// honest and the engine is bit-identical to the pre-adversary tree.
    #[must_use]
    pub fn no_adversary(mut self) -> Self {
        self.config.adversary = None;
        self
    }

    /// Aggregation algorithm.
    #[must_use]
    pub fn algorithm(mut self, algorithm: AggregationAlgorithm) -> Self {
        self.config.algorithm = algorithm;
        self
    }

    /// Accuracy engine (surrogate or real training).
    #[must_use]
    pub fn fidelity(mut self, fidelity: Fidelity) -> Self {
        self.config.fidelity = fidelity;
        self
    }

    /// Mean local training samples per device.
    #[must_use]
    pub fn samples_per_device(mut self, n: usize) -> Self {
        self.config.samples_per_device = n;
        self
    }

    /// Held-out test samples.
    #[must_use]
    pub fn test_samples(mut self, n: usize) -> Self {
        self.config.test_samples = n;
        self
    }

    /// Round deadline as a multiple of the cohort's median completion
    /// time.
    #[must_use]
    pub fn straggler_deadline_factor(mut self, factor: f64) -> Self {
        self.config.straggler_deadline_factor = factor;
        self
    }

    /// Convergence target; values above 1 never trigger, recording the
    /// full horizon.
    #[must_use]
    pub fn target_accuracy(mut self, target: f64) -> Self {
        self.config.target_accuracy = Some(target);
        self
    }

    /// Restores the workload profile's default convergence target.
    #[must_use]
    pub fn default_target(mut self) -> Self {
        self.config.target_accuracy = None;
        self
    }

    /// Maximum rounds to simulate.
    #[must_use]
    pub fn max_rounds(mut self, rounds: usize) -> Self {
        self.config.max_rounds = rounds;
        self
    }

    /// Master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validates and returns the configuration without building the
    /// simulation (useful for sweeps that clone one base config).
    pub fn build_config(self) -> Result<SimConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }

    /// Validates the configuration and builds the simulation.
    pub fn build(self) -> Result<Simulation, ConfigError> {
        self.build_config().map(Simulation::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper_default() {
        let built = SimBuilder::new(Workload::CnnMnist)
            .build_config()
            .expect("defaults are valid");
        assert_eq!(built, SimConfig::paper_default(Workload::CnnMnist));
    }

    #[test]
    fn builder_reproduces_hand_built_configs_exactly() {
        let mut by_hand = SimConfig::paper_default(Workload::CnnMnist);
        by_hand.scenario = VarianceScenario::with_interference();
        by_hand.max_rounds = 400;
        by_hand.seed = 9;
        let built = Simulation::builder(Workload::CnnMnist)
            .scenario(VarianceScenario::with_interference())
            .max_rounds(400)
            .seed(9)
            .build_config()
            .expect("valid");
        assert_eq!(built, by_hand);
    }

    #[test]
    fn zero_devices_is_rejected() {
        let err = Simulation::builder(Workload::TinyTest)
            .devices(0)
            .build_config()
            .unwrap_err();
        assert_eq!(err, ConfigError::NoDevices);
    }

    #[test]
    fn oversubscribed_k_is_rejected() {
        let err = Simulation::builder(Workload::TinyTest)
            .devices(10)
            .params(GlobalParams::new(8, 1, 20))
            .build_config()
            .unwrap_err();
        assert!(matches!(err, ConfigError::ParticipantsExceedFleet { .. }));
    }

    #[test]
    fn bad_deadline_and_target_are_rejected() {
        assert!(matches!(
            Simulation::builder(Workload::TinyTest)
                .straggler_deadline_factor(0.5)
                .build_config(),
            Err(ConfigError::BadDeadlineFactor(_))
        ));
        assert!(matches!(
            Simulation::builder(Workload::TinyTest)
                .target_accuracy(-0.1)
                .build_config(),
            Err(ConfigError::BadTargetAccuracy(_))
        ));
        // Above-1 targets are the "record the full horizon" idiom.
        assert!(Simulation::builder(Workload::TinyTest)
            .target_accuracy(1.1)
            .build_config()
            .is_ok());
    }

    #[test]
    fn real_training_knobs_are_checked() {
        assert!(matches!(
            Simulation::builder(Workload::TinyTest)
                .fidelity(Fidelity::RealTraining {
                    lr: 0.0,
                    eval_samples: 16,
                })
                .build_config(),
            Err(ConfigError::BadLearningRate(_))
        ));
        assert!(matches!(
            Simulation::builder(Workload::TinyTest)
                .fidelity(Fidelity::RealTraining {
                    lr: 0.1,
                    eval_samples: 0,
                })
                .build_config(),
            Err(ConfigError::NoEvalSamples)
        ));
    }

    /// Every [`ConfigError`] variant is reachable through validation and
    /// renders a non-empty, value-carrying message — no dead variants, no
    /// silent accepts.
    #[test]
    fn every_config_error_variant_is_reachable_and_displayed() {
        let base = SimConfig::tiny_test(1);
        let with_fleet = |f: fn(&mut FleetDynamics)| {
            let mut cfg = base.clone();
            let mut dynamics = FleetDynamics::realistic();
            f(&mut dynamics);
            cfg.fleet = Some(dynamics);
            cfg
        };
        let with_net = |f: fn(&mut NetworkFabric)| {
            let mut cfg = base.clone();
            let mut fabric = NetworkFabric::ideal();
            f(&mut fabric);
            cfg.network = Some(fabric);
            cfg
        };
        let cases: Vec<(SimConfig, ConfigError)> = vec![
            (
                {
                    let mut c = base.clone();
                    c.num_devices = 0;
                    c
                },
                ConfigError::NoDevices,
            ),
            (
                {
                    let mut c = base.clone();
                    c.params.num_participants = 99;
                    c
                },
                ConfigError::ParticipantsExceedFleet {
                    participants: 99,
                    devices: base.num_devices,
                },
            ),
            (
                {
                    let mut c = base.clone();
                    c.params.batch_size = 0;
                    c
                },
                ConfigError::ZeroGlobalParam,
            ),
            (
                {
                    let mut c = base.clone();
                    c.params.local_epochs = 0;
                    c
                },
                ConfigError::ZeroGlobalParam,
            ),
            (
                {
                    let mut c = base.clone();
                    c.samples_per_device = 0;
                    c
                },
                ConfigError::NoSamples,
            ),
            (
                {
                    let mut c = base.clone();
                    c.test_samples = 0;
                    c
                },
                ConfigError::NoTestSamples,
            ),
            (
                {
                    let mut c = base.clone();
                    c.max_rounds = 0;
                    c
                },
                ConfigError::NoRounds,
            ),
            (
                {
                    let mut c = base.clone();
                    c.shards = 0;
                    c
                },
                ConfigError::NoShards,
            ),
            (
                {
                    let mut c = base.clone();
                    c.straggler_deadline_factor = f64::NAN;
                    c
                },
                ConfigError::BadDeadlineFactor(f64::NAN),
            ),
            (
                {
                    let mut c = base.clone();
                    c.target_accuracy = Some(0.0);
                    c
                },
                ConfigError::BadTargetAccuracy(0.0),
            ),
            (
                {
                    let mut c = base.clone();
                    c.fidelity = Fidelity::RealTraining {
                        lr: -1.0,
                        eval_samples: 8,
                    };
                    c
                },
                ConfigError::BadLearningRate(-1.0),
            ),
            (
                {
                    let mut c = base.clone();
                    c.fidelity = Fidelity::RealTraining {
                        lr: 0.1,
                        eval_samples: 0,
                    };
                    c
                },
                ConfigError::NoEvalSamples,
            ),
            (
                {
                    let mut c = base.clone();
                    c.distribution = DataDistribution::NonIid {
                        fraction_non_iid: -0.2,
                        alpha: 0.1,
                    };
                    c
                },
                ConfigError::BadDistribution {
                    fraction_non_iid: -0.2,
                    alpha: 0.1,
                },
            ),
            (
                {
                    let mut c = base.clone();
                    c.scenario.weak_network_prob = 1.5;
                    c
                },
                ConfigError::BadVarianceProbability(1.5),
            ),
            (
                with_fleet(|f| f.mid_round_drop_prob = -0.1),
                ConfigError::BadFleetProbability(-0.1),
            ),
            (
                with_fleet(|f| {
                    f.initial_soc_min = 0.9;
                    f.initial_soc_max = 0.2;
                }),
                ConfigError::BadSocRange {
                    low: 0.9,
                    high: 0.2,
                },
            ),
            (
                with_fleet(|f| {
                    f.reserve_soc = 0.5;
                    f.min_soc = 0.1;
                }),
                ConfigError::BadSocRange {
                    low: 0.5,
                    high: 0.1,
                },
            ),
            (
                with_fleet(|f| f.charge_rate_per_s = -1e-3),
                ConfigError::BadFleetRate(-1e-3),
            ),
            (
                with_fleet(|f| f.battery_capacity_scale = 0.0),
                ConfigError::BadFleetRate(0.0),
            ),
            (
                with_fleet(|f| f.straggler = StragglerPolicy::WaitBounded { grace: 0.5 }),
                ConfigError::BadWaitFactor(0.5),
            ),
            (
                with_fleet(|f| f.straggler = StragglerPolicy::OverSelect { extra: 1000 }),
                ConfigError::OverSelectExceedsFleet {
                    selected: 1004,
                    devices: base.num_devices,
                },
            ),
            (
                {
                    let mut c = base.clone();
                    c.runtime = Some(AsyncRuntime::buffered(0, 0.5));
                    c
                },
                ConfigError::NoBufferCapacity,
            ),
            (
                {
                    let mut c = base.clone();
                    c.runtime = Some(AsyncRuntime::buffered(4, f64::NAN));
                    c
                },
                ConfigError::BadStalenessExponent(f64::NAN),
            ),
            (
                {
                    let mut c = base.clone();
                    c.runtime = Some(AsyncRuntime::barrier().concurrent_cohorts(0));
                    c
                },
                ConfigError::NoConcurrency,
            ),
            (
                with_net(|n| n.link.latency_mean_s = -0.5),
                ConfigError::BadLinkParameter(-0.5),
            ),
            (
                with_net(|n| n.link.drop_prob = 1.5),
                ConfigError::BadDropProbability(1.5),
            ),
            (
                with_net(|n| n.codec = CodecSpec::TopK { k_frac: 0.0 }),
                ConfigError::BadCodecFraction(0.0),
            ),
            (
                with_net(|n| n.full_sync_every = Some(0)),
                ConfigError::NoSyncPeriod,
            ),
            (
                with_net(|n| {
                    n.partitions =
                        crate::fabric::PartitionSchedule::single(crate::fabric::PartitionRule {
                            from_round: 5,
                            until_round: 5,
                            device_begin: 0,
                            device_end: 4,
                        })
                }),
                ConfigError::BadPartitionRule {
                    from_round: 5,
                    until_round: 5,
                    device_begin: 0,
                    device_end: 4,
                },
            ),
            (
                {
                    let mut c = base.clone();
                    let mut adv = AdversaryConfig::poisoning(0.3);
                    adv.poisoner_fraction = -0.1;
                    c.adversary = Some(adv);
                    c
                },
                ConfigError::BadAdversaryFraction(-0.1),
            ),
            (
                {
                    let mut c = base.clone();
                    let mut adv = AdversaryConfig::poisoning(0.6);
                    adv.free_rider_fraction = 0.6;
                    c.adversary = Some(adv);
                    c
                },
                ConfigError::BadAdversaryFraction(1.2),
            ),
            (
                {
                    let mut c = base.clone();
                    let mut adv = AdversaryConfig::poisoning(0.3);
                    adv.scale_factor = 0.0;
                    c.adversary = Some(adv);
                    c
                },
                ConfigError::BadScaleFactor(0.0),
            ),
            (
                {
                    let mut c = base.clone();
                    c.algorithm = AggregationAlgorithm::TrimmedMean { trim: 0.5 };
                    c
                },
                ConfigError::BadTrimFraction(0.5),
            ),
            (
                {
                    let mut c = base.clone();
                    c.algorithm = AggregationAlgorithm::Krum;
                    c.shards = 4;
                    c
                },
                ConfigError::FlatOnlyAggregator {
                    algorithm: "Krum",
                    shards: 4,
                },
            ),
        ];
        for (config, expected) in cases {
            let err = config.validate().expect_err(&format!("{expected:?}"));
            // NaN payloads compare unequal; match on the discriminant
            // formatting instead.
            assert_eq!(
                std::mem::discriminant(&err),
                std::mem::discriminant(&expected),
                "got {err:?}, expected {expected:?}"
            );
            assert!(!err.to_string().is_empty(), "{err:?} renders empty");
        }
    }

    #[test]
    fn fleet_dynamics_defaults_validate_and_builder_roundtrips() {
        let cfg = Simulation::builder(Workload::TinyTest)
            .fleet_dynamics(FleetDynamics::realistic())
            .build_config()
            .expect("realistic dynamics are valid");
        assert_eq!(cfg.fleet, Some(FleetDynamics::realistic()));
        let cfg = Simulation::builder(Workload::TinyTest)
            .fleet_dynamics(FleetDynamics::realistic())
            .static_fleet()
            .build_config()
            .expect("static fleet is valid");
        assert_eq!(cfg.fleet, None);
    }

    #[test]
    fn overselect_boundary_matches_the_engine_clamp() {
        // K + extra == N is the largest provisioning validation accepts;
        // the engine's dispatch clamp then binds only on the *eligible*
        // pool under fleet dynamics, never on the fleet size — so
        // validation and runtime agree at the boundary.
        let at = |devices: usize, k: usize, extra: usize| {
            Simulation::builder(Workload::TinyTest)
                .devices(devices)
                .params(GlobalParams::new(8, 1, k))
                .fleet_dynamics(
                    FleetDynamics::realistic().straggler(StragglerPolicy::OverSelect { extra }),
                )
                .build_config()
        };
        assert!(at(12, 8, 4).is_ok(), "K + extra == N must validate");
        assert_eq!(
            at(12, 8, 5).unwrap_err(),
            ConfigError::OverSelectExceedsFleet {
                selected: 13,
                devices: 12,
            }
        );
    }

    #[test]
    fn runtime_block_validates_and_builder_roundtrips() {
        let cfg = Simulation::builder(Workload::TinyTest)
            .runtime(AsyncRuntime::buffered(4, 0.5).concurrent_cohorts(2))
            .build_config()
            .expect("buffered runtime is valid");
        assert_eq!(
            cfg.runtime,
            Some(AsyncRuntime::buffered(4, 0.5).concurrent_cohorts(2))
        );
        let cfg = Simulation::builder(Workload::TinyTest)
            .runtime(AsyncRuntime::barrier())
            .lockstep()
            .build_config()
            .expect("lockstep is valid");
        assert_eq!(cfg.runtime, None);
    }

    #[test]
    fn network_block_validates_and_builder_roundtrips() {
        let fabric = NetworkFabric::new(crate::fabric::LinkModel::calm())
            .with_codec(CodecSpec::TopK { k_frac: 0.1 })
            .with_full_sync(25);
        let cfg = Simulation::builder(Workload::TinyTest)
            .network(fabric.clone())
            .build_config()
            .expect("calm fabric with TopK is valid");
        assert_eq!(cfg.network, Some(fabric));
        let cfg = Simulation::builder(Workload::TinyTest)
            .network(NetworkFabric::ideal())
            .no_network()
            .build_config()
            .expect("no_network is valid");
        assert_eq!(cfg.network, None);
        // Partition spans past the fleet are rejected, in-fleet spans pass.
        let rule = |end| crate::fabric::PartitionRule {
            from_round: 2,
            until_round: 6,
            device_begin: 0,
            device_end: end,
        };
        let at = |end| {
            Simulation::builder(Workload::TinyTest)
                .network(
                    NetworkFabric::ideal()
                        .with_partitions(crate::fabric::PartitionSchedule::single(rule(end))),
                )
                .build_config()
        };
        let devices = SimConfig::paper_default(Workload::TinyTest).num_devices;
        assert!(at(devices).is_ok(), "span reaching exactly N must validate");
        assert!(matches!(
            at(devices + 1),
            Err(ConfigError::BadPartitionRule { .. })
        ));
    }

    #[test]
    fn adversary_block_validates_and_builder_roundtrips() {
        let adv = AdversaryConfig::mixed(0.3);
        let cfg = Simulation::builder(Workload::TinyTest)
            .adversary(adv)
            .algorithm(AggregationAlgorithm::Median)
            .build_config()
            .expect("a mixed 30% adversary under Median is valid");
        assert_eq!(cfg.adversary, Some(adv));
        let cfg = Simulation::builder(Workload::TinyTest)
            .adversary(adv)
            .no_adversary()
            .build_config()
            .expect("no_adversary is valid");
        assert_eq!(cfg.adversary, None);
        // Krum is flat-only; one shard passes, several are rejected.
        let at = |shards| {
            Simulation::builder(Workload::TinyTest)
                .algorithm(AggregationAlgorithm::Krum)
                .shards(shards)
                .build_config()
        };
        assert!(at(1).is_ok(), "Krum at shards = 1 must validate");
        assert!(matches!(
            at(2),
            Err(ConfigError::FlatOnlyAggregator {
                algorithm: "Krum",
                shards: 2,
            })
        ));
    }

    #[test]
    fn malformed_deserialized_configs_are_caught() {
        // Bypasses GlobalParams::new, as a hand-edited spec file would.
        let mut cfg = SimConfig::tiny_test(1);
        cfg.params.num_participants = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroGlobalParam));

        let mut cfg = SimConfig::tiny_test(1);
        cfg.distribution = DataDistribution::NonIid {
            fraction_non_iid: 1.5,
            alpha: 0.1,
        };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadDistribution { .. })
        ));
    }
}

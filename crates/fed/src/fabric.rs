//! The deterministic network fabric between dispatch and aggregation:
//! per-device link model (tier- and signal-conditioned latency, message
//! loss), scripted network partitions, and communication-efficient update
//! codecs with exact byte accounting.
//!
//! Attach a [`NetworkFabric`] to a simulation through
//! [`crate::builder::SimBuilder::network`] (or
//! [`crate::engine::SimConfig::network`] on a profile). `None` — the
//! default — bypasses every fabric code path and reproduces pre-fabric
//! runs bit for bit.
//!
//! Every stochastic draw follows the workspace determinism contract
//! (`docs/determinism.md`): link draws come from per-device streams
//! seeded `(seed, TAG_NET, round, id)`, codec stochastic rounding from
//! `(seed, TAG_CODEC, round, id)`, so results are bit-identical at any
//! `AUTOFL_THREADS` or shard count. See `docs/network-fabric.md`.

use crate::fleet::{device_stream_seed, TAG_CODEC, TAG_NET};
use autofl_device::tier::DeviceTier;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-message link behaviour: a latency draw added to a participant's
/// completion time plus a loss coin that discards its upload.
///
/// Latency is Gaussian `N(latency_mean_s, latency_std_s²)` clamped to
/// ≥ 0, scaled by the device tier (low-end radios and distant cells are
/// slower) and by [`LinkModel::weak_latency_factor`] when the device's
/// signal is weak this round. The loss probability is
/// `drop_prob × weak_drop_factor` under weak signal (clamped to `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Mean one-way link latency in seconds.
    pub latency_mean_s: f64,
    /// Standard deviation of the latency draw in seconds.
    pub latency_std_s: f64,
    /// Multiplier on the latency draw under weak signal.
    pub weak_latency_factor: f64,
    /// Per-upload loss probability under strong signal, in `[0, 1]`.
    pub drop_prob: f64,
    /// Multiplier on `drop_prob` under weak signal (the product is
    /// clamped to `[0, 1]`).
    pub weak_drop_factor: f64,
}

impl LinkModel {
    /// A perfect link: zero latency, zero loss. With the identity codec
    /// this isolates pure-codec effects in experiments.
    pub fn ideal() -> Self {
        LinkModel {
            latency_mean_s: 0.0,
            latency_std_s: 0.0,
            weak_latency_factor: 1.0,
            drop_prob: 0.0,
            weak_drop_factor: 1.0,
        }
    }

    /// A well-behaved in-the-field link: sub-second latencies, rare loss.
    pub fn calm() -> Self {
        LinkModel {
            latency_mean_s: 0.08,
            latency_std_s: 0.03,
            weak_latency_factor: 2.0,
            drop_prob: 0.002,
            weak_drop_factor: 3.0,
        }
    }

    /// A realistic cellular/Wi-Fi mix: noticeable latency tails and a
    /// few-percent loss rate that weak signal amplifies.
    pub fn realistic() -> Self {
        LinkModel {
            latency_mean_s: 0.25,
            latency_std_s: 0.10,
            weak_latency_factor: 3.0,
            drop_prob: 0.02,
            weak_drop_factor: 4.0,
        }
    }

    /// Tier scaling of the latency draw (cheaper radios, worse antennas).
    pub fn tier_latency_factor(tier: DeviceTier) -> f64 {
        match tier {
            DeviceTier::High => 1.0,
            DeviceTier::Mid => 1.2,
            DeviceTier::Low => 1.5,
        }
    }

    /// Draws one participant's link behaviour for a round.
    ///
    /// Exactly two RNG draws are consumed in a fixed order (one standard
    /// normal for latency, one uniform for the loss coin) regardless of
    /// the parameters, so a stream's draw positions never depend on
    /// earlier outcomes.
    pub fn draw(&self, tier: DeviceTier, weak_signal: bool, rng: &mut SmallRng) -> LinkDraw {
        // Standard-normal via Box–Muller on two uniforms would consume a
        // variable draw count in some implementations; the shim's
        // `rand_distr::Normal` is draw-count-stable, but sampling
        // N(0, 1) and scaling keeps this correct even at std = 0.
        let z = rand_distr::Distribution::sample(
            &rand_distr::Normal::new(0.0, 1.0).expect("unit normal"),
            rng,
        );
        let coin = rng.gen::<f64>();
        let weak_factor = if weak_signal {
            self.weak_latency_factor
        } else {
            1.0
        };
        let latency_s = (self.latency_mean_s + self.latency_std_s * z).max(0.0)
            * Self::tier_latency_factor(tier)
            * weak_factor;
        let p = (self.drop_prob
            * if weak_signal {
                self.weak_drop_factor
            } else {
                1.0
            })
        .clamp(0.0, 1.0);
        LinkDraw {
            latency_s,
            dropped: coin < p,
        }
    }
}

/// One participant's sampled link behaviour for a round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDraw {
    /// Extra seconds the upload spends on the wire beyond bandwidth time.
    pub latency_s: f64,
    /// Whether the upload is lost (the device still burned the energy).
    pub dropped: bool,
}

/// One scripted partition: devices `[device_begin, device_end)` are
/// unreachable during rounds `[from_round, until_round)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionRule {
    /// First round (inclusive) the partition is active.
    pub from_round: usize,
    /// First round (exclusive) after the partition heals.
    pub until_round: usize,
    /// First device id (inclusive) inside the partition.
    pub device_begin: usize,
    /// First device id (exclusive) outside the partition.
    pub device_end: usize,
}

impl PartitionRule {
    /// Whether the rule is active in `round`.
    pub fn covers_round(&self, round: usize) -> bool {
        (self.from_round..self.until_round).contains(&round)
    }

    /// Whether the rule makes device `id` unreachable in `round`.
    pub fn isolates(&self, round: usize, id: usize) -> bool {
        self.covers_round(round) && (self.device_begin..self.device_end).contains(&id)
    }
}

/// A script of [`PartitionRule`]s. Devices inside an active rule fail the
/// round's eligibility check-in (they cannot reach the server), flowing
/// into [`crate::fleet::AvailabilityView`] like any other ineligibility.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PartitionSchedule {
    /// The scripted rules; overlapping rules union.
    pub rules: Vec<PartitionRule>,
}

impl PartitionSchedule {
    /// No partitions, ever.
    pub fn none() -> Self {
        PartitionSchedule { rules: Vec::new() }
    }

    /// A schedule with one rule.
    pub fn single(rule: PartitionRule) -> Self {
        PartitionSchedule { rules: vec![rule] }
    }

    /// Whether any rule is active in `round`.
    pub fn is_active(&self, round: usize) -> bool {
        self.rules.iter().any(|r| r.covers_round(round))
    }

    /// Whether device `id` is unreachable in `round`.
    pub fn unreachable(&self, round: usize, id: usize) -> bool {
        self.rules.iter().any(|r| r.isolates(round, id))
    }
}

/// The serializable codec selection of a [`NetworkFabric`].
///
/// This flat enum is the spec-file surface; [`NetworkFabric::build_codec`]
/// lowers it (plus [`NetworkFabric::full_sync_every`]) into the
/// [`UpdateCodec`] object the engine drives, including the
/// [`PeriodicFullSync`] composition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CodecSpec {
    /// No compression: full float32 deltas.
    Identity,
    /// Top-k sparsification: keep the `k_frac` largest-magnitude
    /// coordinates, drop the rest. Encoded as (u32 index, f32 value)
    /// pairs — 8 bytes per survivor.
    TopK {
        /// Fraction of coordinates kept, in `(0, 1]`.
        k_frac: f64,
    },
    /// QSGD-style int8 quantization with stochastic rounding: one byte
    /// per coordinate plus a 4-byte scale.
    Int8Quant,
    /// Top-k sparsification followed by int8 quantization of the
    /// survivors: (u32 index, i8 value) pairs — 5 bytes per survivor —
    /// plus a 4-byte scale.
    TopKInt8 {
        /// Fraction of coordinates kept, in `(0, 1]`.
        k_frac: f64,
    },
}

impl CodecSpec {
    /// Short label for tables and figures.
    pub fn label(&self) -> String {
        match self {
            CodecSpec::Identity => "identity".to_string(),
            CodecSpec::TopK { k_frac } => format!("topk({k_frac})"),
            CodecSpec::Int8Quant => "int8".to_string(),
            CodecSpec::TopKInt8 { k_frac } => format!("topk8({k_frac})"),
        }
    }
}

/// The full network-fabric configuration: link model, update codec (with
/// optional periodic full-sync) and partition schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkFabric {
    /// Per-message latency and loss.
    pub link: LinkModel,
    /// Update compression applied to every uplink.
    pub codec: CodecSpec,
    /// Every `n`-th round (round index divisible by `n`) uploads the
    /// uncompressed update — the periodic full-sync composition that
    /// bounds compression drift. `None` compresses every round.
    pub full_sync_every: Option<usize>,
    /// Scripted partitions isolating sub-fleets for round spans.
    pub partitions: PartitionSchedule,
}

impl NetworkFabric {
    /// A fabric around `link` with no compression and no partitions.
    pub fn new(link: LinkModel) -> Self {
        NetworkFabric {
            link,
            codec: CodecSpec::Identity,
            full_sync_every: None,
            partitions: PartitionSchedule::none(),
        }
    }

    /// A perfect link, no compression, no partitions — the do-nothing
    /// fabric, useful as a base for builder-style composition.
    pub fn ideal() -> Self {
        NetworkFabric::new(LinkModel::ideal())
    }

    /// Returns `self` with `codec` as the uplink codec.
    pub fn with_codec(mut self, codec: CodecSpec) -> Self {
        self.codec = codec;
        self
    }

    /// Returns `self` uploading a full-precision update every `every`
    /// rounds.
    pub fn with_full_sync(mut self, every: usize) -> Self {
        self.full_sync_every = Some(every);
        self
    }

    /// Returns `self` with the partition script `partitions`.
    pub fn with_partitions(mut self, partitions: PartitionSchedule) -> Self {
        self.partitions = partitions;
        self
    }

    /// Lowers the serialized codec selection into the [`UpdateCodec`]
    /// object the engine drives, wrapping it in [`PeriodicFullSync`] when
    /// `full_sync_every` is set.
    pub fn build_codec(&self) -> Box<dyn UpdateCodec> {
        let inner: Box<dyn UpdateCodec> = match self.codec {
            CodecSpec::Identity => Box::new(IdentityCodec),
            CodecSpec::TopK { k_frac } => Box::new(TopK { k_frac }),
            CodecSpec::Int8Quant => Box::new(Int8Quant),
            CodecSpec::TopKInt8 { k_frac } => Box::new(TopKInt8 { k_frac }),
        };
        match self.full_sync_every {
            Some(every) => Box::new(PeriodicFullSync {
                every: every.max(1),
                inner,
            }),
            None => inner,
        }
    }
}

/// The RNG stream of one device's link draws for one round
/// (`TAG_NET` in the `(seed, tag, round, id)` discipline).
pub(crate) fn net_stream(seed: u64, round: usize, id: usize) -> SmallRng {
    SmallRng::seed_from_u64(device_stream_seed(seed, TAG_NET, round as u64, id))
}

/// The RNG stream of one device's codec stochastic rounding for one
/// round (`TAG_CODEC`).
pub(crate) fn codec_stream(seed: u64, round: usize, id: usize) -> SmallRng {
    SmallRng::seed_from_u64(device_stream_seed(seed, TAG_CODEC, round as u64, id))
}

/// A communication-efficient update transform.
///
/// Three views of one codec, kept consistent by the proptests in
/// `tests/network_fabric.rs`:
///
/// * [`UpdateCodec::encoded_bytes`] — the *exact* uplink payload size,
///   wired into the Eq. 3 communication time/energy path;
/// * [`UpdateCodec::transcode`] — the real encode→decode round trip
///   applied to model deltas under `Fidelity::RealTraining`;
/// * [`UpdateCodec::fidelity`] — the surrogate's calibrated
///   update-quality multiplier (1.0 = lossless), applied to survivor
///   update fractions before aggregation under `Fidelity::Surrogate`.
pub trait UpdateCodec: Send + Sync {
    /// Codec name for reports.
    fn name(&self) -> &'static str;

    /// Uplink bytes of one encoded update with `params` coordinates in
    /// round `round`.
    fn encoded_bytes(&self, params: usize, round: usize) -> u64;

    /// The surrogate update-quality multiplier in `(0, 1]` for round
    /// `round`. Exactly `1.0` for lossless rounds, so the multiplication
    /// passes fractions through bit-unchanged.
    fn fidelity(&self, round: usize) -> f64;

    /// Applies the encode→decode round trip to `delta` in place.
    /// `rng` is the device's tagged `TAG_CODEC` stream.
    fn transcode(&self, delta: &mut [f32], round: usize, rng: &mut SmallRng);
}

impl std::fmt::Debug for dyn UpdateCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "UpdateCodec({})", self.name())
    }
}

/// The no-compression codec: 4 bytes per coordinate, lossless.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityCodec;

impl UpdateCodec for IdentityCodec {
    fn name(&self) -> &'static str {
        "identity"
    }

    fn encoded_bytes(&self, params: usize, _round: usize) -> u64 {
        4 * params as u64
    }

    fn fidelity(&self, _round: usize) -> f64 {
        1.0
    }

    fn transcode(&self, _delta: &mut [f32], _round: usize, _rng: &mut SmallRng) {}
}

/// Number of coordinates a top-k codec keeps: `round(k_frac × params)`,
/// at least 1, at most `params`.
pub fn top_k_count(k_frac: f64, params: usize) -> usize {
    ((k_frac * params as f64).round() as usize).clamp(1, params.max(1))
}

/// Zeroes every coordinate of `delta` outside its `k` largest magnitudes
/// (ties broken toward the lower index, matching a stable descending
/// sort), in place. Deterministic: a pure function of its inputs.
fn sparsify_top_k(delta: &mut [f32], k: usize) {
    if k >= delta.len() {
        return;
    }
    let mut order: Vec<usize> = (0..delta.len()).collect();
    let key = |i: usize| (std::cmp::Reverse(ordered_abs(delta[i])), i);
    order.select_nth_unstable_by_key(k - 1, |&i| key(i));
    order.truncate(k);
    let mut keep = vec![false; delta.len()];
    for &i in &order {
        keep[i] = true;
    }
    for (v, kept) in delta.iter_mut().zip(&keep) {
        if !kept {
            *v = 0.0;
        }
    }
}

/// Total-order magnitude key: |v| as a sortable bit pattern (finite
/// floats only; NaNs order last so they are dropped first).
fn ordered_abs(v: f32) -> u32 {
    let bits = v.abs().to_bits();
    if v.is_nan() {
        0
    } else {
        bits
    }
}

/// Quantizes `delta` to int8 with stochastic rounding against the slice's
/// max magnitude, then reconstructs — the decode(encode(x)) round trip.
/// Reconstruction error is at most one quantization step
/// (`scale = max|v| / 127`) per coordinate. Consumes exactly one uniform
/// draw per coordinate (including zeros), keeping stream positions
/// value-independent.
fn int8_round_trip(delta: &mut [f32], rng: &mut SmallRng) {
    let max_abs = delta.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if max_abs == 0.0 || !max_abs.is_finite() {
        for _ in 0..delta.len() {
            let _ = rng.gen::<f64>();
        }
        return;
    }
    let scale = max_abs / 127.0;
    for v in delta.iter_mut() {
        let u = rng.gen::<f64>();
        let x = (*v / scale) as f64;
        let floor = x.floor();
        let frac = x - floor;
        let q = if u < frac { floor + 1.0 } else { floor };
        let q = q.clamp(-127.0, 127.0);
        *v = (q as f32) * scale;
    }
}

/// Top-k sparsification: keep the `k_frac` largest-magnitude
/// coordinates. 8 bytes per survivor (u32 index + f32 value).
#[derive(Debug, Clone, Copy)]
pub struct TopK {
    /// Fraction of coordinates kept, in `(0, 1]`.
    pub k_frac: f64,
}

impl UpdateCodec for TopK {
    fn name(&self) -> &'static str {
        "top-k"
    }

    fn encoded_bytes(&self, params: usize, _round: usize) -> u64 {
        8 * top_k_count(self.k_frac, params) as u64
    }

    fn fidelity(&self, _round: usize) -> f64 {
        // Calibrated so TopK(10%) costs ~1pp of plateau accuracy on the
        // surrogate — consistent with the near-baseline accuracy top-k
        // sparsification reaches in practice at these densities.
        self.k_frac.clamp(0.0, 1.0).powf(0.08)
    }

    fn transcode(&self, delta: &mut [f32], _round: usize, _rng: &mut SmallRng) {
        sparsify_top_k(delta, top_k_count(self.k_frac, delta.len()));
    }
}

/// QSGD-style int8 quantization with stochastic rounding. One byte per
/// coordinate plus a 4-byte scale.
#[derive(Debug, Clone, Copy, Default)]
pub struct Int8Quant;

impl UpdateCodec for Int8Quant {
    fn name(&self) -> &'static str {
        "int8"
    }

    fn encoded_bytes(&self, params: usize, _round: usize) -> u64 {
        params as u64 + 4
    }

    fn fidelity(&self, _round: usize) -> f64 {
        // Stochastic rounding is unbiased; the surrogate charges only the
        // added quantization variance.
        0.99
    }

    fn transcode(&self, delta: &mut [f32], _round: usize, rng: &mut SmallRng) {
        int8_round_trip(delta, rng);
    }
}

/// Top-k sparsification followed by int8 quantization of the survivors:
/// 5 bytes per survivor (u32 index + i8 value) plus a 4-byte scale.
#[derive(Debug, Clone, Copy)]
pub struct TopKInt8 {
    /// Fraction of coordinates kept, in `(0, 1]`.
    pub k_frac: f64,
}

impl UpdateCodec for TopKInt8 {
    fn name(&self) -> &'static str {
        "top-k+int8"
    }

    fn encoded_bytes(&self, params: usize, _round: usize) -> u64 {
        5 * top_k_count(self.k_frac, params) as u64 + 4
    }

    fn fidelity(&self, _round: usize) -> f64 {
        0.99 * self.k_frac.clamp(0.0, 1.0).powf(0.08)
    }

    fn transcode(&self, delta: &mut [f32], _round: usize, rng: &mut SmallRng) {
        sparsify_top_k(delta, top_k_count(self.k_frac, delta.len()));
        int8_round_trip(delta, rng);
    }
}

/// Periodic full-sync composition: every `every`-th round (round index
/// divisible by `every`) uploads the full-precision update; other rounds
/// delegate to `inner`. Bounds compression drift the way periodic
/// synchronization does in communication-efficient FL systems.
#[derive(Debug)]
pub struct PeriodicFullSync {
    /// Full-sync period in rounds (≥ 1).
    pub every: usize,
    /// The codec used on non-sync rounds.
    pub inner: Box<dyn UpdateCodec>,
}

impl PeriodicFullSync {
    /// Whether `round` is a full-precision sync round.
    pub fn is_sync_round(&self, round: usize) -> bool {
        round % self.every.max(1) == 0
    }
}

impl UpdateCodec for PeriodicFullSync {
    fn name(&self) -> &'static str {
        "periodic-full-sync"
    }

    fn encoded_bytes(&self, params: usize, round: usize) -> u64 {
        if self.is_sync_round(round) {
            4 * params as u64
        } else {
            self.inner.encoded_bytes(params, round)
        }
    }

    fn fidelity(&self, round: usize) -> f64 {
        if self.is_sync_round(round) {
            1.0
        } else {
            self.inner.fidelity(round)
        }
    }

    fn transcode(&self, delta: &mut [f32], round: usize, rng: &mut SmallRng) {
        if !self.is_sync_round(round) {
            self.inner.transcode(delta, round, rng);
        }
    }
}

/// Per-round network accounting carried on
/// [`crate::engine::RoundRecord::net`] when a fabric is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RoundNetStats {
    /// Bytes uploaded by participants that transmitted this round:
    /// survivors, partial updates, deadline-cut stragglers (their late
    /// upload is discarded server-side, but it crossed the wire) and
    /// fabric-lost uploads. Only mid-round dropouts never finished
    /// transmitting.
    pub bytes_uplinked: u64,
    /// Bytes broadcast to the cohort (the full model per participant).
    pub bytes_downlinked: u64,
    /// Uploads lost to the link's drop coin this round.
    pub net_drops: usize,
    /// Devices a partition rule made unreachable this round (out of those
    /// that would otherwise have been eligible).
    pub partitioned: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn top_k_keeps_exactly_k_largest_magnitudes() {
        let codec = TopK { k_frac: 0.4 };
        let mut delta = vec![0.1f32, -3.0, 0.2, 2.0, -0.05];
        codec.transcode(&mut delta, 0, &mut rng(1));
        assert_eq!(delta, vec![0.0, -3.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn top_k_tie_break_is_the_lower_index() {
        let mut delta = vec![1.0f32, -1.0, 1.0];
        sparsify_top_k(&mut delta, 2);
        assert_eq!(delta, vec![1.0, -1.0, 0.0]);
    }

    #[test]
    fn int8_round_trip_error_is_bounded_by_one_step() {
        let mut delta: Vec<f32> = (0..257).map(|i| (i as f32 - 128.0) * 0.013).collect();
        let original = delta.clone();
        int8_round_trip(&mut delta, &mut rng(7));
        let scale = original.iter().fold(0.0f32, |m, v| m.max(v.abs())) / 127.0;
        for (a, b) in delta.iter().zip(&original) {
            assert!((a - b).abs() <= scale * (1.0 + 1e-6), "{a} vs {b}");
        }
    }

    #[test]
    fn encoded_bytes_are_exact() {
        let params = 1_000_000;
        assert_eq!(IdentityCodec.encoded_bytes(params, 3), 4_000_000);
        assert_eq!(TopK { k_frac: 0.1 }.encoded_bytes(params, 3), 800_000);
        assert_eq!(Int8Quant.encoded_bytes(params, 3), 1_000_004);
        assert_eq!(TopKInt8 { k_frac: 0.1 }.encoded_bytes(params, 3), 500_004);
    }

    #[test]
    fn top_k_at_ten_percent_is_at_least_five_x() {
        let params = 1_663_370; // CnnMnist reference model / 4 bytes
        let full = IdentityCodec.encoded_bytes(params, 0) as f64;
        let topk = TopK { k_frac: 0.1 }.encoded_bytes(params, 0) as f64;
        assert!(full / topk >= 5.0, "reduction {}", full / topk);
    }

    #[test]
    fn periodic_full_sync_composes() {
        let codec = PeriodicFullSync {
            every: 4,
            inner: Box::new(TopK { k_frac: 0.25 }),
        };
        assert_eq!(codec.encoded_bytes(100, 0), 400);
        assert_eq!(codec.encoded_bytes(100, 1), 8 * 25);
        assert_eq!(codec.encoded_bytes(100, 4), 400);
        assert_eq!(codec.fidelity(0).to_bits(), 1.0f64.to_bits());
        assert!(codec.fidelity(1) < 1.0);
        let mut delta = vec![1.0f32, 0.5, 0.25, 0.125];
        codec.transcode(&mut delta, 0, &mut rng(1));
        assert_eq!(delta, vec![1.0, 0.5, 0.25, 0.125], "sync round is lossless");
    }

    #[test]
    fn fabric_builds_the_composed_codec() {
        let fabric = NetworkFabric::ideal()
            .with_codec(CodecSpec::TopK { k_frac: 0.1 })
            .with_full_sync(10);
        let codec = fabric.build_codec();
        assert_eq!(codec.name(), "periodic-full-sync");
        assert_eq!(codec.encoded_bytes(1000, 0), 4000);
        assert_eq!(codec.encoded_bytes(1000, 5), 800);
    }

    #[test]
    fn partition_rules_cover_their_round_and_device_spans() {
        let schedule = PartitionSchedule::single(PartitionRule {
            from_round: 5,
            until_round: 8,
            device_begin: 10,
            device_end: 20,
        });
        assert!(!schedule.is_active(4));
        assert!(schedule.is_active(5) && schedule.is_active(7));
        assert!(!schedule.is_active(8));
        assert!(schedule.unreachable(6, 10) && schedule.unreachable(6, 19));
        assert!(!schedule.unreachable(6, 9) && !schedule.unreachable(6, 20));
        assert!(!schedule.unreachable(4, 15));
    }

    #[test]
    fn link_draws_are_deterministic_and_weak_signal_hurts() {
        let link = LinkModel::realistic();
        let a = link.draw(DeviceTier::Mid, false, &mut rng(42));
        let b = link.draw(DeviceTier::Mid, false, &mut rng(42));
        assert_eq!(a, b);
        // Same unit-normal draw, so the weak/tier factors scale exactly.
        let strong = link.draw(DeviceTier::High, false, &mut rng(9));
        let weak = link.draw(DeviceTier::High, true, &mut rng(9));
        assert!(weak.latency_s >= strong.latency_s * (link.weak_latency_factor - 1e-9));
    }

    #[test]
    fn ideal_link_is_a_no_op() {
        let link = LinkModel::ideal();
        for seed in 0..50 {
            let d = link.draw(DeviceTier::Low, true, &mut rng(seed));
            assert_eq!(d.latency_s, 0.0);
            assert!(!d.dropped);
        }
    }

    #[test]
    fn codec_fidelity_is_exactly_one_for_identity() {
        assert_eq!(IdentityCodec.fidelity(17).to_bits(), 1.0f64.to_bits());
        let f = TopK { k_frac: 0.1 }.fidelity(0);
        assert!(f > 0.7 && f < 1.0, "fidelity {f}");
    }
}

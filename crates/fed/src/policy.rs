//! The open [`Policy`] abstraction and its [`PolicyRegistry`].
//!
//! A [`crate::selection::Selector`] is *stateful per run* (learning
//! selectors mutate Q-tables, oracles shuffle), so experiments need a
//! factory that can mint a fresh selector for every `(config, seed)`
//! pair. [`Policy`] is that factory, plus a name for reports and an
//! optional global-parameter tuning hook in the spirit of FedGPO (Kim &
//! Wu): a policy may inspect the configuration and adjust `(B, E, K)`
//! before the run starts.
//!
//! The registry replaces the closed enum that used to live in the bench
//! crate: baselines plug in by registering a `Box<dyn Policy>` under a
//! name, and spec files refer to policies *by that name*, so a new
//! baseline needs no changes to the runner binaries.

use crate::clusters::CharacterizationCluster;
use crate::engine::{SimConfig, SimResult, Simulation};
use crate::global::GlobalParams;
use crate::observe::RoundObserver;
use crate::oracle::OracleSelector;
use crate::selection::{ClusterSelector, RandomSelector, Selector};

/// A named, reusable experiment policy: a factory for per-run
/// [`Selector`]s with an optional global-parameter tuning hook.
pub trait Policy: Send + Sync {
    /// Name used in reports, registries and spec files.
    fn name(&self) -> &str;

    /// Mints a fresh selector for one run.
    fn make_selector(&self) -> Box<dyn Selector>;

    /// Optional FedGPO-style hook: inspect the configuration and return
    /// adjusted `(B, E, K)` parameters, or `None` to keep the config's.
    ///
    /// The tuned parameters must keep the configuration valid
    /// ([`SimConfig::validate`]); [`run_policy`] re-validates and panics
    /// otherwise.
    fn tune(&self, config: &SimConfig) -> Option<GlobalParams> {
        let _ = config;
        None
    }
}

impl std::fmt::Debug for dyn Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Policy({})", self.name())
    }
}

/// Runs one policy on one configuration (applying its tuning hook) and
/// labels the result with the policy's name.
pub fn run_policy(config: &SimConfig, policy: &dyn Policy) -> SimResult {
    run_policy_observed(config, policy, &mut []).expect("a run without observers cannot fail")
}

/// Like [`run_policy`], with [`RoundObserver`]s attached to the run. An
/// observer whose writer fails stops the run and surfaces the error.
///
/// # Panics
///
/// Panics if the policy's [`Policy::tune`] hook produces parameters that
/// invalidate the configuration (e.g. `K` larger than the fleet) — the
/// same invariants every other entry path rejects with a
/// [`crate::builder::ConfigError`].
pub fn run_policy_observed(
    config: &SimConfig,
    policy: &dyn Policy,
    observers: &mut [&mut dyn RoundObserver],
) -> std::io::Result<SimResult> {
    let mut config = config.clone();
    if let Some(params) = policy.tune(&config) {
        config.params = params;
        if let Err(e) = config.validate() {
            panic!(
                "policy `{}` tuned an invalid configuration: {e}",
                policy.name()
            );
        }
    }
    let mut selector = policy.make_selector();
    Simulation::new(config).run_labeled(selector.as_mut(), policy.name().to_string(), observers)
}

/// An ordered, name-addressed collection of policies.
///
/// Registration order is preserved (reports iterate it deterministically);
/// lookups are case-insensitive; re-registering a name replaces the
/// previous entry.
///
/// # Examples
///
/// Resolve a baseline by name and run it:
///
/// ```
/// use autofl_fed::engine::SimConfig;
/// use autofl_fed::policy::{baseline_registry, run_policy};
///
/// let registry = baseline_registry();
/// assert!(registry.len() >= 12); // baselines, oracles, clusters C1–C7
/// let policy = registry.expect("fedavg-random"); // case-insensitive
/// let result = run_policy(&SimConfig::tiny_test(1), policy);
/// assert_eq!(result.policy, "FedAvg-Random");
/// ```
///
/// Plug in a custom baseline — no runner binary changes needed:
///
/// ```
/// use autofl_fed::policy::{Policy, PolicyRegistry};
/// use autofl_fed::selection::{RandomSelector, Selector};
///
/// struct MyPolicy;
/// impl Policy for MyPolicy {
///     fn name(&self) -> &str {
///         "MyPolicy"
///     }
///     fn make_selector(&self) -> Box<dyn Selector> {
///         Box::new(RandomSelector::new())
///     }
/// }
///
/// let mut registry = PolicyRegistry::new();
/// registry.register(Box::new(MyPolicy));
/// assert_eq!(registry.names(), ["MyPolicy"]);
/// ```
#[derive(Default)]
pub struct PolicyRegistry {
    entries: Vec<Box<dyn Policy>>,
}

impl std::fmt::Debug for PolicyRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyRegistry")
            .field("policies", &self.names())
            .finish()
    }
}

impl PolicyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PolicyRegistry::default()
    }

    /// Registers a policy under its own name, replacing any previous
    /// policy of the same (case-insensitive) name in place.
    pub fn register(&mut self, policy: Box<dyn Policy>) -> &mut Self {
        let name = policy.name().to_string();
        match self
            .entries
            .iter_mut()
            .find(|p| p.name().eq_ignore_ascii_case(&name))
        {
            Some(slot) => *slot = policy,
            None => self.entries.push(policy),
        }
        self
    }

    /// Looks up a policy by name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&dyn Policy> {
        self.entries
            .iter()
            .find(|p| p.name().eq_ignore_ascii_case(name))
            .map(|p| p.as_ref())
    }

    /// Like [`PolicyRegistry::get`], but panics with the known names — for
    /// binaries whose policy list is a compile-time constant.
    ///
    /// # Panics
    ///
    /// Panics if no policy has that name.
    pub fn expect(&self, name: &str) -> &dyn Policy {
        self.get(name).unwrap_or_else(|| {
            panic!(
                "unknown policy `{name}`; registered: {}",
                self.names().join(", ")
            )
        })
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|p| p.name()).collect()
    }

    /// Iterates the policies in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Policy> {
        self.entries.iter().map(|p| p.as_ref())
    }

    /// Number of registered policies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The FedAvg baseline: uniform random selection at CPU-max.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomPolicy;

impl Policy for RandomPolicy {
    fn name(&self) -> &str {
        "FedAvg-Random"
    }

    fn make_selector(&self) -> Box<dyn Selector> {
        Box::new(RandomSelector::new())
    }
}

/// A fixed Table 4 composition (C1–C7) as a policy.
#[derive(Debug, Clone)]
pub struct ClusterPolicy {
    cluster: CharacterizationCluster,
    label: &'static str,
}

impl ClusterPolicy {
    /// A policy for any fixed cluster, named after it (`"C1"`…`"C7"`).
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is C0 (random has no fixed composition).
    pub fn new(cluster: CharacterizationCluster) -> Self {
        assert!(
            cluster.base_composition().is_some(),
            "C0 is the random baseline; use RandomPolicy"
        );
        ClusterPolicy {
            cluster,
            label: cluster.name(),
        }
    }

    /// The `Performance` policy (all high-end devices, C1).
    pub fn performance() -> Self {
        ClusterPolicy {
            label: "Performance",
            ..ClusterPolicy::new(CharacterizationCluster::C1)
        }
    }

    /// The `Power` policy (all low-end devices, C7).
    pub fn power() -> Self {
        ClusterPolicy {
            label: "Power",
            ..ClusterPolicy::new(CharacterizationCluster::C7)
        }
    }

    /// The cluster this policy realises.
    pub fn cluster(&self) -> CharacterizationCluster {
        self.cluster
    }
}

impl Policy for ClusterPolicy {
    fn name(&self) -> &str {
        self.label
    }

    fn make_selector(&self) -> Box<dyn Selector> {
        Box::new(match self.label {
            "Performance" => ClusterSelector::performance(),
            "Power" => ClusterSelector::power(),
            _ => ClusterSelector::new(self.cluster),
        })
    }
}

/// The oracle baselines `O_participant` and `O_FL`.
#[derive(Debug, Clone, Copy)]
pub struct OraclePolicy {
    full: bool,
}

impl OraclePolicy {
    /// Oracle participant selection at CPU-max.
    pub fn participant() -> Self {
        OraclePolicy { full: false }
    }

    /// Oracle participants plus execution targets and DVFS.
    pub fn full() -> Self {
        OraclePolicy { full: true }
    }
}

impl Policy for OraclePolicy {
    fn name(&self) -> &str {
        if self.full {
            "O_FL"
        } else {
            "O_participant"
        }
    }

    fn make_selector(&self) -> Box<dyn Selector> {
        Box::new(if self.full {
            OracleSelector::full()
        } else {
            OracleSelector::participant()
        })
    }
}

/// Wraps another policy with fixed `(B, E, K)` overrides via the
/// [`Policy::tune`] hook — the declarative way to express "this baseline,
/// but run at S1" in a registry or spec file.
pub struct TunedPolicy {
    label: String,
    params: GlobalParams,
    inner: Box<dyn Policy>,
}

impl std::fmt::Debug for TunedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TunedPolicy")
            .field("label", &self.label)
            .field("params", &self.params)
            .field("inner", &self.inner.name())
            .finish()
    }
}

impl TunedPolicy {
    /// Wraps `inner`, reporting as `label` and forcing `params`.
    pub fn new(label: impl Into<String>, params: GlobalParams, inner: Box<dyn Policy>) -> Self {
        TunedPolicy {
            label: label.into(),
            params,
            inner,
        }
    }
}

impl Policy for TunedPolicy {
    fn name(&self) -> &str {
        &self.label
    }

    fn make_selector(&self) -> Box<dyn Selector> {
        self.inner.make_selector()
    }

    fn tune(&self, _config: &SimConfig) -> Option<GlobalParams> {
        Some(self.params)
    }
}

/// The framework-side baselines: FedAvg-Random, Power, Performance, the
/// two oracles, and every fixed characterization cluster C1–C7 (so
/// cluster sweeps like Figure 4 are expressible as policy names).
///
/// The AutoFL controller lives upstream in `autofl-core`, which layers it
/// on top of this registry as `standard_registry()`.
pub fn baseline_registry() -> PolicyRegistry {
    let mut registry = PolicyRegistry::new();
    registry
        .register(Box::new(RandomPolicy))
        .register(Box::new(ClusterPolicy::power()))
        .register(Box::new(ClusterPolicy::performance()))
        .register(Box::new(OraclePolicy::participant()))
        .register(Box::new(OraclePolicy::full()));
    for cluster in CharacterizationCluster::fixed() {
        registry.register(Box::new(ClusterPolicy::new(cluster)));
    }
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_registry_serves_the_paper_names() {
        let reg = baseline_registry();
        for name in [
            "FedAvg-Random",
            "Power",
            "Performance",
            "O_participant",
            "O_FL",
        ] {
            let policy = reg.get(name).expect(name);
            assert_eq!(policy.name(), name);
            assert_eq!(policy.make_selector().name(), name);
        }
        for cluster in CharacterizationCluster::fixed() {
            assert!(reg.get(cluster.name()).is_some(), "{}", cluster.name());
        }
    }

    #[test]
    fn lookup_is_case_insensitive_and_replace_works() {
        let mut reg = PolicyRegistry::new();
        reg.register(Box::new(RandomPolicy));
        assert!(reg.get("fedavg-random").is_some());
        let before = reg.len();
        reg.register(Box::new(RandomPolicy));
        assert_eq!(reg.len(), before, "re-registration must replace");
    }

    #[test]
    fn tuned_policy_overrides_global_params() {
        let tuned = TunedPolicy::new("Random@S1", GlobalParams::s1(), Box::new(RandomPolicy));
        let mut cfg = SimConfig::tiny_test(1);
        cfg.params = GlobalParams::new(8, 1, 4);
        assert_eq!(tuned.tune(&cfg), Some(GlobalParams::s1()));
        assert_eq!(tuned.name(), "Random@S1");
    }

    #[test]
    fn run_policy_applies_the_tuning_hook() {
        let tuned = TunedPolicy::new(
            "Random-K2",
            GlobalParams::new(8, 1, 2),
            Box::new(RandomPolicy),
        );
        let mut cfg = SimConfig::tiny_test(3);
        cfg.max_rounds = 3;
        cfg.target_accuracy = Some(1.1);
        let result = run_policy(&cfg, &tuned);
        assert_eq!(result.policy, "Random-K2");
        assert!(
            result.records.iter().all(|r| r.participants.len() == 2),
            "tuned K not applied"
        );
    }

    #[test]
    fn untuned_policies_keep_config_params() {
        let cfg = SimConfig::tiny_test(2);
        assert_eq!(RandomPolicy.tune(&cfg), None);
    }

    #[test]
    #[should_panic(expected = "tuned an invalid configuration")]
    fn tune_cannot_invalidate_the_config() {
        // K = 500 on a 12-device fleet: the same inconsistency every
        // other entry path rejects must not sneak in through tune().
        let tuned = TunedPolicy::new("BadK", GlobalParams::new(8, 1, 500), Box::new(RandomPolicy));
        let _ = run_policy(&SimConfig::tiny_test(1), &tuned);
    }

    #[test]
    fn observers_see_the_policy_label_not_the_selector_name() {
        struct CaptureLabel(Option<String>);
        impl RoundObserver for CaptureLabel {
            fn on_converged(&mut self, result: &SimResult) -> std::io::Result<()> {
                self.0 = Some(result.policy.clone());
                Ok(())
            }
        }
        let relabeled = TunedPolicy::new(
            "Random@S-tiny",
            GlobalParams::new(8, 1, 4),
            Box::new(RandomPolicy),
        );
        let mut capture = CaptureLabel(None);
        let result = crate::policy::run_policy_observed(
            &SimConfig::tiny_test(1),
            &relabeled,
            &mut [&mut capture],
        )
        .unwrap();
        assert!(result.converged());
        assert_eq!(result.policy, "Random@S-tiny");
        assert_eq!(capture.0.as_deref(), Some("Random@S-tiny"));
    }
}

//! Declarative experiment specifications.
//!
//! An [`ExperimentSpec`] is a JSON-serializable description of a complete
//! experiment: one [`SimConfig`], the list of policy names to run on it,
//! and a repeat count (repeat `i` runs at `config.seed + i`). Checked-in
//! spec files make every figure reproducible from data rather than code —
//! the `spec_run` binary in `autofl-bench` executes one and prints the
//! same normalised rows the figure binaries report.
//!
//! ```
//! use autofl_fed::engine::SimConfig;
//! use autofl_fed::policy::baseline_registry;
//! use autofl_fed::spec::ExperimentSpec;
//!
//! let spec = ExperimentSpec::new(
//!     "doc-smoke",
//!     SimConfig::tiny_test(1),
//!     ["FedAvg-Random", "Performance"],
//!     1,
//! );
//! let json = spec.to_json();
//! let parsed = ExperimentSpec::from_json(&json).unwrap();
//! assert_eq!(parsed, spec);
//! let runs = parsed.run(&baseline_registry()).unwrap();
//! assert_eq!(runs.len(), 2);
//! ```

use crate::builder::ConfigError;
use crate::engine::{SimConfig, SimResult};
use crate::policy::{run_policy, Policy, PolicyRegistry};
use crate::serve::ConvergeTarget;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A declarative experiment: config × policies × repeats.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Human-readable experiment name (used in report headers).
    pub name: String,
    /// The simulation configuration every policy runs on.
    pub config: SimConfig,
    /// Registry names of the policies to compare, in reporting order.
    pub policies: Vec<String>,
    /// Number of repeats; repeat `i` uses master seed `config.seed + i`.
    pub repeats: usize,
    /// Optional convergence target: when set, the serve daemon wraps
    /// every policy in a [`crate::serve::ConvergenceController`] that
    /// retunes `K` each round toward the target. Ignored by the plain
    /// [`ExperimentSpec::run`] fan-out, which keeps parameters fixed.
    pub control: Option<ConvergeTarget>,
}

// Hand-written (not derived) so `control` is *omitted* when `None`:
// the derive would emit `"control": null` into every regenerated spec
// file, breaking byte-stability of the pre-control files under
// `AUTOFL_REGEN_SPECS`.
impl Serialize for ExperimentSpec {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("name".to_string(), serde::Value::Str(self.name.clone())),
            ("config".to_string(), self.config.to_value()),
            ("policies".to_string(), self.policies.to_value()),
            ("repeats".to_string(), self.repeats.to_value()),
        ];
        if let Some(control) = &self.control {
            fields.push(("control".to_string(), control.to_value()));
        }
        serde::Value::Map(fields)
    }
}

impl Deserialize for ExperimentSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        fn field<T: Deserialize>(value: &serde::Value, name: &str) -> Result<T, serde::Error> {
            T::from_value(serde::field_or_null(value, name)).map_err(|e| e.at(name))
        }
        Ok(ExperimentSpec {
            name: field(value, "name")?,
            config: field(value, "config")?,
            policies: field(value, "policies")?,
            repeats: field(value, "repeats")?,
            control: field(value, "control")?,
        })
    }
}

/// Why a spec could not be loaded or executed.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The JSON text did not parse into a spec.
    Json(serde::Error),
    /// The embedded configuration is inconsistent.
    Config(ConfigError),
    /// A policy name is not in the registry.
    UnknownPolicy {
        /// The name the spec asked for.
        requested: String,
        /// The names the registry knows.
        known: Vec<String>,
    },
    /// The spec lists no policies.
    NoPolicies,
    /// The spec asks for zero repeats.
    NoRepeats,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "spec JSON: {e}"),
            SpecError::Config(e) => write!(f, "spec config: {e}"),
            SpecError::UnknownPolicy { requested, known } => write!(
                f,
                "unknown policy `{requested}`; registered: {}",
                known.join(", ")
            ),
            SpecError::NoPolicies => write!(f, "spec lists no policies"),
            SpecError::NoRepeats => write!(f, "spec asks for zero repeats"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<ConfigError> for SpecError {
    fn from(e: ConfigError) -> Self {
        SpecError::Config(e)
    }
}

/// One completed run of a spec: which policy, which seed, what happened.
#[derive(Debug, Clone)]
pub struct SpecRun {
    /// The policy's registry name.
    pub policy: String,
    /// The master seed of this repeat.
    pub seed: u64,
    /// 0-based repeat index.
    pub repeat: usize,
    /// The simulation outcome.
    pub result: SimResult,
}

impl ExperimentSpec {
    /// Builds a spec from its parts.
    pub fn new<S: Into<String>>(
        name: impl Into<String>,
        config: SimConfig,
        policies: impl IntoIterator<Item = S>,
        repeats: usize,
    ) -> Self {
        ExperimentSpec {
            name: name.into(),
            config,
            policies: policies.into_iter().map(Into::into).collect(),
            repeats,
            control: None,
        }
    }

    /// Attaches a convergence target (see [`ExperimentSpec::control`]).
    pub fn with_control(mut self, target: ConvergeTarget) -> Self {
        self.control = Some(target);
        self
    }

    /// Pretty-printed JSON for checking into a repository.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Parses and validates a spec from JSON text (policy names are
    /// checked later, against a concrete registry).
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let spec: ExperimentSpec = serde_json::from_str(text).map_err(SpecError::Json)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Registry-independent validation: config consistency, non-empty
    /// policy list, at least one repeat.
    pub fn validate(&self) -> Result<(), SpecError> {
        self.config.validate()?;
        if self.policies.is_empty() {
            return Err(SpecError::NoPolicies);
        }
        if self.repeats == 0 {
            return Err(SpecError::NoRepeats);
        }
        Ok(())
    }

    /// Resolves every policy name against `registry`, in spec order.
    pub fn resolve<'r>(
        &self,
        registry: &'r PolicyRegistry,
    ) -> Result<Vec<&'r dyn Policy>, SpecError> {
        self.policies
            .iter()
            .map(|name| {
                registry.get(name).ok_or_else(|| SpecError::UnknownPolicy {
                    requested: name.clone(),
                    known: registry.names().iter().map(|s| s.to_string()).collect(),
                })
            })
            .collect()
    }

    /// Executes the spec: every policy × every repeat, fanned out across
    /// the worker pool, returned grouped by repeat and then by policy in
    /// spec order (the grouping `comparison`-style normalisation wants).
    pub fn run(&self, registry: &PolicyRegistry) -> Result<Vec<SpecRun>, SpecError> {
        self.validate()?;
        let policies = self.resolve(registry)?;
        let mut runs: Vec<(usize, &dyn Policy)> = Vec::new();
        for repeat in 0..self.repeats {
            for policy in &policies {
                runs.push((repeat, *policy));
            }
        }
        Ok(runs
            .par_iter()
            .map(|(repeat, policy)| {
                let mut config = self.config.clone();
                config.seed = self.config.seed.wrapping_add(*repeat as u64);
                let result = run_policy(&config, *policy);
                SpecRun {
                    policy: policy.name().to_string(),
                    seed: config.seed,
                    repeat: *repeat,
                    result,
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Fidelity;
    use crate::fleet::{FleetDynamics, StragglerPolicy};
    use crate::policy::baseline_registry;
    use autofl_data::partition::DataDistribution;

    fn spec_fixture() -> ExperimentSpec {
        let mut config = SimConfig::tiny_test(9);
        config.distribution = DataDistribution::non_iid_percent(50);
        config.fidelity = Fidelity::RealTraining {
            lr: 0.08,
            eval_samples: 32,
        };
        config.target_accuracy = Some(0.9);
        // Exercise the fleet block (incl. a data-carrying straggler
        // variant) through the exact-JSON round-trip below.
        config.fleet = Some(
            FleetDynamics::with_dropout_rate(0.25)
                .straggler(StragglerPolicy::OverSelect { extra: 2 }),
        );
        ExperimentSpec::new("fixture", config, ["FedAvg-Random", "C3", "O_FL"], 2)
    }

    #[test]
    fn fleet_block_validation_runs_on_spec_load() {
        let mut spec = spec_fixture();
        if let Some(fleet) = &mut spec.config.fleet {
            fleet.mid_round_drop_prob = 7.0;
        }
        let err = ExperimentSpec::from_json(&spec.to_json()).unwrap_err();
        assert!(
            matches!(
                err,
                SpecError::Config(crate::builder::ConfigError::BadFleetProbability(_))
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let spec = spec_fixture();
        let json = spec.to_json();
        let parsed = ExperimentSpec::from_json(&json).expect("parses");
        assert_eq!(parsed, spec);
        // Serialize → parse → serialize is a fixed point, so checked-in
        // files stay byte-stable under re-export.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn control_field_roundtrips_and_is_omitted_when_absent() {
        let spec = spec_fixture();
        assert!(
            !spec.to_json().contains("control"),
            "uncontrolled specs must not serialize a control key"
        );
        let controlled = spec.with_control(ConvergeTarget::EnergyBudget {
            joules_per_round: 250.0,
        });
        let json = controlled.to_json();
        let parsed = ExperimentSpec::from_json(&json).expect("parses");
        assert_eq!(parsed, controlled);
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn truncated_json_fails_with_a_message_not_a_panic() {
        let json = spec_fixture().to_json();
        let cut = &json[..json.len() / 2];
        let err = ExperimentSpec::from_json(cut).unwrap_err();
        assert!(matches!(err, SpecError::Json(_)), "got {err:?}");
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn type_mismatched_field_names_the_offending_path() {
        let json = spec_fixture()
            .to_json()
            .replace("\"repeats\": 2", "\"repeats\": \"two\"");
        let err = ExperimentSpec::from_json(&json).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, SpecError::Json(_)), "got {err:?}");
        assert!(
            msg.contains("repeats"),
            "message should name the field: {msg}"
        );
    }

    #[test]
    fn missing_required_field_is_reported() {
        let err = ExperimentSpec::from_json("{\"name\": \"x\"}").unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, SpecError::Json(_)), "got {err:?}");
        assert!(
            msg.contains("config"),
            "message should name the field: {msg}"
        );
    }

    #[test]
    fn unknown_policy_is_reported_with_known_names() {
        let mut spec = spec_fixture();
        spec.policies.push("NoSuchPolicy".into());
        let err = spec.run(&baseline_registry()).unwrap_err();
        match err {
            SpecError::UnknownPolicy { requested, known } => {
                assert_eq!(requested, "NoSuchPolicy");
                assert!(known.iter().any(|n| n == "O_FL"));
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn invalid_config_and_empty_fields_are_rejected() {
        let mut spec = spec_fixture();
        spec.config.num_devices = 0;
        assert!(matches!(
            spec.validate(),
            Err(SpecError::Config(ConfigError::NoDevices))
        ));

        let mut spec = spec_fixture();
        spec.policies.clear();
        assert_eq!(spec.validate(), Err(SpecError::NoPolicies));

        let mut spec = spec_fixture();
        spec.repeats = 0;
        assert_eq!(spec.validate(), Err(SpecError::NoRepeats));
    }

    #[test]
    fn run_produces_policy_major_rows_per_repeat() {
        let mut spec = spec_fixture();
        spec.config = SimConfig::tiny_test(4);
        spec.config.max_rounds = 3;
        spec.config.target_accuracy = Some(1.1);
        spec.policies = vec!["FedAvg-Random".into(), "Performance".into()];
        spec.repeats = 2;
        let runs = spec.run(&baseline_registry()).expect("runs");
        assert_eq!(runs.len(), 4);
        assert_eq!(
            runs.iter().map(|r| r.policy.as_str()).collect::<Vec<_>>(),
            [
                "FedAvg-Random",
                "Performance",
                "FedAvg-Random",
                "Performance"
            ]
        );
        assert_eq!(runs[0].seed, 4);
        assert_eq!(runs[2].seed, 5);
        assert_eq!(runs[2].repeat, 1);
    }

    #[test]
    fn repeats_change_the_trajectory_deterministically() {
        let mut spec = spec_fixture();
        spec.config = SimConfig::tiny_test(7);
        spec.policies = vec!["FedAvg-Random".into()];
        spec.repeats = 2;
        let a = spec.run(&baseline_registry()).unwrap();
        let b = spec.run(&baseline_registry()).unwrap();
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.result.records.len(), rb.result.records.len());
            for (x, y) in ra.result.records.iter().zip(&rb.result.records) {
                assert_eq!(x.participants, y.participants);
            }
        }
        assert_ne!(
            a[0].result.records[0].participants, a[1].result.records[0].participants,
            "different repeat seeds should select differently"
        );
    }
}

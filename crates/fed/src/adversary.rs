//! Opt-in adversarial fleet roles: Byzantine clients on deterministic
//! streams.
//!
//! AutoFL's learned selection only ever sees *passive* misbehaviour —
//! dropout, churn, weak links. This module adds *active* adversaries as a
//! first-class, opt-in subsystem ([`crate::engine::SimConfig::adversary`]):
//!
//! | Role | Behaviour |
//! |------|-----------|
//! | [`AdversaryRole::Poisoner`] | flips training labels (`y → C−1−y`), submitting a well-formed but misdirected delta |
//! | [`AdversaryRole::Scaler`] | trains honestly, then multiplies its delta by [`AdversaryConfig::scale_factor`] |
//! | [`AdversaryRole::FreeRider`] | skips local training and submits an all-zero delta, paying only communication cost |
//! | [`AdversaryRole::FaultySensor`] | corrupts the `DeviceConditions` it *reports* (always-healthy lie), deceiving selection and the AutoFL state bins; its true conditions still govern cost |
//!
//! # Determinism
//!
//! Roles are **static** per `(seed, device)`: assignment draws one uniform
//! from the `(seed, TAG_ADV, 0, id)` stream (round key 0 is reserved for
//! assignment). Per-round misbehaviour that needs randomness draws from
//! `(seed, TAG_ADV, round + 1, id)` via `adv_stream` — per-device
//! streams, so any thread or shard count replays the identical sequence,
//! and no existing stream (conditions, dropout, net, codec) moves when
//! the subsystem is enabled. With `adversary: None` no stream is created
//! at all and runs are bit-identical to a build without this module.
//!
//! Defenses live on the aggregation side: the robust aggregators
//! (`Median`, `TrimmedMean`, `Krum` — see [`crate::algorithms`]) discard
//! or out-vote poisoned update mass, which the surrogate models through
//! [`crate::algorithms::AggregationAlgorithm::poison_robustness`].

use crate::fleet::{device_stream_seed, TAG_ADV};
use autofl_device::interference::Interference;
use autofl_device::network::{NetworkObservation, SignalStrength};
use autofl_device::scenario::DeviceConditions;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The behaviour a device exhibits for the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdversaryRole {
    /// Honest participant (the default for every device outside the
    /// configured adversarial fractions).
    Honest,
    /// Label-flipping data poisoner: trains on `y → num_classes − 1 − y`.
    Poisoner,
    /// Scaled-gradient attacker: honest training, delta multiplied by
    /// [`AdversaryConfig::scale_factor`].
    Scaler,
    /// Free-rider: submits a zero delta without training; compute time
    /// and energy are zero, communication cost is paid in full.
    FreeRider,
    /// Faulty sensor: reports corrupted [`DeviceConditions`] (no
    /// interference, strong signal, no throttle) while its true
    /// conditions still drive execution cost.
    FaultySensor,
}

impl AdversaryRole {
    /// Whether the role misbehaves at all.
    pub fn is_adversarial(&self) -> bool {
        !matches!(self, AdversaryRole::Honest)
    }

    /// Relative severity of the *update poisoning* this role injects,
    /// used to weight the surrogate's poison-impact term. Free-riders
    /// and faulty sensors corrupt participation and observation, not the
    /// update direction, so they carry no poison mass.
    pub(crate) fn poison_severity(&self, scale_factor: f64) -> f64 {
        match self {
            AdversaryRole::Poisoner => 1.0,
            AdversaryRole::Scaler => scale_factor.abs().min(4.0),
            _ => 0.0,
        }
    }
}

/// Configuration of the adversarial sub-fleet
/// ([`crate::engine::SimConfig::adversary`]).
///
/// Each fraction assigns that share of the fleet (deterministically, per
/// device — see [`AdversaryConfig::role_of`]) to the corresponding role;
/// the fractions must each lie in `[0, 1]` and sum to at most 1
/// (validated by [`crate::builder::SimBuilder`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdversaryConfig {
    /// Fraction of devices flipping their training labels.
    pub poisoner_fraction: f64,
    /// Fraction of devices scaling their deltas by `scale_factor`.
    pub scaler_fraction: f64,
    /// Fraction of devices free-riding with zero-work updates.
    pub free_rider_fraction: f64,
    /// Fraction of devices reporting corrupted conditions.
    pub faulty_sensor_fraction: f64,
    /// Multiplier the scaled-gradient attackers apply (must be finite
    /// and nonzero; validated).
    pub scale_factor: f64,
}

impl AdversaryConfig {
    /// Pure label-flipping poisoning at the given adversarial fraction.
    pub fn poisoning(fraction: f64) -> Self {
        AdversaryConfig {
            poisoner_fraction: fraction,
            scaler_fraction: 0.0,
            free_rider_fraction: 0.0,
            faulty_sensor_fraction: 0.0,
            scale_factor: 4.0,
        }
    }

    /// A mixed adversarial population: the fraction is split evenly
    /// between poisoners and scaled-gradient attackers.
    pub fn mixed(fraction: f64) -> Self {
        AdversaryConfig {
            poisoner_fraction: fraction / 2.0,
            scaler_fraction: fraction / 2.0,
            free_rider_fraction: 0.0,
            faulty_sensor_fraction: 0.0,
            scale_factor: 4.0,
        }
    }

    /// Total adversarial fraction across all roles.
    pub fn adversarial_fraction(&self) -> f64 {
        self.poisoner_fraction
            + self.scaler_fraction
            + self.free_rider_fraction
            + self.faulty_sensor_fraction
    }

    /// The static role of device `id` under simulation seed `seed`.
    ///
    /// One uniform draw from the `(seed, TAG_ADV, 0, id)` stream is cut
    /// against the cumulative role fractions, so each device's role is a
    /// pure function of `(seed, id)` — independent of thread count,
    /// shard layout, round, and every other subsystem's streams.
    pub fn role_of(&self, seed: u64, id: usize) -> AdversaryRole {
        let mut rng = SmallRng::seed_from_u64(device_stream_seed(seed, TAG_ADV, 0, id));
        let draw: f64 = rng.gen_range(0.0..1.0);
        let mut cut = self.poisoner_fraction;
        if draw < cut {
            return AdversaryRole::Poisoner;
        }
        cut += self.scaler_fraction;
        if draw < cut {
            return AdversaryRole::Scaler;
        }
        cut += self.free_rider_fraction;
        if draw < cut {
            return AdversaryRole::FreeRider;
        }
        cut += self.faulty_sensor_fraction;
        if draw < cut {
            return AdversaryRole::FaultySensor;
        }
        AdversaryRole::Honest
    }

    /// The conditions a faulty sensor *reports*: the always-healthy lie —
    /// no co-running load, a strong-signal bandwidth draw, no throttle.
    /// Consumes draws only from the passed (adversary-stream) RNG.
    pub(crate) fn corrupt_report(rng: &mut SmallRng) -> DeviceConditions {
        DeviceConditions {
            interference: Interference::none(),
            network: NetworkObservation::sample(SignalStrength::Strong, rng),
            throttle: 0.0,
        }
    }
}

/// Device `id`'s per-round misbehaviour stream for `round`.
///
/// Round keys are offset by one because round key 0 is reserved for the
/// static role assignment of [`AdversaryConfig::role_of`] — without the
/// offset, round-0 misbehaviour draws would alias the assignment draws.
pub(crate) fn adv_stream(seed: u64, round: usize, id: usize) -> SmallRng {
    SmallRng::seed_from_u64(device_stream_seed(seed, TAG_ADV, round as u64 + 1, id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_are_static_and_seed_dependent() {
        let cfg = AdversaryConfig::mixed(0.4);
        for id in 0..64 {
            assert_eq!(cfg.role_of(7, id), cfg.role_of(7, id));
        }
        // A different seed reshuffles at least one role over 64 devices.
        assert!((0..64).any(|id| cfg.role_of(7, id) != cfg.role_of(8, id)));
    }

    #[test]
    fn role_fractions_are_respected_in_aggregate() {
        let cfg = AdversaryConfig {
            poisoner_fraction: 0.2,
            scaler_fraction: 0.1,
            free_rider_fraction: 0.1,
            faulty_sensor_fraction: 0.1,
            scale_factor: 4.0,
        };
        let n = 4000;
        let mut counts = [0usize; 5];
        for id in 0..n {
            let idx = match cfg.role_of(3, id) {
                AdversaryRole::Honest => 0,
                AdversaryRole::Poisoner => 1,
                AdversaryRole::Scaler => 2,
                AdversaryRole::FreeRider => 3,
                AdversaryRole::FaultySensor => 4,
            };
            counts[idx] += 1;
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!((frac(counts[0]) - 0.5).abs() < 0.05, "{counts:?}");
        assert!((frac(counts[1]) - 0.2).abs() < 0.04, "{counts:?}");
        assert!((frac(counts[2]) - 0.1).abs() < 0.03, "{counts:?}");
        assert!((frac(counts[3]) - 0.1).abs() < 0.03, "{counts:?}");
        assert!((frac(counts[4]) - 0.1).abs() < 0.03, "{counts:?}");
    }

    #[test]
    fn zero_fractions_assign_nobody() {
        let cfg = AdversaryConfig::poisoning(0.0);
        assert!((0..512).all(|id| cfg.role_of(11, id) == AdversaryRole::Honest));
        assert_eq!(cfg.adversarial_fraction(), 0.0);
    }

    #[test]
    fn corrupt_report_always_reads_healthy() {
        let mut rng = adv_stream(5, 0, 17);
        let c = AdversaryConfig::corrupt_report(&mut rng);
        assert!(!c.interference.is_active());
        assert_eq!(c.network.signal, SignalStrength::Strong);
        assert_eq!(c.throttle, 0.0);
    }

    #[test]
    fn assignment_and_round_streams_never_alias() {
        // Round 0's misbehaviour stream must differ from the assignment
        // stream for every device.
        for id in 0..32 {
            let mut s = adv_stream(9, 0, id);
            let mut a = SmallRng::seed_from_u64(device_stream_seed(9, TAG_ADV, 0, id));
            let x: f64 = s.gen_range(0.0..1.0);
            let y: f64 = a.gen_range(0.0..1.0);
            assert_ne!(x.to_bits(), y.to_bits(), "device {id} streams alias");
        }
    }

    #[test]
    fn poison_severity_ranks_roles() {
        assert_eq!(AdversaryRole::Poisoner.poison_severity(4.0), 1.0);
        assert_eq!(AdversaryRole::Scaler.poison_severity(-3.0), 3.0);
        assert_eq!(AdversaryRole::Scaler.poison_severity(100.0), 4.0);
        assert_eq!(AdversaryRole::FreeRider.poison_severity(4.0), 0.0);
        assert_eq!(AdversaryRole::FaultySensor.poison_severity(4.0), 0.0);
        assert_eq!(AdversaryRole::Honest.poison_severity(4.0), 0.0);
        assert!(AdversaryRole::Poisoner.is_adversarial());
        assert!(!AdversaryRole::Honest.is_adversarial());
    }
}

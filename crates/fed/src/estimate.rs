//! Round-level cost estimation shared by the oracle baselines, the AutoFL
//! reward (Eqs. 5–6), and the simulation engine itself.

use autofl_device::cost::{execute, idle_energy_j, ExecutionPlan, RoundCost, TrainingTask};
use autofl_device::fleet::{DeviceId, Fleet};
use autofl_device::store::ConditionsStore;
use autofl_device::tier::DeviceTier;
use rayon::prelude::*;

/// Cost breakdown of a whole aggregation round across the fleet.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoundEstimate {
    /// Wall-clock round time: the slowest participant's compute + comm.
    pub round_time_s: f64,
    /// Total active energy of participants (`Σ E_comp + E_comm`).
    pub active_energy_j: f64,
    /// Total idle energy of non-participants over the round (Eq. 4).
    pub idle_energy_j: f64,
    /// Per-participant costs, aligned with the input order.
    pub per_participant: Vec<RoundCost>,
}

impl RoundEstimate {
    /// `R_energy_global` of Eq. (6): active plus idle energy.
    pub fn global_energy_j(&self) -> f64 {
        self.active_energy_j + self.idle_energy_j
    }
}

/// The per-participant execution costs of a round, aligned with the
/// input order — the fan-out half of [`estimate_round`], for callers
/// (like the simulation engine) that do their own straggler-aware
/// time/energy reductions.
///
/// Costs are independent per participant and execute in parallel across
/// the pool; the returned order is the input order regardless of thread
/// count.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub fn participant_costs(
    fleet: &Fleet,
    participants: &[DeviceId],
    plans: &[ExecutionPlan],
    tasks: &[TrainingTask],
    conditions: &ConditionsStore,
) -> Vec<RoundCost> {
    assert_eq!(participants.len(), plans.len(), "plan per participant");
    assert_eq!(participants.len(), tasks.len(), "task per participant");
    assert_eq!(conditions.len(), fleet.len(), "conditions cover the fleet");
    (0..participants.len())
        .into_par_iter()
        .with_min_len(64)
        .map(|i| {
            let id = participants[i];
            execute(
                fleet.device(id).tier(),
                plans[i],
                tasks[i],
                &conditions.get(id.0),
            )
        })
        .collect()
}

/// Estimates the cost of a round in which `participants[i]` executes
/// `tasks[i]` under `plans[i]`, with every other fleet device idle.
///
/// `conditions` is indexed by raw device id and must cover the fleet.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub fn estimate_round(
    fleet: &Fleet,
    participants: &[DeviceId],
    plans: &[ExecutionPlan],
    tasks: &[TrainingTask],
    conditions: &ConditionsStore,
) -> RoundEstimate {
    let per_participant = participant_costs(fleet, participants, plans, tasks, conditions);
    let mut round_time_s: f64 = 0.0;
    let mut active_energy_j = 0.0;
    for cost in &per_participant {
        round_time_s = round_time_s.max(cost.total_time_s());
        active_energy_j += cost.total_energy_j();
    }
    // K-sized sorted probe instead of a fleet-sized membership mask: the
    // oracle calls this once per candidate cohort, so at million-device
    // fleets the O(N) `vec![false; N]` rebuild dominated. Membership
    // testing does not touch the accumulation order, and `idle_energy_j`
    // is a pure function of the three-valued tier, so precomputing the
    // addends keeps the sum bit-identical to the per-device-call loop.
    let mut sorted_ids: Vec<usize> = participants.iter().map(|id| id.0).collect();
    sorted_ids.sort_unstable();
    let per_tier = [
        idle_energy_j(DeviceTier::High, round_time_s),
        idle_energy_j(DeviceTier::Mid, round_time_s),
        idle_energy_j(DeviceTier::Low, round_time_s),
    ];
    let mut idle = 0.0;
    for device in fleet.iter() {
        if sorted_ids.binary_search(&device.id().0).is_err() {
            idle += per_tier[match device.tier() {
                DeviceTier::High => 0,
                DeviceTier::Mid => 1,
                DeviceTier::Low => 2,
            }];
        }
    }
    RoundEstimate {
        round_time_s,
        active_energy_j,
        idle_energy_j: idle,
        per_participant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofl_device::tier::DeviceTier;

    fn small_fleet() -> Fleet {
        Fleet::custom(&[(DeviceTier::High, 2), (DeviceTier::Low, 2)], 1)
    }

    fn ideal_conditions(n: usize) -> ConditionsStore {
        ConditionsStore::new(n, 1)
    }

    fn task() -> TrainingTask {
        TrainingTask {
            flops: 50_000_000_000,
            upload_bytes: 4_000_000,
        }
    }

    #[test]
    fn round_time_is_gated_by_slowest() {
        let fleet = small_fleet();
        let conditions = ideal_conditions(4);
        let ids = [DeviceId(0), DeviceId(2)]; // one H, one L
        let plans = [
            ExecutionPlan::cpu_max(DeviceTier::High),
            ExecutionPlan::cpu_max(DeviceTier::Low),
        ];
        let est = estimate_round(&fleet, &ids, &plans, &[task(), task()], &conditions);
        // The low-end device is the straggler.
        assert!((est.round_time_s - est.per_participant[1].total_time_s()).abs() < 1e-12);
        assert!(est.per_participant[0].total_time_s() < est.round_time_s);
    }

    #[test]
    fn idle_energy_counts_non_participants() {
        let fleet = small_fleet();
        let conditions = ideal_conditions(4);
        let ids = [DeviceId(0)];
        let plans = [ExecutionPlan::cpu_max(DeviceTier::High)];
        let est = estimate_round(&fleet, &ids, &plans, &[task()], &conditions);
        let expected_idle = (DeviceTier::High.idle_power_w()
            + 2.0 * DeviceTier::Low.idle_power_w())
            * est.round_time_s;
        assert!((est.idle_energy_j - expected_idle).abs() < 1e-9);
        assert!(est.global_energy_j() > est.active_energy_j);
    }
}

//! Per-round introspection: the [`RoundObserver`] trait and built-in
//! sinks.
//!
//! Observers hook into [`crate::engine::Simulation::run_with`] and see
//! every [`RoundRecord`] as it is produced, so live progress reporting and
//! machine-readable traces no longer require re-mining the returned
//! [`SimResult`] or sprinkling `println!` through runner binaries.
//!
//! ```
//! use autofl_fed::engine::Simulation;
//! use autofl_fed::global::GlobalParams;
//! use autofl_fed::observe::{JsonlSink, RoundObserver};
//! use autofl_fed::selection::RandomSelector;
//! use autofl_nn::zoo::Workload;
//!
//! let mut sink = JsonlSink::new(Vec::new());
//! let mut sim = Simulation::builder(Workload::TinyTest)
//!     .devices(12).params(GlobalParams::new(8, 1, 4))
//!     .samples_per_device(24).test_samples(48)
//!     .max_rounds(5).target_accuracy(1.1).seed(1)
//!     .build().unwrap();
//! let result = sim.run_with(&mut RandomSelector::new(), &mut [&mut sink]).unwrap();
//! let lines = String::from_utf8(sink.into_inner()).unwrap();
//! assert_eq!(lines.lines().count(), result.records.len());
//! ```

use crate::engine::{RoundRecord, SimResult};
use std::io::{self, Write};

/// Observes the lifecycle of a simulation run.
///
/// All methods default to no-ops so observers implement only what they
/// need. Each hook returns [`io::Result`]: a sink whose writer fails (a
/// closed pipe, a full disk) surfaces the error through
/// [`crate::engine::Simulation::run_with`] instead of panicking
/// mid-experiment, and the run stops at the failing round (fail-fast — no
/// further rounds execute once an observer errors).
pub trait RoundObserver {
    /// Called before the round's conditions are sampled.
    fn on_round_start(&mut self, round: usize) -> io::Result<()> {
        let _ = round;
        Ok(())
    }

    /// Called with the completed round's record.
    fn on_round_end(&mut self, record: &RoundRecord) -> io::Result<()> {
        let _ = record;
        Ok(())
    }

    /// Called once if (and when) the run reaches its convergence target.
    fn on_converged(&mut self, result: &SimResult) -> io::Result<()> {
        let _ = result;
        Ok(())
    }
}

/// Streams one CSV row per round to any writer.
///
/// Columns: `round,accuracy,round_time_s,active_energy_j,idle_energy_j,`
/// `participants,dropped,dropouts,ineligible,logical_time_s,`
/// `mean_staleness` — the id lists are space-separated so the file stays
/// quote-free. The last two columns carry the event runtime's logical
/// clock and staleness (see `docs/async-runtime.md`); under the lockstep
/// engine they are the cumulative round time and 0.
pub struct CsvSink<W: Write> {
    out: W,
    wrote_header: bool,
}

impl<W: Write> std::fmt::Debug for CsvSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsvSink")
            .field("wrote_header", &self.wrote_header)
            .finish()
    }
}

impl<W: Write> CsvSink<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> Self {
        CsvSink {
            out,
            wrote_header: false,
        }
    }

    /// Consumes the sink and returns the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

fn join_ids(ids: &[autofl_device::fleet::DeviceId]) -> String {
    ids.iter()
        .map(|id| id.0.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

impl<W: Write> RoundObserver for CsvSink<W> {
    fn on_round_end(&mut self, record: &RoundRecord) -> io::Result<()> {
        if !self.wrote_header {
            writeln!(
                self.out,
                "round,accuracy,round_time_s,active_energy_j,idle_energy_j,\
                 participants,dropped,dropouts,ineligible,logical_time_s,\
                 mean_staleness,bytes_up,bytes_down,net_drops,partitioned"
            )?;
            self.wrote_header = true;
        }
        // The four network columns read 0 when no fabric is attached
        // (`record.net` is `None`), keeping every row the same width.
        let net = record.net.unwrap_or_default();
        writeln!(
            self.out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            record.round,
            record.accuracy,
            record.round_time_s,
            record.active_energy_j,
            record.idle_energy_j,
            join_ids(&record.participants),
            join_ids(&record.dropped),
            join_ids(&record.dropouts),
            record.ineligible,
            record.logical_time_s,
            record.mean_staleness,
            net.bytes_uplinked,
            net.bytes_downlinked,
            net.net_drops,
            net.partitioned,
        )
    }
}

/// Streams one JSON object per round (JSON Lines) to any writer — the
/// full [`RoundRecord`], including execution plans and update fractions.
pub struct JsonlSink<W: Write> {
    out: W,
}

impl<W: Write> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish()
    }
}

impl<W: Write> JsonlSink<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> Self {
        JsonlSink { out }
    }

    /// Consumes the sink and returns the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> RoundObserver for JsonlSink<W> {
    fn on_round_end(&mut self, record: &RoundRecord) -> io::Result<()> {
        // Serialization itself is infallible (every record field maps to a
        // JSON value); only the writer can fail.
        let line = serde_json::to_string(record).expect("round record serializes");
        writeln!(self.out, "{line}")
    }
}

/// Live progress on stderr: one line every `every` rounds plus a
/// convergence summary.
#[derive(Debug, Clone)]
pub struct Progress {
    every: usize,
    label: String,
}

impl Progress {
    /// Reports every `every` rounds (clamped to at least 1) under `label`.
    pub fn new(label: impl Into<String>, every: usize) -> Self {
        Progress {
            every: every.max(1),
            label: label.into(),
        }
    }
}

impl RoundObserver for Progress {
    fn on_round_end(&mut self, record: &RoundRecord) -> io::Result<()> {
        if record.round % self.every == 0 {
            eprintln!(
                "[{}] round {:>4}  acc {:>5.1}%  {:>6.1} s/round  {:>8.0} J",
                self.label,
                record.round,
                record.accuracy * 100.0,
                record.round_time_s,
                record.total_energy_j(),
            );
        }
        Ok(())
    }

    fn on_converged(&mut self, result: &SimResult) -> io::Result<()> {
        eprintln!(
            "[{}] converged at round {} ({:.1}% >= {:.1}%)",
            self.label,
            result
                .converged_round()
                .expect("on_converged implies round"),
            result.final_accuracy() * 100.0,
            result.target_accuracy * 100.0,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulation};
    use crate::selection::RandomSelector;

    fn short_sim() -> Simulation {
        let mut cfg = SimConfig::tiny_test(1);
        cfg.max_rounds = 8;
        cfg.target_accuracy = Some(1.1); // never converge: fixed row count
        Simulation::new(cfg)
    }

    #[test]
    fn csv_sink_writes_header_and_one_row_per_round() {
        let mut sink = CsvSink::new(Vec::new());
        let result = short_sim()
            .run_with(&mut RandomSelector::new(), &mut [&mut sink])
            .unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), result.records.len() + 1);
        assert!(lines[0].starts_with("round,accuracy"));
        assert!(lines[1].starts_with("0,"));
    }

    #[test]
    fn jsonl_sink_rows_parse_back_to_records() {
        let mut sink = JsonlSink::new(Vec::new());
        let result = short_sim()
            .run_with(&mut RandomSelector::new(), &mut [&mut sink])
            .unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        for (line, record) in text.lines().zip(&result.records) {
            let parsed: RoundRecord = serde_json::from_str(line).expect("JSONL line parses");
            assert_eq!(parsed.round, record.round);
            assert_eq!(parsed.participants, record.participants);
            assert_eq!(parsed.accuracy.to_bits(), record.accuracy.to_bits());
            assert_eq!(parsed.plans, record.plans);
        }
    }

    #[test]
    fn observers_do_not_perturb_the_run() {
        let plain = short_sim().run(&mut RandomSelector::new());
        let mut sink = CsvSink::new(Vec::new());
        let observed = short_sim()
            .run_with(&mut RandomSelector::new(), &mut [&mut sink])
            .unwrap();
        assert_eq!(plain.records.len(), observed.records.len());
        for (a, b) in plain.records.iter().zip(&observed.records) {
            assert_eq!(a.participants, b.participants);
            assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        }
    }

    #[test]
    fn on_converged_fires_only_on_reached_targets() {
        struct Count(usize);
        impl RoundObserver for Count {
            fn on_converged(&mut self, _: &SimResult) -> io::Result<()> {
                self.0 += 1;
                Ok(())
            }
        }
        let mut count = Count(0);
        let mut sim = Simulation::new(SimConfig::tiny_test(1));
        let result = sim
            .run_with(&mut RandomSelector::new(), &mut [&mut count])
            .unwrap();
        assert!(result.converged());
        assert_eq!(count.0, 1);

        let mut count = Count(0);
        let _ = short_sim()
            .run_with(&mut RandomSelector::new(), &mut [&mut count])
            .unwrap();
        assert_eq!(count.0, 0, "unreachable target must not fire on_converged");
    }

    /// A writer that accepts `ok_bytes` bytes, then fails every write —
    /// the closed-pipe / full-disk case the sinks must surface instead of
    /// panicking.
    struct FailingWriter {
        ok_bytes: usize,
        written: usize,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.written + buf.len() > self.ok_bytes {
                return Err(io::Error::new(io::ErrorKind::WriteZero, "disk full"));
            }
            self.written += buf.len();
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn failing_writer_surfaces_an_error_instead_of_panicking() {
        for ok_bytes in [0usize, 200] {
            let mut sink = CsvSink::new(FailingWriter {
                ok_bytes,
                written: 0,
            });
            let err = short_sim()
                .run_with(&mut RandomSelector::new(), &mut [&mut sink])
                .unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        }
        let mut sink = JsonlSink::new(FailingWriter {
            ok_bytes: 0,
            written: 0,
        });
        let err = short_sim()
            .run_with(&mut RandomSelector::new(), &mut [&mut sink])
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    fn failing_writer_stops_the_run_at_the_failing_round() {
        // Enough budget for the header + first row only: the run must
        // stop after round 0's record errors, not execute all 8 rounds.
        struct CountingSelector(RandomSelector, usize);
        impl crate::selection::Selector for CountingSelector {
            fn select(
                &mut self,
                ctx: &crate::selection::RoundContext<'_>,
                rng: &mut rand::rngs::SmallRng,
            ) -> crate::selection::SelectionDecision {
                self.1 += 1;
                self.0.select(ctx, rng)
            }
            fn name(&self) -> &'static str {
                "counting"
            }
        }
        let mut sel = CountingSelector(RandomSelector::new(), 0);
        let mut sink = CsvSink::new(FailingWriter {
            ok_bytes: 200,
            written: 0,
        });
        let err = short_sim()
            .run_with(&mut sel, &mut [&mut sink])
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert!(sel.1 <= 2, "run must fail fast, ran {} rounds", sel.1);
    }
}
